//! The CF-Bench-analog kernels.

use ndroid_arm::reg::RegList;
use ndroid_arm::{Assembler, Cond, Reg};
use ndroid_core::{Mode, NDroidSystem, SystemConfig};
use ndroid_dvm::bytecode::{BinOp, CmpOp, DexInsn};
use ndroid_dvm::framework::install_framework;
use ndroid_dvm::{ArrayKind, ClassDef, MethodDef, MethodKind, Program};
use ndroid_emu::layout::NATIVE_CODE_BASE;
use ndroid_libc::libc_addr;

/// Which world a kernel exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Third-party native (ARM) code — instruction-traced by NDroid.
    Native,
    /// Dalvik bytecode — tracked by the modified DVM only.
    Java,
}

/// One benchmark kernel.
pub struct Kernel {
    /// CF-Bench row name, e.g. `"Native MIPS"`.
    pub name: &'static str,
    /// Native or Java.
    pub kind: KernelKind,
    runner: fn(&mut NDroidSystem, u32) -> u64,
    setup: fn(&mut NDroidSystem),
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("name", &self.name).finish()
    }
}

impl Kernel {
    /// Boots a fresh system for this kernel under `mode`.
    pub fn boot(&self, mode: Mode) -> NDroidSystem {
        self.boot_with(SystemConfig::new(mode).quiet(true))
    }

    /// Boots a fresh system for this kernel under an explicit
    /// configuration (A/B runs flip knobs like `blocks`/`icache`).
    pub fn boot_with(&self, config: SystemConfig) -> NDroidSystem {
        let mut program = Program::new();
        install_framework(&mut program);
        install_java_kernels(&mut program);
        let mut sys = NDroidSystem::from_config(program, config);
        let code = native_kernel_code();
        sys.load_native(&code, "libcfbench.so");
        sys.mem.write_cstr(PATH_STR, b"/data/bench.bin");
        sys.mem.write_cstr(MODE_W, b"w");
        sys.mem.write_cstr(MODE_R, b"r");
        (self.setup)(&mut sys);
        sys
    }

    /// Runs `iterations` of the kernel, returning abstract work units
    /// completed (for sanity checks).
    pub fn run(&self, sys: &mut NDroidSystem, iterations: u32) -> u64 {
        (self.runner)(sys, iterations)
    }
}

fn no_setup(_: &mut NDroidSystem) {}

fn setup_disk(sys: &mut NDroidSystem) {
    sys.kernel.fs.insert("/data/bench.bin".into(), vec![0xA5; 1 << 16]);
}

/// Entry offsets of the native kernels within the assembled library.
mod entry {
    pub const MIPS: usize = 0;
    pub const MSFLOPS: usize = 1;
    pub const MDFLOPS: usize = 2;
    pub const MALLOCS: usize = 3;
    pub const MEM_READ: usize = 4;
    pub const MEM_WRITE: usize = 5;
    pub const DISK_READ: usize = 6;
    pub const DISK_WRITE: usize = 7;
}

/// Addresses of the eight native kernels (computed once; the code block
/// layout is deterministic).
fn native_entries() -> [u32; 8] {
    let code = native_kernel_code();
    let mut out = [0u32; 8];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = code.addr_of(kernel_labels(&code)[i]);
    }
    out
}

// Labels can't be extracted from a CodeBlock generically, so the
// assembler records them in a fixed order; rebuild and expose.
use std::sync::OnceLock;
use ndroid_arm::asm::{CodeBlock, Label};

fn kernel_labels(_code: &CodeBlock) -> &'static [Label; 8] {
    // The labels are created in a fixed order by `build_native_kernels`;
    // they are stored alongside the cached code block.
    &CACHE.get().expect("built").1
}

static CACHE: OnceLock<(CodeBlock, [Label; 8])> = OnceLock::new();

/// The assembled native kernel library (cached; identical every build).
pub fn native_kernel_code() -> CodeBlock {
    CACHE.get_or_init(build_native_kernels).0.clone()
}

const SCRATCH: u32 = NATIVE_CODE_BASE + 0x000A_0000;
const PATH_STR: u32 = NATIVE_CODE_BASE + 0x000B_0000;
const MODE_W: u32 = NATIVE_CODE_BASE + 0x000B_0020;
const MODE_R: u32 = NATIVE_CODE_BASE + 0x000B_0040;

fn build_native_kernels() -> (CodeBlock, [Label; 8]) {
    let mut asm = Assembler::new(NATIVE_CODE_BASE);

    // --- MIPS: xorshift integer loop; r0 = iterations -----------------
    let mips = asm.label();
    asm.bind(mips).unwrap();
    asm.ldr_const(Reg::R1, 0x1234_5678);
    let top = asm.here_label();
    asm.lsl_imm(Reg::R2, Reg::R1, 13);
    asm.eor(Reg::R1, Reg::R1, Reg::R2);
    asm.lsr_imm(Reg::R2, Reg::R1, 17);
    asm.eor(Reg::R1, Reg::R1, Reg::R2);
    asm.lsl_imm(Reg::R2, Reg::R1, 5);
    asm.eor(Reg::R1, Reg::R1, Reg::R2);
    asm.subs_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.b_cond(Cond::Ne, top);
    asm.mov(Reg::R0, Reg::R1);
    asm.bx(Reg::LR);

    // --- MSFLOPS: f32 multiply-add loop -------------------------------
    let msflops = asm.label();
    asm.bind(msflops).unwrap();
    asm.ldr_const(Reg::R1, SCRATCH);
    asm.ldr_const(Reg::R2, 1.0001f32.to_bits());
    asm.str(Reg::R2, Reg::R1, 0);
    asm.vldr_s(0, Reg::R1, 0); // s0 = 1.0001
    asm.vldr_s(1, Reg::R1, 0); // s1 accumulates
    let ftop = asm.here_label();
    asm.vmul_s(1, 1, 0);
    asm.vadd_s(2, 1, 0);
    asm.vsub_s(1, 2, 0);
    asm.subs_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.b_cond(Cond::Ne, ftop);
    asm.vstr_s(1, Reg::R1, 4);
    asm.bx(Reg::LR);

    // --- MDFLOPS: f64 multiply-add loop -------------------------------
    let mdflops = asm.label();
    asm.bind(mdflops).unwrap();
    asm.ldr_const(Reg::R1, SCRATCH + 64);
    let bits = 1.000001f64.to_bits();
    asm.ldr_const(Reg::R2, bits as u32);
    asm.str(Reg::R2, Reg::R1, 0);
    asm.ldr_const(Reg::R2, (bits >> 32) as u32);
    asm.str(Reg::R2, Reg::R1, 4);
    asm.vldr_d(0, Reg::R1, 0);
    asm.vldr_d(1, Reg::R1, 0);
    let dtop = asm.here_label();
    asm.vmul_d(1, 1, 0);
    asm.vadd_d(2, 1, 0);
    asm.vsub_d(1, 2, 0);
    asm.subs_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.b_cond(Cond::Ne, dtop);
    asm.vstr_d(1, Reg::R1, 8);
    asm.bx(Reg::LR);

    // --- MALLOCS: malloc/free churn -----------------------------------
    let mallocs = asm.label();
    asm.bind(mallocs).unwrap();
    asm.push(RegList::of(&[Reg::R4, Reg::LR]));
    asm.mov(Reg::R4, Reg::R0);
    let mtop = asm.here_label();
    asm.mov_imm(Reg::R0, 64).unwrap();
    asm.call_abs(libc_addr("malloc"));
    asm.call_abs(libc_addr("free")); // r0 = block from malloc
    asm.subs_imm(Reg::R4, Reg::R4, 1).unwrap();
    asm.b_cond(Cond::Ne, mtop);
    asm.pop(RegList::of(&[Reg::R4, Reg::PC]));

    // --- Memory read: LDR over a 4 KiB window --------------------------
    let mem_read = asm.label();
    asm.bind(mem_read).unwrap();
    asm.ldr_const(Reg::R1, SCRATCH + 0x1000);
    asm.mov_imm(Reg::R2, 0).unwrap(); // offset
    let rtop = asm.here_label();
    asm.ldr_reg(Reg::R3, Reg::R1, Reg::R2);
    asm.add_imm(Reg::R2, Reg::R2, 4).unwrap();
    asm.and_imm(Reg::R2, Reg::R2, 0x3FC).unwrap();
    asm.subs_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.b_cond(Cond::Ne, rtop);
    asm.bx(Reg::LR);

    // --- Memory write: STR over a 4 KiB window -------------------------
    let mem_write = asm.label();
    asm.bind(mem_write).unwrap();
    asm.ldr_const(Reg::R1, SCRATCH + 0x3000);
    asm.mov_imm(Reg::R2, 0).unwrap();
    asm.mov_imm(Reg::R3, 0xA5).unwrap();
    let wtop = asm.here_label();
    asm.strb_reg(Reg::R3, Reg::R1, Reg::R2);
    asm.add_imm(Reg::R2, Reg::R2, 1).unwrap();
    asm.and_imm(Reg::R2, Reg::R2, 0xFF).unwrap();
    asm.subs_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.b_cond(Cond::Ne, wtop);
    asm.bx(Reg::LR);

    // --- Disk read: fread chunks from a seeded file ---------------------
    let disk_read = asm.label();
    asm.bind(disk_read).unwrap();
    asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    asm.mov(Reg::R4, Reg::R0); // iterations
    asm.ldr_const(Reg::R0, PATH_STR);
    asm.ldr_const(Reg::R1, MODE_R);
    asm.call_abs(libc_addr("fopen"));
    asm.mov(Reg::R5, Reg::R0); // FILE*
    let drtop = asm.here_label();
    asm.ldr_const(Reg::R0, SCRATCH + 0x5000); // buf
    asm.mov_imm(Reg::R1, 1).unwrap();
    asm.mov_imm(Reg::R2, 64).unwrap();
    asm.mov(Reg::R3, Reg::R5);
    asm.call_abs(libc_addr("fread"));
    asm.subs_imm(Reg::R4, Reg::R4, 1).unwrap();
    asm.b_cond(Cond::Ne, drtop);
    asm.mov(Reg::R0, Reg::R5);
    asm.call_abs(libc_addr("fclose"));
    asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));

    // --- Disk write: fwrite chunks --------------------------------------
    let disk_write = asm.label();
    asm.bind(disk_write).unwrap();
    asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    asm.mov(Reg::R4, Reg::R0);
    asm.ldr_const(Reg::R0, PATH_STR);
    asm.ldr_const(Reg::R1, MODE_W);
    asm.call_abs(libc_addr("fopen"));
    asm.mov(Reg::R5, Reg::R0);
    let dwtop = asm.here_label();
    asm.ldr_const(Reg::R0, SCRATCH + 0x6000);
    asm.mov_imm(Reg::R1, 1).unwrap();
    asm.mov_imm(Reg::R2, 64).unwrap();
    asm.mov(Reg::R3, Reg::R5);
    asm.call_abs(libc_addr("fwrite"));
    asm.subs_imm(Reg::R4, Reg::R4, 1).unwrap();
    asm.b_cond(Cond::Ne, dwtop);
    asm.mov(Reg::R0, Reg::R5);
    asm.call_abs(libc_addr("fclose"));
    asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));

    let code = asm.assemble().expect("kernel assembly");
    (
        code,
        [
            mips, msflops, mdflops, mallocs, mem_read, mem_write, disk_read, disk_write,
        ],
    )
}

/// Installs the Java kernels into `program` under `Lbench/Java;`.
fn install_java_kernels(program: &mut Program) {
    let c = program.add_class(ClassDef {
        name: "Lbench/Java;".into(),
        ..ClassDef::default()
    });
    // int mips(int iters): integer xorshift-flavored loop.
    program.add_method(
        c,
        MethodDef::new(
            "mips",
            "II",
            MethodKind::Bytecode(vec![
                // v1 = state; v2 = in-arg iters (reg 2 of 3)
                DexInsn::Const { dst: 0, value: 0x1234_5678 },
                // 1: loop
                DexInsn::BinOpLit { op: BinOp::Shl, dst: 1, a: 0, lit: 13 },
                DexInsn::BinOp { op: BinOp::Xor, dst: 0, a: 0, b: 1 },
                DexInsn::BinOpLit { op: BinOp::Shr, dst: 1, a: 0, lit: 17 },
                DexInsn::BinOp { op: BinOp::Xor, dst: 0, a: 0, b: 1 },
                DexInsn::BinOpLit { op: BinOp::Sub, dst: 2, a: 2, lit: 1 },
                DexInsn::IfTestZ { op: CmpOp::Ne, a: 2, target: 1 },
                DexInsn::Return { src: 0 },
            ]),
        )
        .with_registers(3),
    );
    // int flops(int iters): multiply-add loop (models the FP kernels;
    // the mini-DVM treats all 32-bit primitives uniformly).
    program.add_method(
        c,
        MethodDef::new(
            "flops",
            "II",
            MethodKind::Bytecode(vec![
                DexInsn::Const { dst: 0, value: 10001 },
                DexInsn::BinOpLit { op: BinOp::Mul, dst: 1, a: 0, lit: 3 },
                DexInsn::BinOp { op: BinOp::Add, dst: 0, a: 0, b: 1 },
                DexInsn::BinOpLit { op: BinOp::Sub, dst: 0, a: 0, lit: 7 },
                DexInsn::BinOpLit { op: BinOp::Sub, dst: 2, a: 2, lit: 1 },
                DexInsn::IfTestZ { op: CmpOp::Ne, a: 2, target: 1 },
                DexInsn::Return { src: 0 },
            ]),
        )
        .with_registers(3),
    );
    // int memRead(int iters): aget loop over a 256-element array.
    program.add_method(
        c,
        MethodDef::new(
            "memRead",
            "II",
            MethodKind::Bytecode(vec![
                DexInsn::Const { dst: 0, value: 256 },
                DexInsn::NewArray { dst: 1, size: 0, kind: ArrayKind::Primitive },
                DexInsn::Const { dst: 2, value: 0 }, // idx
                DexInsn::Const { dst: 3, value: 0 }, // acc
                // 4: loop
                DexInsn::ArrayGet { dst: 0, arr: 1, idx: 2 },
                DexInsn::BinOp { op: BinOp::Add, dst: 3, a: 3, b: 0 },
                DexInsn::BinOpLit { op: BinOp::Add, dst: 2, a: 2, lit: 1 },
                DexInsn::BinOpLit { op: BinOp::And, dst: 2, a: 2, lit: 255 },
                DexInsn::BinOpLit { op: BinOp::Sub, dst: 4, a: 4, lit: 1 },
                DexInsn::IfTestZ { op: CmpOp::Ne, a: 4, target: 4 },
                DexInsn::Return { src: 3 },
            ]),
        )
        .with_registers(5),
    );
    // int memWrite(int iters): aput loop.
    program.add_method(
        c,
        MethodDef::new(
            "memWrite",
            "II",
            MethodKind::Bytecode(vec![
                DexInsn::Const { dst: 0, value: 256 },
                DexInsn::NewArray { dst: 1, size: 0, kind: ArrayKind::Primitive },
                DexInsn::Const { dst: 2, value: 0 },
                DexInsn::Const { dst: 3, value: 0xA5 },
                // 4: loop
                DexInsn::ArrayPut { src: 3, arr: 1, idx: 2 },
                DexInsn::BinOpLit { op: BinOp::Add, dst: 2, a: 2, lit: 1 },
                DexInsn::BinOpLit { op: BinOp::And, dst: 2, a: 2, lit: 255 },
                DexInsn::BinOpLit { op: BinOp::Sub, dst: 4, a: 4, lit: 1 },
                DexInsn::IfTestZ { op: CmpOp::Ne, a: 4, target: 4 },
                DexInsn::Return { src: 3 },
            ]),
        )
        .with_registers(5),
    );
}

fn run_native_kernel(sys: &mut NDroidSystem, which: usize, iters: u32) -> u64 {
    let entries = native_entries();
    // Benchmarks re-run a kernel thousands of times on one system;
    // replenish the safety budgets so they never distort timing.
    sys.budget = u64::MAX / 2;
    sys.run_native(entries[which], &[iters])
        .expect("kernel runs");
    iters as u64
}

fn run_java_kernel(sys: &mut NDroidSystem, name: &str, iters: u32) -> u64 {
    sys.budget = u64::MAX / 2;
    sys.dvm.fuel = u64::MAX / 2;
    sys.run_java("Lbench/Java;", name, &[(iters, ndroid_dvm::Taint::CLEAR)])
        .expect("kernel runs");
    iters as u64
}

/// The full CF-Bench-analog kernel list, in Fig. 10 row order.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "Native MIPS",
            kind: KernelKind::Native,
            runner: |s, n| run_native_kernel(s, entry::MIPS, n),
            setup: no_setup,
        },
        Kernel {
            name: "Java MIPS",
            kind: KernelKind::Java,
            runner: |s, n| run_java_kernel(s, "mips", n),
            setup: no_setup,
        },
        Kernel {
            name: "Native MSFLOPS",
            kind: KernelKind::Native,
            runner: |s, n| run_native_kernel(s, entry::MSFLOPS, n),
            setup: no_setup,
        },
        Kernel {
            name: "Java MSFLOPS",
            kind: KernelKind::Java,
            runner: |s, n| run_java_kernel(s, "flops", n),
            setup: no_setup,
        },
        Kernel {
            name: "Native MDFLOPS",
            kind: KernelKind::Native,
            runner: |s, n| run_native_kernel(s, entry::MDFLOPS, n),
            setup: no_setup,
        },
        Kernel {
            name: "Java MDFLOPS",
            kind: KernelKind::Java,
            runner: |s, n| run_java_kernel(s, "flops", n),
            setup: no_setup,
        },
        Kernel {
            name: "Native MALLOCS",
            kind: KernelKind::Native,
            runner: |s, n| run_native_kernel(s, entry::MALLOCS, n),
            setup: no_setup,
        },
        Kernel {
            name: "Native Memory Read",
            kind: KernelKind::Native,
            runner: |s, n| run_native_kernel(s, entry::MEM_READ, n),
            setup: no_setup,
        },
        Kernel {
            name: "Java Memory Read",
            kind: KernelKind::Java,
            runner: |s, n| run_java_kernel(s, "memRead", n),
            setup: no_setup,
        },
        Kernel {
            name: "Native Memory Write",
            kind: KernelKind::Native,
            runner: |s, n| run_native_kernel(s, entry::MEM_WRITE, n),
            setup: no_setup,
        },
        Kernel {
            name: "Java Memory Write",
            kind: KernelKind::Java,
            runner: |s, n| run_java_kernel(s, "memWrite", n),
            setup: no_setup,
        },
        Kernel {
            name: "Native Disk Read",
            kind: KernelKind::Native,
            runner: |s, n| run_native_kernel(s, entry::DISK_READ, n),
            setup: setup_disk,
        },
        Kernel {
            name: "Native Disk Write",
            kind: KernelKind::Native,
            runner: |s, n| run_native_kernel(s, entry::DISK_WRITE, n),
            setup: setup_disk,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_run_in_every_mode() {
        for kernel in all_kernels() {
            for mode in [Mode::Vanilla, Mode::TaintDroid, Mode::NDroid] {
                let mut sys = kernel.boot(mode);
                let work = kernel.run(&mut sys, 50);
                assert_eq!(work, 50, "{} under {mode}", kernel.name);
            }
        }
    }

    #[test]
    fn native_kernels_execute_real_instructions() {
        let kernel = &all_kernels()[0]; // Native MIPS
        let mut sys = kernel.boot(Mode::Vanilla);
        let before = sys.native_insns();
        kernel.run(&mut sys, 1000);
        let delta = sys.native_insns() - before;
        assert!(delta > 7000, "8 instructions per iteration: {delta}");
    }

    #[test]
    fn java_kernels_execute_bytecode() {
        let kernel = all_kernels().into_iter().find(|k| k.name == "Java MIPS").unwrap();
        let mut sys = kernel.boot(Mode::Vanilla);
        kernel.run(&mut sys, 1000);
        assert!(sys.bytecodes() > 6000);
    }

    #[test]
    fn disk_kernels_touch_the_fs() {
        let kernels = all_kernels();
        let dw = kernels.iter().find(|k| k.name == "Native Disk Write").unwrap();
        let mut sys = dw.boot(Mode::Vanilla);
        dw.run(&mut sys, 10);
        assert_eq!(
            sys.kernel.fs.get("/data/bench.bin").map(Vec::len),
            Some(640),
            "10 x 64-byte fwrites"
        );
    }

    #[test]
    fn ndroid_taints_nothing_in_clean_kernels() {
        let kernel = &all_kernels()[0];
        let mut sys = kernel.boot(Mode::NDroid);
        kernel.run(&mut sys, 200);
        assert_eq!(sys.shadow.mem.tainted_bytes(), 0, "benchmarks stay clean");
        assert!(sys.leaks().is_empty());
    }
}
