//! The Fig. 10 harness: wall-clock overhead of each analysis mode
//! relative to vanilla, per kernel, plus the Native/Java/Overall
//! scores.

use crate::kernels::{all_kernels, Kernel, KernelKind};
use ndroid_core::{Mode, SystemConfig};
use std::time::{Duration, Instant};

/// One row of the Fig. 10 chart.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// CF-Bench row name.
    pub name: &'static str,
    /// Native or Java.
    pub kind: KernelKind,
    /// Vanilla wall time.
    pub vanilla: Duration,
    /// (mode, wall time, overhead vs. vanilla) per analyzed mode.
    pub results: Vec<(Mode, Duration, f64)>,
}

impl KernelRow {
    /// The overhead under `mode`, if measured.
    pub fn overhead(&self, mode: Mode) -> Option<f64> {
        self.results
            .iter()
            .find(|(m, _, _)| *m == mode)
            .map(|(_, _, o)| *o)
    }
}

/// The full report.
#[derive(Debug, Clone)]
pub struct Fig10Report {
    /// Per-kernel rows, in Fig. 10 order.
    pub rows: Vec<KernelRow>,
    /// Modes measured (excluding vanilla).
    pub modes: Vec<Mode>,
    /// Iterations per kernel invocation.
    pub iterations: u32,
    /// Repetitions averaged (the paper used 30).
    pub repetitions: u32,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0u32), |(s, n), v| (s + v.max(1e-9).ln(), n + 1));
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

impl Fig10Report {
    /// Geometric-mean overhead of the native kernels under `mode`
    /// ("Native Score").
    pub fn native_score(&self, mode: Mode) -> f64 {
        geomean(
            self.rows
                .iter()
                .filter(|r| r.kind == KernelKind::Native)
                .filter_map(|r| r.overhead(mode)),
        )
    }

    /// Geometric-mean overhead of the Java kernels under `mode`
    /// ("Java Score").
    pub fn java_score(&self, mode: Mode) -> f64 {
        geomean(
            self.rows
                .iter()
                .filter(|r| r.kind == KernelKind::Java)
                .filter_map(|r| r.overhead(mode)),
        )
    }

    /// Geometric-mean overhead across all kernels ("Overall Score").
    pub fn overall_score(&self, mode: Mode) -> f64 {
        geomean(self.rows.iter().filter_map(|r| r.overhead(mode)))
    }

    /// Renders the Fig. 10-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<22}", "kernel"));
        for m in &self.modes {
            out.push_str(&format!("{:>18}", format!("{m} (x)")));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<22}", row.name));
            for m in &self.modes {
                out.push_str(&format!("{:>18.2}", row.overhead(*m).unwrap_or(f64::NAN)));
            }
            out.push('\n');
        }
        for (label, f) in [
            ("Native Score", Fig10Report::native_score as fn(&Fig10Report, Mode) -> f64),
            ("Java Score", Fig10Report::java_score),
            ("Overall Score", Fig10Report::overall_score),
        ] {
            out.push_str(&format!("{label:<22}"));
            for m in &self.modes {
                out.push_str(&format!("{:>18.2}", f(self, *m)));
            }
            out.push('\n');
        }
        out
    }
}

fn measure(
    kernel: &Kernel,
    mode: Mode,
    iterations: u32,
    repetitions: u32,
    tweak: &dyn Fn(SystemConfig) -> SystemConfig,
) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..repetitions {
        let mut sys = kernel.boot_with(tweak(SystemConfig::new(mode).quiet(true)));
        // Warm the code path once so page faults/alloc noise stay out.
        kernel.run(&mut sys, 1.max(iterations / 100));
        let start = Instant::now();
        kernel.run(&mut sys, iterations);
        total += start.elapsed();
    }
    total / repetitions
}

/// Runs the whole suite: every kernel under vanilla plus `modes`.
pub fn run_suite(modes: &[Mode], iterations: u32, repetitions: u32) -> Fig10Report {
    run_suite_with(modes, iterations, repetitions, |c| c)
}

/// [`run_suite`] with a configuration tweak applied to every boot —
/// the Fig. 10 A/B entry point (e.g. `|c| c.blocks(false)` measures
/// the per-instruction stepper instead of superblock dispatch).
pub fn run_suite_with(
    modes: &[Mode],
    iterations: u32,
    repetitions: u32,
    tweak: impl Fn(SystemConfig) -> SystemConfig,
) -> Fig10Report {
    let mut rows = Vec::new();
    for kernel in all_kernels() {
        let vanilla = measure(&kernel, Mode::Vanilla, iterations, repetitions, &tweak);
        let base = vanilla.as_secs_f64().max(1e-9);
        let results = modes
            .iter()
            .map(|mode| {
                let t = measure(&kernel, *mode, iterations, repetitions, &tweak);
                (*mode, t, t.as_secs_f64() / base)
            })
            .collect();
        rows.push(KernelRow {
            name: kernel.name,
            kind: kernel.kind,
            vanilla,
            results,
        });
    }
    Fig10Report {
        rows,
        modes: modes.to_vec(),
        iterations,
        repetitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_produces_sane_overheads() {
        let report = run_suite(&[Mode::NDroid], 2_000, 1);
        assert_eq!(report.rows.len(), 13);
        for row in &report.rows {
            let o = row.overhead(Mode::NDroid).unwrap();
            assert!(o.is_finite() && o > 0.05, "{}: {o}", row.name);
        }
        let rendered = report.render();
        assert!(rendered.contains("Native MIPS"));
        assert!(rendered.contains("Overall Score"));
    }

    #[test]
    fn native_overhead_exceeds_java_overhead() {
        // The architectural claim behind Fig. 10: NDroid traces every
        // *native* instruction but leaves the interpreter alone. The
        // claim originates on the per-instruction stepper, so it is
        // pinned with superblock dispatch off — with blocks on the
        // native-side tracing cost collapses (see BENCH_blocks.json)
        // and the ordering is no longer architecturally forced.
        let report = run_suite_with(&[Mode::NDroid], 20_000, 3, |c| c.blocks(false));
        let native = report.native_score(Mode::NDroid);
        let java = report.java_score(Mode::NDroid);
        assert!(
            native > java,
            "native {native:.2}x should exceed java {java:.2}x"
        );
        assert!(java < 3.0, "Java-side cost stays small: {java:.2}x");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0].into_iter()) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }
}
