#![warn(missing_docs)]

//! # ndroid-cfbench
//!
//! A CF-Bench-analog benchmark suite for the overhead evaluation of
//! Fig. 10: "following \[DroidScope\], we use the CF-Bench by Chainfire
//! to evaluate NDroid's overhead … we ran CF-Bench 30 times on both
//! NDroid and a vanilla QEMU with the Android platform" (§VI-E).
//!
//! Kernels come in the same flavors CF-Bench reports: Native/Java
//! MIPS, MSFLOPS, MDFLOPS, native MALLOCS, memory read/write in both
//! worlds, and native disk read/write. Native kernels are genuine ARM
//! (and VFP) machine code; Java kernels are Dalvik bytecode loops.
//!
//! The harness measures wall-clock time per kernel under each
//! [`Mode`](ndroid_core::Mode) and reports the slowdown relative to vanilla — the shape
//! to compare with Fig. 10: Java rows near 1×, native rows several ×
//! (every instruction traced), and the DroidScope-like configuration
//! far above NDroid because it also analyzes the interpreter.

pub mod harness;
pub mod kernels;

pub use harness::{run_suite, Fig10Report, KernelRow};
pub use kernels::{all_kernels, Kernel, KernelKind};
