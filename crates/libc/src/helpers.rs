//! Shared helpers for the modeled functions: argument access, variadic
//! readers, and guest-string utilities.

use ndroid_dvm::Taint;
use ndroid_emu::runtime::NativeCtx;

/// Reads argument `i` of the current call per the AAPCS: 0–3 from
/// R0–R3, the rest from the stack.
pub fn arg(ctx: &NativeCtx<'_>, i: usize) -> u32 {
    if i < 4 {
        ctx.cpu.regs[i]
    } else {
        ctx.mem.read_u32(ctx.cpu.regs[13] + 4 * (i as u32 - 4))
    }
}

/// The shadow taint of argument `i` (register taint for 0–3, taint-map
/// bytes for stack arguments).
pub fn arg_taint(ctx: &NativeCtx<'_>, i: usize) -> Taint {
    if i < 4 {
        ctx.shadow.regs[i]
    } else {
        ctx.shadow
            .mem
            .range_taint(ctx.cpu.regs[13] + 4 * (i as u32 - 4), 4)
    }
}

/// Whether taint work should be performed for this run.
pub fn tracking(ctx: &NativeCtx<'_>) -> bool {
    ctx.analysis.tracks_native()
}

/// Sets the shadow taint of the return register (R0); clears when not
/// tracking.
pub fn set_ret_taint(ctx: &mut NativeCtx<'_>, taint: Taint) {
    ctx.shadow.regs[0] = if tracking(ctx) { taint } else { Taint::CLEAR };
}

/// Records a libc-model provenance event: `func` moved `taint`-labeled
/// data. No-op when the recorder is off or the data is clean, so the
/// untraced path pays one branch.
pub fn prov_libc(ctx: &NativeCtx<'_>, func: &str, taint: Taint) {
    if taint.is_tainted() && ctx.shadow.prov.is_on() {
        ctx.shadow.prov.emit(ndroid_provenance::ProvEvent::Libc {
            func: func.to_string(),
            label: taint.0,
        });
    }
}

/// Also taint R1 (for 64-bit / double returns in softfp).
pub fn set_ret_taint64(ctx: &mut NativeCtx<'_>, taint: Taint) {
    let t = if tracking(ctx) { taint } else { Taint::CLEAR };
    ctx.shadow.regs[0] = t;
    ctx.shadow.regs[1] = t;
}

/// Reads a NUL-terminated guest string.
pub fn cstr(ctx: &NativeCtx<'_>, addr: u32) -> Vec<u8> {
    ctx.mem.read_cstr(addr)
}

/// Reads a guest string lossily as UTF-8.
pub fn cstr_lossy(ctx: &NativeCtx<'_>, addr: u32) -> String {
    String::from_utf8_lossy(&ctx.mem.read_cstr(addr)).into_owned()
}

/// The taint union over a guest string's bytes (including its length
/// dependence — the bytes *are* the data).
pub fn cstr_taint(ctx: &NativeCtx<'_>, addr: u32) -> Taint {
    if !tracking(ctx) {
        return Taint::CLEAR;
    }
    let len = ctx.mem.read_cstr(addr).len() as u32;
    ctx.shadow.mem.range_taint(addr, len.max(1))
}

/// A reader for printf-style variadic arguments starting at argument
/// index `first`.
pub struct VarArgs {
    next: usize,
}

impl VarArgs {
    /// Variadic arguments beginning at AAPCS argument index `first`.
    pub fn new(first: usize) -> VarArgs {
        VarArgs { next: first }
    }

    /// Fetches the next 32-bit argument and its taint.
    pub fn next(&mut self, ctx: &NativeCtx<'_>) -> (u32, Taint) {
        let i = self.next;
        self.next += 1;
        (arg(ctx, i), arg_taint(ctx, i))
    }
}

/// A reader for `va_list`-style arguments: a guest pointer to a packed
/// array of 32-bit slots (how our guests materialize `va_list`).
pub struct VaList {
    ptr: u32,
}

impl VaList {
    /// A `va_list` at guest address `ptr`.
    pub fn new(ptr: u32) -> VaList {
        VaList { ptr }
    }

    /// Fetches the next 32-bit argument and its taint.
    pub fn next(&mut self, ctx: &NativeCtx<'_>) -> (u32, Taint) {
        let v = ctx.mem.read_u32(self.ptr);
        let t = if tracking(ctx) {
            ctx.shadow.mem.range_taint(self.ptr, 4)
        } else {
            Taint::CLEAR
        };
        self.ptr += 4;
        (v, t)
    }
}

/// Argument sources for the printf family.
pub enum ArgSource {
    /// Register/stack variadics.
    Var(VarArgs),
    /// `va_list` in guest memory.
    List(VaList),
}

impl ArgSource {
    /// Fetches the next argument and taint from whichever source.
    pub fn next(&mut self, ctx: &NativeCtx<'_>) -> (u32, Taint) {
        match self {
            ArgSource::Var(v) => v.next(ctx),
            ArgSource::List(l) => l.next(ctx),
        }
    }
}
