//! Deterministic trap-address assignment and host-table registration
//! for the modeled functions.
//!
//! NDroid "manually disassemble\[s\] libdvm.so, libc.so, libm.so … and
//! determine\[s\] the offsets of these functions", then keeps "a list of
//! their addresses and the corresponding analysis functions" (§V-G).
//! Here the offsets are assigned by position in the name lists, so
//! assemblers and the host table agree by construction.

use crate::{math, stdio, string_fns, syscalls};
use ndroid_emu::layout::{LIBC_BASE, LIBM_BASE};
use ndroid_emu::runtime::{HostTable, NativeCtx};
use ndroid_emu::EmuError;

/// Spacing between function trap addresses.
const STRIDE: u32 = 0x20;

/// All libc-region functions (Table VI libc row + Table VII), in
/// address order.
pub const LIBC_NAMES: &[&str] = &[
    // Table VI — modeled standard methods (libc).
    "memcpy", "free", "malloc", "memset", "strlen", "strcmp", "realloc", "strcpy", "memcmp",
    "strncmp", "memmove", "sprintf", "strncpy", "fprintf", "strchr", "snprintf", "calloc",
    "strstr", "atoi", "strrchr", "memchr", "strcat", "sscanf", "vsnprintf", "strcasecmp",
    "strdup", "strncasecmp", "strtoul", "sysconf", "vsprintf", "vfprintf", "atol",
    // Table VII — hooked standard library calls.
    "fwrite", "fclose", "fopen", "fread", "close", "write", "fputc", "read", "fputs", "open",
    "fcntl", "fstat", "munmap", "mmap", "dlopen", "stat", "fgets", "socket", "connect", "send",
    "recv", "dlsym", "bind", "dlclose", "ioctl", "listen", "mkdir", "accept", "select", "getc",
    "rename", "sendto", "recvfrom", "fdopen", "mprotect", "remove", "kill", "fork", "execve",
    "chown", "ptrace", "openDexFile",
];

/// All libm-region functions (Table VI libm row), in address order.
pub const LIBM_NAMES: &[&str] = &[
    "sin", "pow", "cos", "sqrt", "floor", "log", "strtod", "strtol", "exp", "atan2", "sinf",
    "ceil", "cosf", "sqrtf", "tan", "acos", "log10", "atan", "asin", "ldexp", "sinh", "cosh",
    "fmod", "powf", "atan2f", "expf",
];

/// The starred sink functions of Table VII (plus `fprintf`, which the
/// Fig. 8 PoC treats as a sink).
pub const SINK_NAMES: &[&str] = &[
    "fwrite", "write", "fputc", "fputs", "send", "sendto", "fprintf",
];

/// The trap address of a libc-region function.
///
/// # Panics
///
/// Panics on an unknown name (a workload-construction bug).
pub fn libc_addr(name: &str) -> u32 {
    let i = LIBC_NAMES
        .iter()
        .position(|n| *n == name)
        .unwrap_or_else(|| panic!("unknown libc function {name}"));
    LIBC_BASE + STRIDE * i as u32
}

/// The trap address of a libm-region function.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn libm_addr(name: &str) -> u32 {
    let i = LIBM_NAMES
        .iter()
        .position(|n| *n == name)
        .unwrap_or_else(|| panic!("unknown libm function {name}"));
    LIBM_BASE + STRIDE * i as u32
}

/// Whether `name` is a leak sink.
pub fn is_sink(name: &str) -> bool {
    SINK_NAMES.contains(&name)
}

type Impl = fn(&mut NativeCtx<'_>) -> Result<u32, EmuError>;

/// Models that record their own provenance event (the copy family,
/// whose moved taint never reaches the return register), plus the
/// sinks (which surface as `Sink` events at the kernel instead).
const SELF_RECORDING: &[&str] = &[
    "memcpy", "memmove", "memset", "strcpy", "strncpy", "strcat", "strdup", "sscanf", "sprintf",
    "snprintf", "vsprintf", "vsnprintf",
];

/// Central provenance hook for every registered model: when a call
/// returns with a tainted R0, the summary "`name` propagated label L"
/// is recorded. This catches the whole read family (`strlen`, `atoi`,
/// `strtoul`, `strcmp`, the libm parsers, ...) without touching each
/// model body.
fn record_model_ret(ctx: &NativeCtx<'_>, name: &'static str) {
    if SELF_RECORDING.contains(&name) || is_sink(name) {
        return;
    }
    let t = ctx.shadow.regs[0];
    if t.is_tainted() && ctx.shadow.prov.is_on() {
        ctx.shadow.prov.emit(ndroid_provenance::ProvEvent::Libc {
            func: name.to_string(),
            label: t.0,
        });
    }
}

fn libc_impl(name: &str) -> Option<Impl> {
    Some(match name {
        "memcpy" => string_fns::memcpy,
        "free" => string_fns::free,
        "malloc" => string_fns::malloc,
        "memset" => string_fns::memset,
        "strlen" => string_fns::strlen,
        "strcmp" => string_fns::strcmp,
        "realloc" => string_fns::realloc,
        "strcpy" => string_fns::strcpy,
        "memcmp" => string_fns::memcmp,
        "strncmp" => string_fns::strncmp,
        "memmove" => string_fns::memmove,
        "sprintf" => stdio::sprintf,
        "strncpy" => string_fns::strncpy,
        "fprintf" => stdio::fprintf,
        "strchr" => string_fns::strchr,
        "snprintf" => stdio::snprintf,
        "calloc" => string_fns::calloc,
        "strstr" => string_fns::strstr,
        "atoi" => string_fns::atoi,
        "strrchr" => string_fns::strrchr,
        "memchr" => string_fns::memchr,
        "strcat" => string_fns::strcat,
        "sscanf" => string_fns::sscanf,
        "vsnprintf" => stdio::vsnprintf,
        "strcasecmp" => string_fns::strcasecmp,
        "strdup" => string_fns::strdup,
        "strncasecmp" => string_fns::strncasecmp,
        "strtoul" => string_fns::strtoul,
        "sysconf" => string_fns::sysconf,
        "vsprintf" => stdio::vsprintf,
        "vfprintf" => stdio::vfprintf,
        "atol" => string_fns::atol,
        "fwrite" => stdio::fwrite,
        "fclose" => stdio::fclose,
        "fopen" => stdio::fopen,
        "fread" => stdio::fread,
        "close" => syscalls::close,
        "write" => syscalls::write,
        "fputc" => stdio::fputc,
        "read" => syscalls::read,
        "fputs" => stdio::fputs,
        "open" => syscalls::open,
        "munmap" => syscalls::munmap,
        "mmap" => syscalls::mmap,
        "dlopen" => syscalls::dlopen,
        "fgets" => stdio::fgets,
        "socket" => syscalls::socket,
        "connect" => syscalls::connect,
        "send" => syscalls::send,
        "recv" => syscalls::recv,
        "getc" => stdio::getc,
        "sendto" => syscalls::sendto,
        "recvfrom" => syscalls::recvfrom,
        "fdopen" => stdio::fdopen,
        _ => return None, // observed stubs
    })
}

fn libm_impl(name: &str) -> Option<Impl> {
    Some(match name {
        "sin" => math::sin,
        "pow" => math::pow,
        "cos" => math::cos,
        "sqrt" => math::sqrt,
        "floor" => math::floor,
        "log" => math::log,
        "strtod" => math::strtod,
        "strtol" => string_fns::strtol,
        "exp" => math::exp,
        "atan2" => math::atan2,
        "sinf" => math::sinf,
        "ceil" => math::ceil,
        "cosf" => math::cosf,
        "sqrtf" => math::sqrtf,
        "tan" => math::tan,
        "acos" => math::acos,
        "log10" => math::log10,
        "atan" => math::atan,
        "asin" => math::asin,
        "ldexp" => math::ldexp,
        "sinh" => math::sinh,
        "cosh" => math::cosh,
        "fmod" => math::fmod,
        "powf" => math::powf,
        "atan2f" => math::atan2f,
        "expf" => math::expf,
        _ => return None,
    })
}

/// Registers all libc-region functions in `table`.
pub fn install_libc(table: &mut HostTable) {
    for (i, name) in LIBC_NAMES.iter().enumerate() {
        let addr = LIBC_BASE + STRIDE * i as u32;
        let name: &'static str = name;
        match libc_impl(name) {
            Some(f) => table.register(addr, name, move |ctx, _t| {
                let r = f(ctx);
                if r.is_ok() {
                    record_model_ret(ctx, name);
                }
                r
            }),
            None => {
                let stub = syscalls::observed_stub(name);
                table.register(addr, name, move |ctx, _t| stub(ctx));
            }
        }
    }
}

/// Registers all libm-region functions in `table`.
pub fn install_libm(table: &mut HostTable) {
    for (i, name) in LIBM_NAMES.iter().enumerate() {
        let addr = LIBM_BASE + STRIDE * i as u32;
        let name: &'static str = name;
        match libm_impl(name) {
            Some(f) => table.register(addr, name, move |ctx, _t| {
                let r = f(ctx);
                if r.is_ok() {
                    record_model_ret(ctx, name);
                }
                r
            }),
            None => {
                let stub = syscalls::observed_stub(name);
                table.register(addr, name, move |ctx, _t| stub(ctx));
            }
        }
    }
}

/// Registers everything (libc + libm).
pub fn install_all(table: &mut HostTable) {
    install_libc(table);
    install_libm(table);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_deterministic_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for n in LIBC_NAMES {
            assert!(seen.insert(libc_addr(n)), "dup addr for {n}");
        }
        for n in LIBM_NAMES {
            assert!(seen.insert(libm_addr(n)), "dup addr for {n}");
        }
        assert_eq!(libc_addr("memcpy"), LIBC_BASE);
        assert_eq!(libm_addr("sin"), LIBM_BASE);
    }

    #[test]
    fn all_functions_register() {
        let mut table = HostTable::new();
        install_all(&mut table);
        assert_eq!(table.len(), LIBC_NAMES.len() + LIBM_NAMES.len());
        assert_eq!(table.name_at(libc_addr("memcpy")), Some("memcpy"));
        assert_eq!(table.name_at(libm_addr("powf")), Some("powf"));
    }

    #[test]
    fn table_counts_match_paper() {
        // Table VI models 32 libc + 26 libm functions.
        let table6_libc = &LIBC_NAMES[..32];
        assert_eq!(table6_libc.len(), 32);
        assert!(table6_libc.contains(&"memcpy"));
        assert!(table6_libc.contains(&"atol"));
        assert_eq!(LIBM_NAMES.len(), 26);
    }

    #[test]
    fn sink_classification() {
        for s in SINK_NAMES {
            assert!(is_sink(s));
        }
        assert!(!is_sink("memcpy"));
        assert!(!is_sink("read"));
        assert!(!is_sink("recv"));
    }

    #[test]
    #[should_panic(expected = "unknown libc function")]
    fn unknown_name_panics() {
        libc_addr("no_such_fn");
    }
}
