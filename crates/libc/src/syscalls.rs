//! The raw system-call layer of Table VII: fd-based I/O, sockets,
//! memory mapping, and the remaining hooked calls (stubs that are
//! still observed/logged, since NDroid hooks them to characterize
//! behaviour even when they carry no taint).

use crate::helpers::{arg, cstr_lossy, set_ret_taint, tracking};
use ndroid_dvm::Taint;
use ndroid_emu::runtime::NativeCtx;
use ndroid_emu::EmuError;

/// `int open(const char *path, int flags)` — flags bit 6 (`O_CREAT`)
/// creates.
pub fn open(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let path = cstr_lossy(ctx, arg(ctx, 0));
    let flags = arg(ctx, 1);
    let create = flags & 0o100 != 0 || flags & 0x3 != 0; // O_CREAT or write modes
    set_ret_taint(ctx, Taint::CLEAR);
    match ctx.kernel.open(&path, create) {
        Ok(fd) => Ok(fd as u32),
        Err(_) => Ok(u32::MAX), // -1
    }
}

/// `int close(int fd)`
pub fn close(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let fd = arg(ctx, 0) as i32;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(match ctx.kernel.close(fd) {
        Ok(()) => 0,
        Err(_) => u32::MAX,
    })
}

/// `ssize_t read(int fd, void *buf, size_t n)`
pub fn read(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (fd, buf, n) = (arg(ctx, 0) as i32, arg(ctx, 1), arg(ctx, 2));
    let data = ctx.kernel.read(fd, n as usize)?;
    ctx.mem.write_bytes(buf, &data);
    if tracking(ctx) {
        ctx.shadow.mem.clear_range(buf, data.len() as u32);
    }
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(data.len() as u32)
}

/// `ssize_t write(int fd, const void *buf, size_t n)` — **sink**.
pub fn write(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (fd, buf, n) = (arg(ctx, 0) as i32, arg(ctx, 1), arg(ctx, 2));
    let data = ctx.mem.read_bytes(buf, n as usize);
    let taint = if tracking(ctx) {
        ctx.shadow.mem.range_taint(buf, n)
    } else {
        Taint::CLEAR
    };
    let written = ctx.kernel.write(fd, &data, taint)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(written as u32)
}

/// `int socket(int domain, int type, int protocol)`
pub fn socket(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(ctx.kernel.socket() as u32)
}

/// `int connect(int fd, const struct sockaddr *addr, socklen_t len)` —
/// the sockaddr is modeled as a C string naming the destination.
pub fn connect(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let fd = arg(ctx, 0) as i32;
    let dest = cstr_lossy(ctx, arg(ctx, 1));
    ctx.trace
        .push("libc", format!("TrustCallHandler[connect] fd={fd} dest={dest}"));
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(match ctx.kernel.connect(fd, &dest) {
        Ok(()) => 0,
        Err(_) => u32::MAX,
    })
}

/// `ssize_t send(int fd, const void *buf, size_t n, int flags)` — **sink**.
pub fn send(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (fd, buf, n) = (arg(ctx, 0) as i32, arg(ctx, 1), arg(ctx, 2));
    let data = ctx.mem.read_bytes(buf, n as usize);
    let taint = if tracking(ctx) {
        ctx.shadow.mem.range_taint(buf, n)
    } else {
        Taint::CLEAR
    };
    ctx.trace.push(
        "sink",
        format!(
            "SinkHandler[send] fd={fd} taint={taint} data='{}'",
            String::from_utf8_lossy(&data)
        ),
    );
    let sent = ctx.kernel.send(fd, &data, taint)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(sent as u32)
}

/// `ssize_t sendto(int fd, const void *buf, size_t n, int flags,
/// const struct sockaddr *dest, socklen_t len)` — **sink** (Fig. 7's
/// ePhone leak fires here).
pub fn sendto(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (fd, buf, n) = (arg(ctx, 0) as i32, arg(ctx, 1), arg(ctx, 2));
    let dest = cstr_lossy(ctx, arg(ctx, 4));
    let data = ctx.mem.read_bytes(buf, n as usize);
    let taint = if tracking(ctx) {
        ctx.shadow.mem.range_taint(buf, n)
    } else {
        Taint::CLEAR
    };
    ctx.trace.push(
        "sink",
        format!(
            "SinkHandler[sendto] fd={fd} dest={dest} taint={taint} data='{}'",
            String::from_utf8_lossy(&data)
        ),
    );
    let sent = ctx.kernel.sendto(fd, &data, &dest, taint)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(sent as u32)
}

/// `ssize_t recv(int fd, void *buf, size_t n, int flags)`
pub fn recv(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0) // nothing to receive in the simulated network
}

/// `ssize_t recvfrom(...)`
pub fn recvfrom(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `void *mmap(void *addr, size_t len, …)`
pub fn mmap(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let len = arg(ctx, 1);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(ctx.kernel.heap.malloc(len))
}

/// `int munmap(void *addr, size_t len)`
pub fn munmap(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let addr = arg(ctx, 0);
    if tracking(ctx) {
        if let Some(size) = ctx.kernel.heap.size_of(addr) {
            ctx.shadow.mem.clear_range(addr, size);
        }
    }
    ctx.kernel.heap.free(addr);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `void *dlopen(const char *name, int flags)` — returns an opaque
/// non-zero handle.
pub fn dlopen(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let name = cstr_lossy(ctx, arg(ctx, 0));
    ctx.trace
        .push("libc", format!("TrustCallHandler[dlopen] '{name}'"));
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0xD10_0001)
}

/// A hooked call that is observed but modeled as a success-returning
/// stub (Table VII entries with no dataflow in the reproduction).
pub fn observed_stub(name: &'static str) -> impl Fn(&mut NativeCtx<'_>) -> Result<u32, EmuError> {
    move |ctx| {
        ctx.trace
            .push("libc", format!("TrustCallHandler[{name}]"));
        set_ret_taint(ctx, Taint::CLEAR);
        Ok(0)
    }
}
