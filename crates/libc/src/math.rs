//! Modeled libm functions (Table VI, right column).
//!
//! Arguments use the soft-float EABI: an `f64` occupies R0:R1 (or
//! R2:R3 for a second operand), an `f32` occupies one register, and
//! results return the same way. Taint propagation: the result carries
//! the union of the input registers' shadow taints.

use crate::helpers::{arg, arg_taint, set_ret_taint, set_ret_taint64};
use ndroid_emu::runtime::NativeCtx;
use ndroid_emu::EmuError;

fn d_arg(ctx: &NativeCtx<'_>, lo: usize) -> f64 {
    f64::from_bits((arg(ctx, lo) as u64) | ((arg(ctx, lo + 1) as u64) << 32))
}

fn d_ret(ctx: &mut NativeCtx<'_>, v: f64) -> u32 {
    let bits = v.to_bits();
    ctx.cpu.regs[1] = (bits >> 32) as u32;
    bits as u32
}

fn unary_d(ctx: &mut NativeCtx<'_>, f: fn(f64) -> f64) -> Result<u32, EmuError> {
    let x = d_arg(ctx, 0);
    let t = arg_taint(ctx, 0) | arg_taint(ctx, 1);
    set_ret_taint64(ctx, t);
    Ok(d_ret(ctx, f(x)))
}

fn binary_d(ctx: &mut NativeCtx<'_>, f: fn(f64, f64) -> f64) -> Result<u32, EmuError> {
    let x = d_arg(ctx, 0);
    let y = d_arg(ctx, 2);
    let t = arg_taint(ctx, 0) | arg_taint(ctx, 1) | arg_taint(ctx, 2) | arg_taint(ctx, 3);
    set_ret_taint64(ctx, t);
    Ok(d_ret(ctx, f(x, y)))
}

fn unary_f(ctx: &mut NativeCtx<'_>, f: fn(f32) -> f32) -> Result<u32, EmuError> {
    let x = f32::from_bits(arg(ctx, 0));
    let t = arg_taint(ctx, 0);
    set_ret_taint(ctx, t);
    Ok(f(x).to_bits())
}

/// `double sin(double)`
pub fn sin(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::sin)
}
/// `double cos(double)`
pub fn cos(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::cos)
}
/// `double tan(double)`
pub fn tan(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::tan)
}
/// `double sqrt(double)`
pub fn sqrt(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::sqrt)
}
/// `double floor(double)`
pub fn floor(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::floor)
}
/// `double ceil(double)`
pub fn ceil(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::ceil)
}
/// `double log(double)`
pub fn log(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::ln)
}
/// `double log10(double)`
pub fn log10(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::log10)
}
/// `double exp(double)`
pub fn exp(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::exp)
}
/// `double asin(double)`
pub fn asin(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::asin)
}
/// `double acos(double)`
pub fn acos(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::acos)
}
/// `double atan(double)`
pub fn atan(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::atan)
}
/// `double sinh(double)`
pub fn sinh(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::sinh)
}
/// `double cosh(double)`
pub fn cosh(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_d(ctx, f64::cosh)
}
/// `double pow(double, double)`
pub fn pow(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    binary_d(ctx, f64::powf)
}
/// `double atan2(double, double)`
pub fn atan2(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    binary_d(ctx, f64::atan2)
}
/// `double fmod(double, double)`
pub fn fmod(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    binary_d(ctx, |a, b| a % b)
}
/// `double ldexp(double x, int n)` — `x * 2^n`.
pub fn ldexp(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let x = d_arg(ctx, 0);
    let n = arg(ctx, 2) as i32;
    let t = arg_taint(ctx, 0) | arg_taint(ctx, 1) | arg_taint(ctx, 2);
    set_ret_taint64(ctx, t);
    Ok(d_ret(ctx, x * (2f64).powi(n)))
}
/// `float sinf(float)`
pub fn sinf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_f(ctx, f32::sin)
}
/// `float cosf(float)`
pub fn cosf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_f(ctx, f32::cos)
}
/// `float sqrtf(float)`
pub fn sqrtf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_f(ctx, f32::sqrt)
}
/// `float expf(float)`
pub fn expf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    unary_f(ctx, f32::exp)
}
/// `float powf(float, float)`
pub fn powf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let x = f32::from_bits(arg(ctx, 0));
    let y = f32::from_bits(arg(ctx, 1));
    let t = arg_taint(ctx, 0) | arg_taint(ctx, 1);
    set_ret_taint(ctx, t);
    Ok(x.powf(y).to_bits())
}
/// `float atan2f(float, float)`
pub fn atan2f(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let x = f32::from_bits(arg(ctx, 0));
    let y = f32::from_bits(arg(ctx, 1));
    let t = arg_taint(ctx, 0) | arg_taint(ctx, 1);
    set_ret_taint(ctx, t);
    Ok(x.atan2(y).to_bits())
}
/// `double strtod(const char *s, char **endp)`
pub fn strtod(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let s = crate::helpers::cstr_lossy(ctx, arg(ctx, 0));
    let trimmed = s.trim_start();
    let parsed: String = trimmed
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == '+')
        .collect();
    let v: f64 = parsed.parse().unwrap_or(0.0);
    let endp = arg(ctx, 1);
    if endp != 0 {
        let consumed = (s.len() - trimmed.len()) + parsed.len();
        let base = arg(ctx, 0);
        ctx.mem.write_u32(endp, base + consumed as u32);
    }
    let t = crate::helpers::cstr_taint(ctx, arg(ctx, 0));
    set_ret_taint64(ctx, t);
    Ok(d_ret(ctx, v))
}
