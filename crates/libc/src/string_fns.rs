//! Modeled string/memory functions of Table VI, with the
//! `TrustCallPolicy` taint transfers.
//!
//! Listing 3 of the paper shows the `memcpy` model: "propagate the
//! srcAddr's taint to destAddr" byte by byte. Every function here does
//! the real data operation on guest memory and mirrors it in the taint
//! map when the analysis tracks native taint.

use crate::helpers::{arg, arg_taint, cstr, cstr_taint, prov_libc, set_ret_taint, tracking};
use ndroid_dvm::Taint;
use ndroid_emu::runtime::NativeCtx;
use ndroid_emu::EmuError;

/// `void *memcpy(void *dest, const void *src, size_t n)`
pub fn memcpy(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (dst, src, n) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2));
    let data = ctx.mem.read_bytes(src, n as usize);
    ctx.mem.write_bytes(dst, &data);
    if tracking(ctx) {
        ctx.shadow.mem.copy_range(dst, src, n);
        ctx.shadow.ops += n as u64;
        prov_libc(ctx, "memcpy", ctx.shadow.mem.range_taint(src, n));
    }
    set_ret_taint(ctx, arg_taint(ctx, 0));
    Ok(dst)
}

/// `void *memmove(void *dest, const void *src, size_t n)`
pub fn memmove(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    memcpy(ctx) // the model copies via a buffer, so overlap is safe
}

/// `void *memset(void *s, int c, size_t n)`
pub fn memset(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (dst, c, n) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2));
    for i in 0..n {
        ctx.mem.write_u8(dst + i, c as u8);
    }
    if tracking(ctx) {
        let t = arg_taint(ctx, 1);
        ctx.shadow.mem.set_range(dst, n, t);
        prov_libc(ctx, "memset", t);
    }
    set_ret_taint(ctx, arg_taint(ctx, 0));
    Ok(dst)
}

/// `size_t strlen(const char *s)`
pub fn strlen(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let s = arg(ctx, 0);
    let len = cstr(ctx, s).len() as u32;
    let t = cstr_taint(ctx, s);
    set_ret_taint(ctx, t);
    Ok(len)
}

fn cmp_common(ctx: &mut NativeCtx<'_>, a: &[u8], b: &[u8]) -> u32 {
    let t = if tracking(ctx) {
        let ta = ctx
            .shadow
            .mem
            .range_taint(arg(ctx, 0), a.len().max(1) as u32);
        let tb = ctx
            .shadow
            .mem
            .range_taint(arg(ctx, 1), b.len().max(1) as u32);
        ta | tb
    } else {
        Taint::CLEAR
    };
    set_ret_taint(ctx, t);
    match a.cmp(b) {
        std::cmp::Ordering::Less => (-1i32) as u32,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

/// `int strcmp(const char *a, const char *b)`
pub fn strcmp(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let a = cstr(ctx, arg(ctx, 0));
    let b = cstr(ctx, arg(ctx, 1));
    Ok(cmp_common(ctx, &a, &b))
}

/// `int strncmp(const char *a, const char *b, size_t n)`
pub fn strncmp(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let n = arg(ctx, 2) as usize;
    let mut a = cstr(ctx, arg(ctx, 0));
    let mut b = cstr(ctx, arg(ctx, 1));
    a.truncate(n);
    b.truncate(n);
    Ok(cmp_common(ctx, &a, &b))
}

/// `int strcasecmp(const char *a, const char *b)`
pub fn strcasecmp(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let a = cstr(ctx, arg(ctx, 0)).to_ascii_lowercase();
    let b = cstr(ctx, arg(ctx, 1)).to_ascii_lowercase();
    Ok(cmp_common(ctx, &a, &b))
}

/// `int strncasecmp(const char *a, const char *b, size_t n)`
pub fn strncasecmp(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let n = arg(ctx, 2) as usize;
    let mut a = cstr(ctx, arg(ctx, 0)).to_ascii_lowercase();
    let mut b = cstr(ctx, arg(ctx, 1)).to_ascii_lowercase();
    a.truncate(n);
    b.truncate(n);
    Ok(cmp_common(ctx, &a, &b))
}

/// `int memcmp(const void *a, const void *b, size_t n)`
pub fn memcmp(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let n = arg(ctx, 2) as usize;
    let a = ctx.mem.read_bytes(arg(ctx, 0), n);
    let b = ctx.mem.read_bytes(arg(ctx, 1), n);
    Ok(cmp_common(ctx, &a, &b))
}

/// `char *strcpy(char *dst, const char *src)`
pub fn strcpy(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (dst, src) = (arg(ctx, 0), arg(ctx, 1));
    let s = cstr(ctx, src);
    ctx.mem.write_cstr(dst, &s);
    if tracking(ctx) {
        ctx.shadow.mem.copy_range(dst, src, s.len() as u32 + 1);
        prov_libc(ctx, "strcpy", ctx.shadow.mem.range_taint(src, s.len().max(1) as u32));
    }
    set_ret_taint(ctx, arg_taint(ctx, 0));
    Ok(dst)
}

/// `char *strncpy(char *dst, const char *src, size_t n)`
pub fn strncpy(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (dst, src, n) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2));
    let mut s = cstr(ctx, src);
    s.truncate(n as usize);
    ctx.mem.write_bytes(dst, &s);
    for i in s.len() as u32..n {
        ctx.mem.write_u8(dst + i, 0);
    }
    if tracking(ctx) {
        ctx.shadow.mem.copy_range(dst, src, s.len() as u32);
        ctx.shadow
            .mem
            .clear_range(dst + s.len() as u32, n - s.len() as u32);
        prov_libc(ctx, "strncpy", ctx.shadow.mem.range_taint(src, s.len().max(1) as u32));
    }
    set_ret_taint(ctx, arg_taint(ctx, 0));
    Ok(dst)
}

/// `char *strcat(char *dst, const char *src)`
pub fn strcat(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (dst, src) = (arg(ctx, 0), arg(ctx, 1));
    let dlen = cstr(ctx, dst).len() as u32;
    let s = cstr(ctx, src);
    ctx.mem.write_cstr(dst + dlen, &s);
    if tracking(ctx) {
        ctx.shadow
            .mem
            .copy_range(dst + dlen, src, s.len() as u32 + 1);
        prov_libc(ctx, "strcat", ctx.shadow.mem.range_taint(src, s.len().max(1) as u32));
    }
    set_ret_taint(ctx, arg_taint(ctx, 0));
    Ok(dst)
}

/// `char *strchr(const char *s, int c)` — pointer into `s` or NULL.
pub fn strchr(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (s, c) = (arg(ctx, 0), arg(ctx, 1) as u8);
    let bytes = cstr(ctx, s);
    set_ret_taint(ctx, arg_taint(ctx, 0));
    Ok(bytes
        .iter()
        .position(|b| *b == c)
        .map(|i| s + i as u32)
        .unwrap_or(0))
}

/// `char *strrchr(const char *s, int c)`
pub fn strrchr(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (s, c) = (arg(ctx, 0), arg(ctx, 1) as u8);
    let bytes = cstr(ctx, s);
    set_ret_taint(ctx, arg_taint(ctx, 0));
    Ok(bytes
        .iter()
        .rposition(|b| *b == c)
        .map(|i| s + i as u32)
        .unwrap_or(0))
}

/// `void *memchr(const void *s, int c, size_t n)`
pub fn memchr(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (s, c, n) = (arg(ctx, 0), arg(ctx, 1) as u8, arg(ctx, 2));
    let bytes = ctx.mem.read_bytes(s, n as usize);
    set_ret_taint(ctx, arg_taint(ctx, 0));
    Ok(bytes
        .iter()
        .position(|b| *b == c)
        .map(|i| s + i as u32)
        .unwrap_or(0))
}

/// `char *strstr(const char *haystack, const char *needle)`
pub fn strstr(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (h, n) = (arg(ctx, 0), arg(ctx, 1));
    let hay = cstr(ctx, h);
    let needle = cstr(ctx, n);
    set_ret_taint(ctx, arg_taint(ctx, 0));
    if needle.is_empty() {
        return Ok(h);
    }
    Ok(hay
        .windows(needle.len())
        .position(|w| w == needle.as_slice())
        .map(|i| h + i as u32)
        .unwrap_or(0))
}

/// `char *strdup(const char *s)` — malloc + copy, taints ride along.
pub fn strdup(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let src = arg(ctx, 0);
    let s = cstr(ctx, src);
    let dst = ctx.kernel.heap.malloc(s.len() as u32 + 1);
    if dst == 0 {
        set_ret_taint(ctx, Taint::CLEAR);
        return Ok(0);
    }
    ctx.mem.write_cstr(dst, &s);
    if tracking(ctx) {
        ctx.shadow.mem.copy_range(dst, src, s.len() as u32 + 1);
        prov_libc(ctx, "strdup", ctx.shadow.mem.range_taint(src, s.len().max(1) as u32));
    }
    set_ret_taint(ctx, arg_taint(ctx, 0));
    Ok(dst)
}

fn parse_int(bytes: &[u8]) -> i64 {
    let s = String::from_utf8_lossy(bytes);
    let s = s.trim_start();
    let (neg, digits) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let mut v: i64 = 0;
    for c in digits.chars() {
        match c.to_digit(10) {
            Some(d) => v = v.saturating_mul(10).saturating_add(d as i64),
            None => break,
        }
    }
    if neg {
        -v
    } else {
        v
    }
}

/// `int atoi(const char *s)` — result taint = string taint.
pub fn atoi(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let s = arg(ctx, 0);
    let v = parse_int(&cstr(ctx, s)) as i32;
    let t = cstr_taint(ctx, s);
    set_ret_taint(ctx, t);
    Ok(v as u32)
}

/// `long atol(const char *s)`
pub fn atol(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    atoi(ctx)
}

/// `unsigned long strtoul(const char *s, char **endp, int base)`
pub fn strtoul(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (s, endp, base) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2));
    let bytes = cstr(ctx, s);
    let text = String::from_utf8_lossy(&bytes);
    let trimmed = text.trim_start();
    let skipped = text.len() - trimmed.len();
    let radix = if base == 0 { 10 } else { base };
    let digits: String = trimmed
        .chars()
        .take_while(|c| c.is_digit(radix))
        .collect();
    let v = u64::from_str_radix(&digits, radix).unwrap_or(0) as u32;
    if endp != 0 {
        ctx.mem
            .write_u32(endp, s + (skipped + digits.len()) as u32);
    }
    let t = cstr_taint(ctx, s);
    set_ret_taint(ctx, t);
    Ok(v)
}

/// `long strtol(const char *s, char **endp, int base)`
pub fn strtol(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    strtoul(ctx)
}

/// `int sscanf(const char *s, const char *fmt, ...)` — supports `%d`
/// and `%s`, enough for the modeled guests. Taint flows from the input
/// string's bytes to each converted output.
pub fn sscanf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let src = arg(ctx, 0);
    let fmt = cstr(ctx, arg(ctx, 1));
    let input = cstr(ctx, src);
    let text = String::from_utf8_lossy(&input).into_owned();
    let mut words = text.split_whitespace();
    let mut out_arg = 2usize;
    let mut converted = 0u32;
    let track = tracking(ctx);
    let src_taint = if track {
        ctx.shadow.mem.range_taint(src, input.len().max(1) as u32)
    } else {
        Taint::CLEAR
    };
    let mut i = 0;
    while i + 1 < fmt.len() {
        if fmt[i] == b'%' {
            let ptr = arg(ctx, out_arg);
            out_arg += 1;
            let Some(word) = words.next() else { break };
            match fmt[i + 1] {
                b'd' => {
                    ctx.mem.write_u32(ptr, parse_int(word.as_bytes()) as i32 as u32);
                    if track {
                        ctx.shadow.mem.set_range(ptr, 4, src_taint);
                    }
                    converted += 1;
                }
                b's' => {
                    ctx.mem.write_cstr(ptr, word.as_bytes());
                    if track {
                        ctx.shadow
                            .mem
                            .set_range(ptr, word.len() as u32 + 1, src_taint);
                    }
                    converted += 1;
                }
                _ => {}
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    prov_libc(ctx, "sscanf", src_taint);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(converted)
}

/// `long sysconf(int name)` — constant configuration values.
pub fn sysconf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(match arg(ctx, 0) {
        30 => 4096, // _SC_PAGESIZE
        84 => 4,    // _SC_NPROCESSORS_ONLN
        _ => 1,
    })
}

// --- allocator family -------------------------------------------------

/// `void *malloc(size_t size)`
pub fn malloc(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let size = arg(ctx, 0);
    let p = ctx.kernel.heap.malloc(size);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(p)
}

/// `void free(void *p)`
pub fn free(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let p = arg(ctx, 0);
    if let Some(size) = ctx.kernel.heap.size_of(p) {
        if tracking(ctx) {
            // Freed memory must not keep stale taint (it would
            // false-positive a future allocation).
            ctx.shadow.mem.clear_range(p, size);
        }
    }
    ctx.kernel.heap.free(p);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `void *calloc(size_t n, size_t size)`
pub fn calloc(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let total = arg(ctx, 0).saturating_mul(arg(ctx, 1));
    let p = ctx.kernel.heap.malloc(total);
    if p != 0 {
        for i in 0..total {
            ctx.mem.write_u8(p + i, 0);
        }
        if tracking(ctx) {
            ctx.shadow.mem.clear_range(p, total);
        }
    }
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(p)
}

/// `void *realloc(void *p, size_t size)`
pub fn realloc(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (p, size) = (arg(ctx, 0), arg(ctx, 1));
    if p == 0 {
        let np = ctx.kernel.heap.malloc(size);
        set_ret_taint(ctx, Taint::CLEAR);
        return Ok(np);
    }
    let old = ctx.kernel.heap.size_of(p).unwrap_or(0);
    let np = ctx.kernel.heap.malloc(size);
    if np != 0 {
        let n = old.min(size);
        let data = ctx.mem.read_bytes(p, n as usize);
        ctx.mem.write_bytes(np, &data);
        if tracking(ctx) {
            ctx.shadow.mem.copy_range(np, p, n);
            ctx.shadow.mem.clear_range(p, old);
        }
        ctx.kernel.heap.free(p);
    }
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(np)
}
