#![warn(missing_docs)]

//! # ndroid-libc
//!
//! Modeled Bionic libc/libm functions and the hooked system-call layer
//! of the NDroid reproduction.
//!
//! "Since the system standard functions will be frequently called by
//! native libraries, instrumenting every instruction in these standard
//! functions will take a long time and incur heavy overhead. Instead,
//! we model the taint propagation operations for popular functions"
//! (§V-D, Table VI). Each function here is a *host function* (see
//! [`ndroid_emu::runtime::HostTable`]) registered at a deterministic
//! guest trap address: guest code `BLX`es to the address and the Rust
//! model runs, performing both the real data operation on guest memory
//! and — when the active analysis tracks native taint — the taint
//! transfer of the paper's `TrustCallPolicy` handlers (Listing 3 shows
//! the `memcpy` model this reproduces).
//!
//! Table VII's system-call layer is also here; the starred calls
//! (`fwrite*`, `write*`, `fputc*`, `fputs*`, `send*`, `sendto*`, plus
//! `fprintf` which Fig. 8 treats as a sink) report to the kernel's
//! leak log.

pub mod format;
pub mod helpers;
pub mod math;
pub mod registry;
pub mod stdio;
pub mod string_fns;
pub mod syscalls;

pub use registry::{
    install_all, install_libc, install_libm, libc_addr, libm_addr, LIBC_NAMES, LIBM_NAMES,
};
