//! A minimal printf-style formatter with byte-level taint tracking.
//!
//! Supports `%s`, `%d`, `%u`, `%x`, `%c`, `%%` — enough for the flows
//! the paper's case studies exercise (`sprintf` URL building in
//! QQPhoneBook, the `fprintf(FILE, "%s %s %s", …)` sink of Fig. 8).

use crate::helpers::{cstr, tracking, ArgSource};
use ndroid_dvm::Taint;
use ndroid_emu::runtime::NativeCtx;

/// Formats `fmt` (a guest string address) consuming arguments from
/// `args`. Returns the output bytes and a per-byte taint vector
/// (all-clear when the analysis does not track native taint).
pub fn format_guest(
    ctx: &NativeCtx<'_>,
    fmt_addr: u32,
    args: &mut ArgSource,
) -> (Vec<u8>, Vec<Taint>) {
    let fmt = cstr(ctx, fmt_addr);
    let track = tracking(ctx);
    let mut out: Vec<u8> = Vec::new();
    let mut taints: Vec<Taint> = Vec::new();
    let push = |bytes: &[u8], t: Taint, out: &mut Vec<u8>, taints: &mut Vec<Taint>| {
        out.extend_from_slice(bytes);
        taints.extend(std::iter::repeat_n(t, bytes.len()));
    };

    let mut i = 0;
    while i < fmt.len() {
        let b = fmt[i];
        if b != b'%' {
            // The format string's own taint rides along byte-for-byte.
            let t = if track {
                ctx.shadow.mem.get(fmt_addr + i as u32)
            } else {
                Taint::CLEAR
            };
            push(&[b], t, &mut out, &mut taints);
            i += 1;
            continue;
        }
        i += 1;
        let spec = fmt.get(i).copied().unwrap_or(b'%');
        i += 1;
        match spec {
            b'%' => push(b"%", Taint::CLEAR, &mut out, &mut taints),
            b'c' => {
                let (v, t) = args.next(ctx);
                push(&[v as u8], if track { t } else { Taint::CLEAR }, &mut out, &mut taints);
            }
            b'd' => {
                let (v, t) = args.next(ctx);
                let s = format!("{}", v as i32);
                push(s.as_bytes(), if track { t } else { Taint::CLEAR }, &mut out, &mut taints);
            }
            b'u' => {
                let (v, t) = args.next(ctx);
                let s = format!("{v}");
                push(s.as_bytes(), if track { t } else { Taint::CLEAR }, &mut out, &mut taints);
            }
            b'x' => {
                let (v, t) = args.next(ctx);
                let s = format!("{v:x}");
                push(s.as_bytes(), if track { t } else { Taint::CLEAR }, &mut out, &mut taints);
            }
            b's' => {
                let (ptr, ptr_taint) = args.next(ctx);
                let s = cstr(ctx, ptr);
                for (j, byte) in s.iter().enumerate() {
                    let t = if track {
                        ctx.shadow.mem.get(ptr + j as u32) | ptr_taint
                    } else {
                        Taint::CLEAR
                    };
                    push(&[*byte], t, &mut out, &mut taints);
                }
            }
            other => {
                // Unknown specifier: emit literally (glibc would too,
                // near enough, and our guests only use the above).
                push(&[b'%', other], Taint::CLEAR, &mut out, &mut taints);
            }
        }
    }
    (out, taints)
}

/// Writes formatted output (with taints) into guest memory at `dst`,
/// NUL-terminated. Returns the number of data bytes written.
pub fn write_formatted(
    ctx: &mut NativeCtx<'_>,
    dst: u32,
    bytes: &[u8],
    taints: &[Taint],
    max: Option<usize>,
) -> u32 {
    let n = match max {
        Some(m) => bytes.len().min(m.saturating_sub(1)),
        None => bytes.len(),
    };
    ctx.mem.write_bytes(dst, &bytes[..n]);
    ctx.mem.write_u8(dst + n as u32, 0);
    if tracking(ctx) {
        for (i, t) in taints[..n].iter().enumerate() {
            ctx.shadow.mem.set(dst + i as u32, *t);
        }
        ctx.shadow.mem.set(dst + n as u32, Taint::CLEAR);
    }
    n as u32
}
