//! Modeled stdio: the `sprintf` family and `FILE*`-based I/O.
//!
//! `fprintf`, `fwrite`, `fputc`, `fputs` are sinks (Table VII /
//! Fig. 8's `SinkHandler[fprintf]`).

use crate::format::{format_guest, write_formatted};
use crate::helpers::{arg, cstr, prov_libc, set_ret_taint, tracking, ArgSource, VaList, VarArgs};
use ndroid_dvm::Taint;
use ndroid_emu::runtime::NativeCtx;
use ndroid_emu::EmuError;

/// Allocates a guest `FILE` structure wrapping `fd`.
fn file_new(ctx: &mut NativeCtx<'_>, fd: i32) -> u32 {
    let p = ctx.kernel.heap.malloc(16);
    ctx.mem.write_u32(p, 0xF11E_0000 | (fd as u32 & 0xFFFF));
    p
}

/// Extracts the fd from a guest `FILE*`.
fn file_fd(ctx: &NativeCtx<'_>, file: u32) -> Result<i32, EmuError> {
    let word = ctx.mem.read_u32(file);
    if word & 0xFFFF_0000 != 0xF11E_0000 {
        return Err(EmuError::Kernel(format!("bad FILE* {file:#x}")));
    }
    Ok((word & 0xFFFF) as i32)
}

/// `FILE *fopen(const char *path, const char *mode)`
pub fn fopen(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let path = String::from_utf8_lossy(&cstr(ctx, arg(ctx, 0))).into_owned();
    let mode = cstr(ctx, arg(ctx, 1));
    let create = mode.contains(&b'w') || mode.contains(&b'a');
    ctx.trace
        .push("libc", format!("TrustCallHandler[fopen] Open '{path}'"));
    let fd = match ctx.kernel.open(&path, create) {
        Ok(fd) => fd,
        Err(_) => {
            set_ret_taint(ctx, Taint::CLEAR);
            return Ok(0);
        }
    };
    let file = file_new(ctx, fd);
    ctx.trace
        .push("libc", format!("TrustCallHandler[fopen] Return FILE@{file:#x}"));
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(file)
}

/// `int fclose(FILE *f)`
pub fn fclose(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let file = arg(ctx, 0);
    let fd = file_fd(ctx, file)?;
    ctx.trace
        .push("libc", format!("TrustCallHandler[fclose] Close FILE@{file:#x}"));
    ctx.kernel.close(fd)?;
    ctx.kernel.heap.free(file);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `size_t fread(void *buf, size_t size, size_t n, FILE *f)`
pub fn fread(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (buf, size, n, file) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2), arg(ctx, 3));
    let fd = file_fd(ctx, file)?;
    let data = ctx.kernel.read(fd, (size * n) as usize)?;
    ctx.mem.write_bytes(buf, &data);
    if tracking(ctx) {
        // File contents carry no native taint in this model (file
        // *writes* were already reported at the sink).
        ctx.shadow.mem.clear_range(buf, data.len() as u32);
    }
    set_ret_taint(ctx, Taint::CLEAR);
    Ok((data.len() as u32).checked_div(size).unwrap_or(0))
}

/// `size_t fwrite(const void *buf, size_t size, size_t n, FILE *f)` — **sink**.
pub fn fwrite(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (buf, size, n, file) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2), arg(ctx, 3));
    let fd = file_fd(ctx, file)?;
    let len = size * n;
    let data = ctx.mem.read_bytes(buf, len as usize);
    let taint = if tracking(ctx) {
        ctx.shadow.mem.range_taint(buf, len)
    } else {
        Taint::CLEAR
    };
    ctx.kernel.write(fd, &data, taint)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(n)
}

/// `int fputc(int c, FILE *f)` — **sink**.
pub fn fputc(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (c, file) = (arg(ctx, 0), arg(ctx, 1));
    let fd = file_fd(ctx, file)?;
    let taint = if tracking(ctx) {
        ctx.shadow.regs[0]
    } else {
        Taint::CLEAR
    };
    ctx.kernel.write(fd, &[c as u8], taint)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(c)
}

/// `int fputs(const char *s, FILE *f)` — **sink**.
pub fn fputs(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (s, file) = (arg(ctx, 0), arg(ctx, 1));
    let fd = file_fd(ctx, file)?;
    let data = cstr(ctx, s);
    let taint = if tracking(ctx) {
        ctx.shadow.mem.range_taint(s, data.len().max(1) as u32)
    } else {
        Taint::CLEAR
    };
    ctx.kernel.write(fd, &data, taint)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(data.len() as u32)
}

/// `char *fgets(char *buf, int n, FILE *f)`
pub fn fgets(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (buf, n, file) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2));
    let fd = file_fd(ctx, file)?;
    let data = ctx.kernel.read(fd, (n.saturating_sub(1)) as usize)?;
    if data.is_empty() {
        set_ret_taint(ctx, Taint::CLEAR);
        return Ok(0);
    }
    let line_len = data
        .iter()
        .position(|b| *b == b'\n')
        .map(|i| i + 1)
        .unwrap_or(data.len());
    ctx.mem.write_bytes(buf, &data[..line_len]);
    ctx.mem.write_u8(buf + line_len as u32, 0);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(buf)
}

/// `int getc(FILE *f)`
pub fn getc(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let file = arg(ctx, 0);
    let fd = file_fd(ctx, file)?;
    let data = ctx.kernel.read(fd, 1)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(data.first().map(|b| *b as u32).unwrap_or(u32::MAX)) // EOF = -1
}

/// `FILE *fdopen(int fd, const char *mode)`
pub fn fdopen(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let fd = arg(ctx, 0) as i32;
    let file = file_new(ctx, fd);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(file)
}

/// `int sprintf(char *dst, const char *fmt, ...)`
pub fn sprintf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let dst = arg(ctx, 0);
    let mut args = ArgSource::Var(VarArgs::new(2));
    let (bytes, taints) = format_guest(ctx, arg(ctx, 1), &mut args);
    let n = write_formatted(ctx, dst, &bytes, &taints, None);
    prov_libc(ctx, "sprintf", taints.iter().fold(Taint::CLEAR, |acc, t| acc.union(*t)));
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(n)
}

/// `int snprintf(char *dst, size_t size, const char *fmt, ...)`
pub fn snprintf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let dst = arg(ctx, 0);
    let size = arg(ctx, 1) as usize;
    let mut args = ArgSource::Var(VarArgs::new(3));
    let (bytes, taints) = format_guest(ctx, arg(ctx, 2), &mut args);
    let n = write_formatted(ctx, dst, &bytes, &taints, Some(size));
    prov_libc(ctx, "snprintf", taints.iter().fold(Taint::CLEAR, |acc, t| acc.union(*t)));
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(n)
}

/// `int vsprintf(char *dst, const char *fmt, va_list ap)`
pub fn vsprintf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let dst = arg(ctx, 0);
    let mut args = ArgSource::List(VaList::new(arg(ctx, 2)));
    let (bytes, taints) = format_guest(ctx, arg(ctx, 1), &mut args);
    let n = write_formatted(ctx, dst, &bytes, &taints, None);
    prov_libc(ctx, "vsprintf", taints.iter().fold(Taint::CLEAR, |acc, t| acc.union(*t)));
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(n)
}

/// `int vsnprintf(char *dst, size_t size, const char *fmt, va_list ap)`
pub fn vsnprintf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let dst = arg(ctx, 0);
    let size = arg(ctx, 1) as usize;
    let mut args = ArgSource::List(VaList::new(arg(ctx, 3)));
    let (bytes, taints) = format_guest(ctx, arg(ctx, 2), &mut args);
    let n = write_formatted(ctx, dst, &bytes, &taints, Some(size));
    prov_libc(ctx, "vsnprintf", taints.iter().fold(Taint::CLEAR, |acc, t| acc.union(*t)));
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(n)
}

fn fprintf_common(
    ctx: &mut NativeCtx<'_>,
    file: u32,
    fmt: u32,
    mut args: ArgSource,
) -> Result<u32, EmuError> {
    let fd = file_fd(ctx, file)?;
    let (bytes, taints) = format_guest(ctx, fmt, &mut args);
    let taint = taints.iter().fold(Taint::CLEAR, |acc, t| acc.union(*t));
    ctx.trace.push(
        "sink",
        format!(
            "SinkHandler[fprintf] FILE@{file:#x} taint={taint} data='{}'",
            String::from_utf8_lossy(&bytes)
        ),
    );
    ctx.kernel.write(fd, &bytes, taint)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(bytes.len() as u32)
}

/// `int fprintf(FILE *f, const char *fmt, ...)` — **sink** (Fig. 8).
pub fn fprintf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (file, fmt) = (arg(ctx, 0), arg(ctx, 1));
    fprintf_common(ctx, file, fmt, ArgSource::Var(VarArgs::new(2)))
}

/// `int vfprintf(FILE *f, const char *fmt, va_list ap)` — **sink**.
pub fn vfprintf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (file, fmt, ap) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2));
    fprintf_common(ctx, file, fmt, ArgSource::List(VaList::new(ap)))
}
