//! End-to-end tests of the modeled libc/libm functions: real ARM guest
//! code `BLX`ing into the trap addresses, with a native-tracking
//! analysis so the `TrustCallPolicy` taint transfers are observable.

use ndroid_arm::block::BlockCache;
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::{Assembler, Cpu, Memory, Reg};
use ndroid_dvm::{Dvm, Program, Taint};
use ndroid_emu::layout;
use ndroid_emu::runtime::{call_guest, Analysis, HostTable, NativeCtx};
use ndroid_emu::{Kernel, ShadowState, TraceLog};
use ndroid_libc::{install_all, libc_addr, libm_addr};

/// Minimal analysis that enables native taint tracking (no Table V
/// instruction tracing — these tests only exercise the function
/// models).
struct TrackOnly;

impl Analysis for TrackOnly {
    fn tracks_native(&self) -> bool {
        true
    }
}

struct World {
    cpu: Cpu,
    mem: Memory,
    dvm: Dvm,
    shadow: ShadowState,
    kernel: Kernel,
    trace: TraceLog,
    budget: u64,
    icache: DecodeCache,
    blocks: BlockCache,
    table: HostTable,
}

impl World {
    fn new() -> World {
        let mut cpu = Cpu::new();
        cpu.regs[13] = layout::NATIVE_STACK_TOP;
        let mut table = HostTable::new();
        install_all(&mut table);
        World {
            cpu,
            mem: Memory::new(),
            dvm: Dvm::new(Program::new()),
            shadow: ShadowState::new(),
            kernel: Kernel::new(),
            trace: TraceLog::new(),
            budget: 1_000_000,
            icache: DecodeCache::new(),
            blocks: BlockCache::new(),
            table,
        }
    }

    /// Runs `body` (assembled at the native-code base) and returns R0.
    fn run(&mut self, build: impl FnOnce(&mut Assembler)) -> u32 {
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.push(ndroid_arm::reg::RegList::of(&[Reg::R4, Reg::LR]));
        build(&mut asm);
        asm.pop(ndroid_arm::reg::RegList::of(&[Reg::R4, Reg::PC]));
        let code = asm.assemble().expect("assemble");
        self.mem.write_bytes(code.base, &code.bytes);
        let mut analysis = TrackOnly;
        let mut ctx = NativeCtx {
            cpu: &mut self.cpu,
            mem: &mut self.mem,
            dvm: &mut self.dvm,
            shadow: &mut self.shadow,
            kernel: &mut self.kernel,
            trace: &mut self.trace,
            analysis: &mut analysis,
            budget: &mut self.budget,
            icache: &mut self.icache,
            blocks: &mut self.blocks,
        };
        let (r0, _) = call_guest(&mut ctx, &self.table, code.base, &[], |_, _| {})
            .expect("guest run");
        r0
    }
}

const BUF_A: u32 = 0x2000_0000;
const BUF_B: u32 = 0x2000_1000;
const BUF_C: u32 = 0x2000_2000;

#[test]
fn memcpy_copies_bytes_and_taint() {
    let mut w = World::new();
    w.mem.write_bytes(BUF_A, b"sensitive!");
    w.shadow.mem.set_range(BUF_A, 9, Taint::IMEI);
    let r = w.run(|asm| {
        asm.ldr_const(Reg::R0, BUF_B);
        asm.ldr_const(Reg::R1, BUF_A);
        asm.mov_imm(Reg::R2, 10).unwrap();
        asm.call_abs(libc_addr("memcpy"));
    });
    assert_eq!(r, BUF_B, "memcpy returns dest");
    assert_eq!(w.mem.read_bytes(BUF_B, 10), b"sensitive!");
    // Listing 3's model: per-byte taint transfer.
    assert_eq!(w.shadow.mem.range_taint(BUF_B, 9), Taint::IMEI);
    assert_eq!(w.shadow.mem.get(BUF_B + 9), Taint::CLEAR);
}

#[test]
fn strcpy_strcat_chain_taint() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"imei=");
    w.mem.write_cstr(BUF_B, b"35693");
    w.shadow.mem.set_range(BUF_B, 5, Taint::IMEI);
    w.run(|asm| {
        asm.ldr_const(Reg::R0, BUF_C);
        asm.ldr_const(Reg::R1, BUF_A);
        asm.call_abs(libc_addr("strcpy"));
        asm.ldr_const(Reg::R0, BUF_C);
        asm.ldr_const(Reg::R1, BUF_B);
        asm.call_abs(libc_addr("strcat"));
    });
    assert_eq!(w.mem.read_cstr(BUF_C), b"imei=35693");
    assert_eq!(w.shadow.mem.range_taint(BUF_C, 5), Taint::CLEAR);
    assert_eq!(w.shadow.mem.range_taint(BUF_C + 5, 5), Taint::IMEI);
}

#[test]
fn strlen_returns_length_with_taint() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"hello");
    w.shadow.mem.add(BUF_A + 2, Taint::SMS);
    let r = w.run(|asm| {
        asm.ldr_const(Reg::R0, BUF_A);
        asm.call_abs(libc_addr("strlen"));
        asm.ldr_const(Reg::R1, BUF_B);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    let _ = r;
    assert_eq!(w.mem.read_u32(BUF_B), 5);
}

#[test]
fn sprintf_taints_expansion() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"id=%s!");
    w.mem.write_cstr(BUF_B, b"4411");
    w.shadow.mem.set_range(BUF_B, 4, Taint::CONTACTS);
    w.run(|asm| {
        asm.ldr_const(Reg::R0, BUF_C);
        asm.ldr_const(Reg::R1, BUF_A);
        asm.ldr_const(Reg::R2, BUF_B);
        asm.call_abs(libc_addr("sprintf"));
    });
    assert_eq!(w.mem.read_cstr(BUF_C), b"id=4411!");
    assert_eq!(w.shadow.mem.range_taint(BUF_C, 3), Taint::CLEAR, "'id=' clean");
    assert_eq!(
        w.shadow.mem.range_taint(BUF_C + 3, 4),
        Taint::CONTACTS,
        "%s expansion tainted"
    );
    assert_eq!(w.shadow.mem.get(BUF_C + 7), Taint::CLEAR, "'!' clean");
}

#[test]
fn atoi_propagates_string_taint_to_int() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"1337");
    w.shadow.mem.set_range(BUF_A, 4, Taint::PHONE_NUMBER);
    let r = w.run(|asm| {
        asm.ldr_const(Reg::R0, BUF_A);
        asm.call_abs(libc_addr("atoi"));
        asm.ldr_const(Reg::R1, BUF_B);
        asm.str(Reg::R0, Reg::R1, 0);
        // Persist the *shadow* of r0 by storing it — the STR propagates
        // register taint into memory only via the instruction tracer,
        // which this test does not enable; check the value only.
    });
    let _ = r;
    assert_eq!(w.mem.read_u32(BUF_B), 1337);
}

#[test]
fn file_roundtrip_with_fprintf_sink() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"/sdcard/CONTACTS");
    w.mem.write_cstr(BUF_B, b"w");
    w.mem.write_cstr(BUF_C, b"%s");
    w.mem.write_cstr(BUF_C + 0x100, b"Vincent");
    w.shadow.mem.set_range(BUF_C + 0x100, 7, Taint::CONTACTS);
    w.run(|asm| {
        asm.ldr_const(Reg::R0, BUF_A);
        asm.ldr_const(Reg::R1, BUF_B);
        asm.call_abs(libc_addr("fopen"));
        asm.mov(Reg::R4, Reg::R0); // FILE*
        asm.ldr_const(Reg::R1, BUF_C);
        asm.ldr_const(Reg::R2, BUF_C + 0x100);
        asm.call_abs(libc_addr("fprintf"));
        asm.mov(Reg::R0, Reg::R4);
        asm.call_abs(libc_addr("fclose"));
    });
    // Wait: fprintf needs FILE* in r0 — the `mov r0, r4` must come
    // before loading fmt args. The sequence above clobbers r0 with the
    // fopen result then overwrites via ldr_const? No: fprintf(r0=FILE,
    // r1=fmt, r2=arg) — r0 still holds the FILE from fopen when
    // fprintf is called (mov r4 copied it, ldr_const writes r1/r2).
    let leaks: Vec<_> = w.kernel.leaks().collect();
    assert_eq!(leaks.len(), 1, "fprintf sink fired");
    assert_eq!(leaks[0].taint, Taint::CONTACTS);
    assert_eq!(leaks[0].dest, "/sdcard/CONTACTS");
    assert_eq!(leaks[0].data, "Vincent");
    assert_eq!(w.kernel.fs["/sdcard/CONTACTS"], b"Vincent");
    assert!(w.trace.contains("SinkHandler[fprintf]"));
    assert!(w.trace.contains("TrustCallHandler[fopen]"));
}

#[test]
fn socket_sendto_sink() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"softphone.comwave.net");
    w.mem.write_cstr(BUF_B, b"REGISTER sip:4804001849");
    w.shadow.mem.set_range(BUF_B + 13, 10, Taint::CONTACTS);
    w.run(|asm| {
        asm.call_abs(libc_addr("socket"));
        // sendto(fd, buf, len, flags, dest, addrlen)
        asm.ldr_const(Reg::R1, BUF_B);
        asm.mov_imm(Reg::R2, 23).unwrap();
        asm.mov_imm(Reg::R3, 0).unwrap();
        // Stack args: dest pointer + addrlen.
        asm.ldr_const(Reg::R4, BUF_A);
        asm.sub_imm(Reg::SP, Reg::SP, 8).unwrap();
        asm.str(Reg::R4, Reg::SP, 0);
        asm.mov_imm(Reg::R4, 0).unwrap();
        asm.str(Reg::R4, Reg::SP, 4);
        asm.call_abs(libc_addr("sendto"));
        asm.add_imm(Reg::SP, Reg::SP, 8).unwrap();
    });
    let leaks: Vec<_> = w.kernel.leaks().collect();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].sink, "sendto");
    assert_eq!(leaks[0].dest, "softphone.comwave.net");
    assert!(leaks[0].taint.contains(Taint::CONTACTS));
}

#[test]
fn untainted_send_not_a_leak() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"example.com");
    w.mem.write_cstr(BUF_B, b"hello");
    w.run(|asm| {
        asm.call_abs(libc_addr("socket"));
        asm.mov(Reg::R4, Reg::R0);
        asm.ldr_const(Reg::R1, BUF_A);
        asm.call_abs(libc_addr("connect"));
        asm.mov(Reg::R0, Reg::R4);
        asm.ldr_const(Reg::R1, BUF_B);
        asm.mov_imm(Reg::R2, 5).unwrap();
        asm.mov_imm(Reg::R3, 0).unwrap();
        asm.call_abs(libc_addr("send"));
    });
    assert_eq!(w.kernel.events.len(), 1, "send recorded");
    assert_eq!(w.kernel.leaks().count(), 0, "but clean data is no leak");
    assert_eq!(w.kernel.network_log[0].0, "example.com");
}

#[test]
fn malloc_free_from_guest() {
    let mut w = World::new();
    w.run(|asm| {
        asm.mov_imm(Reg::R0, 64).unwrap();
        asm.call_abs(libc_addr("malloc"));
        asm.mov(Reg::R4, Reg::R0);
        asm.ldr_const(Reg::R1, BUF_B);
        asm.str(Reg::R0, Reg::R1, 0);
        asm.mov(Reg::R0, Reg::R4);
        asm.call_abs(libc_addr("free"));
    });
    let p = w.mem.read_u32(BUF_B);
    assert!(layout::in_native_heap(p), "malloc result in heap: {p:#x}");
    assert_eq!(w.kernel.heap.live(), 0, "freed");
}

#[test]
fn free_clears_stale_taint() {
    let mut w = World::new();
    w.run(|asm| {
        asm.mov_imm(Reg::R0, 16).unwrap();
        asm.call_abs(libc_addr("malloc"));
        asm.ldr_const(Reg::R1, BUF_B);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    let p = w.mem.read_u32(BUF_B);
    w.shadow.mem.set_range(p, 16, Taint::SMS);
    w.run(|asm| {
        asm.ldr_const(Reg::R1, BUF_B);
        asm.ldr(Reg::R0, Reg::R1, 0);
        asm.call_abs(libc_addr("free"));
    });
    assert_eq!(w.shadow.mem.range_taint(p, 16), Taint::CLEAR);
}

#[test]
fn strcmp_and_memcmp_results() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"abc");
    w.mem.write_cstr(BUF_B, b"abd");
    let r = w.run(|asm| {
        asm.ldr_const(Reg::R0, BUF_A);
        asm.ldr_const(Reg::R1, BUF_B);
        asm.call_abs(libc_addr("strcmp"));
        asm.ldr_const(Reg::R1, BUF_C);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    let _ = r;
    assert_eq!(w.mem.read_u32(BUF_C) as i32, -1);
}

#[test]
fn libm_double_math_softfp() {
    let mut w = World::new();
    // pow(2.0, 10.0) = 1024.0, args in r0:r1 / r2:r3.
    let two = 2.0f64.to_bits();
    let ten = 10.0f64.to_bits();
    w.run(move |asm| {
        asm.ldr_const(Reg::R0, two as u32);
        asm.ldr_const(Reg::R1, (two >> 32) as u32);
        asm.ldr_const(Reg::R2, ten as u32);
        asm.ldr_const(Reg::R3, (ten >> 32) as u32);
        asm.call_abs(libm_addr("pow"));
        asm.ldr_const(Reg::R2, BUF_B);
        asm.str(Reg::R0, Reg::R2, 0);
        asm.str(Reg::R1, Reg::R2, 4);
    });
    assert_eq!(f64::from_bits(w.mem.read_u64(BUF_B)), 1024.0);
}

#[test]
fn libm_taint_flows_through_math() {
    let mut w = World::new();
    let x = std::f64::consts::PI.to_bits();
    // Set shadow taints on the arg registers via a prelude: we can't
    // set shadow regs from guest code, so set them directly and call
    // through a single call_guest invocation that preserves them.
    // Instead: mark the literal-pool load path — simplest is to verify
    // the model directly at the host-fn level through memory-less args.
    let mut analysis = TrackOnly;
    let mut ctx = NativeCtx {
        cpu: &mut w.cpu,
        mem: &mut w.mem,
        dvm: &mut w.dvm,
        shadow: &mut w.shadow,
        kernel: &mut w.kernel,
        trace: &mut w.trace,
        analysis: &mut analysis,
        budget: &mut w.budget,
        icache: &mut w.icache,
        blocks: &mut w.blocks,
    };
    ctx.cpu.regs[0] = x as u32;
    ctx.cpu.regs[1] = (x >> 32) as u32;
    ctx.shadow.regs[0] = Taint::LOCATION_GPS;
    let r = ndroid_libc::math::sin(&mut ctx).unwrap();
    let bits = (r as u64) | ((ctx.cpu.regs[1] as u64) << 32);
    assert!(f64::from_bits(bits).abs() < 1e-12, "sin(pi) ≈ 0");
    assert_eq!(ctx.shadow.regs[0], Taint::LOCATION_GPS, "result tainted");
    assert_eq!(ctx.shadow.regs[1], Taint::LOCATION_GPS);
}

#[test]
fn sscanf_extracts_with_taint() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"42 Vincent");
    w.mem.write_cstr(BUF_B, b"%d %s");
    w.shadow.mem.set_range(BUF_A, 10, Taint::CONTACTS);
    w.run(|asm| {
        asm.ldr_const(Reg::R0, BUF_A);
        asm.ldr_const(Reg::R1, BUF_B);
        asm.ldr_const(Reg::R2, BUF_C); // %d out
        asm.ldr_const(Reg::R3, BUF_C + 0x40); // %s out
        asm.call_abs(libc_addr("sscanf"));
    });
    assert_eq!(w.mem.read_u32(BUF_C), 42);
    assert_eq!(w.mem.read_cstr(BUF_C + 0x40), b"Vincent");
    assert_eq!(w.shadow.mem.range_taint(BUF_C, 4), Taint::CONTACTS);
    assert_eq!(
        w.shadow.mem.range_taint(BUF_C + 0x40, 7),
        Taint::CONTACTS
    );
}

#[test]
fn observed_stubs_log_and_return_zero() {
    let mut w = World::new();
    let r = w.run(|asm| {
        asm.mov_imm(Reg::R0, 0).unwrap();
        asm.call_abs(libc_addr("ptrace"));
    });
    assert_eq!(r, 0);
    assert!(w.trace.contains("TrustCallHandler[ptrace]"));
}

#[test]
fn strstr_and_strchr_find_positions() {
    let mut w = World::new();
    w.mem.write_cstr(BUF_A, b"http://sync.3g.qq.com/x");
    w.mem.write_cstr(BUF_B, b"qq.com");
    w.run(|asm| {
        asm.ldr_const(Reg::R0, BUF_A);
        asm.ldr_const(Reg::R1, BUF_B);
        asm.call_abs(libc_addr("strstr"));
        asm.ldr_const(Reg::R1, BUF_C);
        asm.str(Reg::R0, Reg::R1, 0);
        asm.ldr_const(Reg::R0, BUF_A);
        asm.mov_imm(Reg::R1, b'/' as u32).unwrap();
        asm.call_abs(libc_addr("strchr"));
        asm.ldr_const(Reg::R1, BUF_C + 4);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    assert_eq!(w.mem.read_u32(BUF_C), BUF_A + 15);
    assert_eq!(w.mem.read_u32(BUF_C + 4), BUF_A + 5);
}
