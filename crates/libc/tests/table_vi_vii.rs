//! Direct unit tests of the Table VI taint-propagation models and the
//! Table VII starred source/sink entries, calling the host functions
//! at the `NativeCtx` level (no guest assembly) so every assertion is
//! about the model itself: byte-granular taint transfer for
//! `memcpy`/`strcpy`/`sprintf` (§V-D, Listing 3) and leak reporting on
//! `write*`/`send*` (Fig. 7/8).

use ndroid_arm::block::BlockCache;
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::{Cpu, Memory};
use ndroid_dvm::{Dvm, Program, Taint};
use ndroid_emu::layout;
use ndroid_emu::runtime::{Analysis, NativeCtx};
use ndroid_emu::{EmuError, Kernel, ShadowState, TraceLog};
use ndroid_libc::{string_fns, syscalls};

/// Enables native taint tracking without any instruction tracing.
struct TrackOnly;

impl Analysis for TrackOnly {
    fn tracks_native(&self) -> bool {
        true
    }
}

type HostFn = fn(&mut NativeCtx<'_>) -> Result<u32, EmuError>;

struct W {
    cpu: Cpu,
    mem: Memory,
    dvm: Dvm,
    shadow: ShadowState,
    kernel: Kernel,
    trace: TraceLog,
    budget: u64,
    icache: DecodeCache,
    blocks: BlockCache,
}

impl W {
    fn new() -> W {
        let mut cpu = Cpu::new();
        cpu.regs[13] = layout::NATIVE_STACK_TOP;
        W {
            cpu,
            mem: Memory::new(),
            dvm: Dvm::new(Program::new()),
            shadow: ShadowState::new(),
            kernel: Kernel::new(),
            trace: TraceLog::new(),
            budget: 1_000_000,
            icache: DecodeCache::new(),
            blocks: BlockCache::new(),
        }
    }

    /// Calls a modeled host function with register arguments (R0–R3),
    /// returning R0. Register shadow taints persist across calls so a
    /// test can pre-taint an argument register.
    fn call(&mut self, f: HostFn, args: &[u32]) -> u32 {
        assert!(args.len() <= 4, "register args only");
        for (i, a) in args.iter().enumerate() {
            self.cpu.regs[i] = *a;
        }
        let mut analysis = TrackOnly;
        let mut ctx = NativeCtx {
            cpu: &mut self.cpu,
            mem: &mut self.mem,
            dvm: &mut self.dvm,
            shadow: &mut self.shadow,
            kernel: &mut self.kernel,
            trace: &mut self.trace,
            analysis: &mut analysis,
            budget: &mut self.budget,
            icache: &mut self.icache,
            blocks: &mut self.blocks,
        };
        f(&mut ctx).expect("host fn")
    }
}

const BUF_A: u32 = 0x2000_0000;
const BUF_B: u32 = 0x2000_1000;
const BUF_C: u32 = 0x2000_2000;

// ---------------------------------------------------------------- Table VI

#[test]
fn memcpy_taint_is_byte_granular() {
    let mut w = W::new();
    w.mem.write_bytes(BUF_A, b"0123456789abcdef");
    // Only bytes [5, 9) of the source carry taint.
    w.shadow.mem.set_range(BUF_A + 5, 4, Taint::IMEI);
    w.call(string_fns::memcpy, &[BUF_B, BUF_A, 16]);
    assert_eq!(w.mem.read_bytes(BUF_B, 16), b"0123456789abcdef");
    for i in 0..16u32 {
        let expect = if (5..9).contains(&i) {
            Taint::IMEI
        } else {
            Taint::CLEAR
        };
        assert_eq!(w.shadow.mem.get(BUF_B + i), expect, "dest byte {i}");
    }
}

#[test]
fn memcpy_overwrites_stale_destination_taint() {
    let mut w = W::new();
    w.mem.write_bytes(BUF_A, &[0u8; 16]);
    w.shadow.mem.set_range(BUF_B, 16, Taint::SMS);
    w.call(string_fns::memcpy, &[BUF_B, BUF_A, 16]);
    // Listing 3's per-byte transfer replaces, not unions: clean source
    // bytes scrub the old destination taint.
    assert_eq!(w.shadow.mem.range_taint(BUF_B, 16), Taint::CLEAR);
}

#[test]
fn memmove_overlap_keeps_byte_taint_aligned() {
    let mut w = W::new();
    w.mem.write_bytes(BUF_A, b"XYZW....");
    w.shadow.mem.set(BUF_A, Taint::IMEI); // only 'X'
    w.call(string_fns::memmove, &[BUF_A + 2, BUF_A, 4]);
    assert_eq!(w.mem.read_bytes(BUF_A, 8), b"XYXYZW..");
    assert_eq!(w.shadow.mem.get(BUF_A + 2), Taint::IMEI, "'X' moved to +2");
    assert_eq!(w.shadow.mem.get(BUF_A + 3), Taint::CLEAR);
    assert_eq!(w.shadow.mem.get(BUF_A + 4), Taint::CLEAR);
}

#[test]
fn memset_sets_fill_value_taint() {
    let mut w = W::new();
    w.shadow.mem.set_range(BUF_B, 8, Taint::SMS);
    // Clean fill byte scrubs the range…
    w.call(string_fns::memset, &[BUF_B, 0, 8]);
    assert_eq!(w.shadow.mem.range_taint(BUF_B, 8), Taint::CLEAR);
    // …while a tainted fill value (register shadow on `c`) taints it.
    w.shadow.regs[1] = Taint::IMEI;
    w.call(string_fns::memset, &[BUF_B, b'A' as u32, 8]);
    w.shadow.regs[1] = Taint::CLEAR;
    assert_eq!(w.mem.read_bytes(BUF_B, 8), b"AAAAAAAA");
    assert_eq!(w.shadow.mem.range_taint(BUF_B, 8), Taint::IMEI);
}

#[test]
fn strcpy_copies_per_byte_taint_and_clears_terminator() {
    let mut w = W::new();
    w.mem.write_cstr(BUF_A, b"AB12");
    // Only the digits are tainted; the NUL terminator is clean.
    w.shadow.mem.set_range(BUF_A + 2, 2, Taint::CONTACTS);
    // Stale destination taint beyond the string must be replaced.
    w.shadow.mem.set_range(BUF_B, 5, Taint::SMS);
    let r = w.call(string_fns::strcpy, &[BUF_B, BUF_A]);
    assert_eq!(r, BUF_B, "strcpy returns dest");
    assert_eq!(w.mem.read_cstr(BUF_B), b"AB12");
    assert_eq!(w.shadow.mem.range_taint(BUF_B, 2), Taint::CLEAR, "'AB'");
    assert_eq!(w.shadow.mem.get(BUF_B + 2), Taint::CONTACTS, "'1'");
    assert_eq!(w.shadow.mem.get(BUF_B + 3), Taint::CONTACTS, "'2'");
    assert_eq!(w.shadow.mem.get(BUF_B + 4), Taint::CLEAR, "terminator");
}

#[test]
fn strncpy_pads_and_clears_tail_taint() {
    let mut w = W::new();
    w.mem.write_cstr(BUF_A, b"ab");
    w.shadow.mem.set_range(BUF_A, 2, Taint::IMEI);
    w.shadow.mem.set_range(BUF_B, 8, Taint::SMS);
    w.call(string_fns::strncpy, &[BUF_B, BUF_A, 8]);
    assert_eq!(w.mem.read_bytes(BUF_B, 8), b"ab\0\0\0\0\0\0");
    assert_eq!(w.shadow.mem.range_taint(BUF_B, 2), Taint::IMEI);
    assert_eq!(w.shadow.mem.range_taint(BUF_B + 2, 6), Taint::CLEAR, "pad");
}

#[test]
fn sprintf_taints_only_the_tainted_expansions() {
    let mut w = W::new();
    // sprintf(dst, "id=%s&n=%d", imei_str, count) — the IMEI string is
    // memory-tainted, the integer carries register taint.
    w.mem.write_cstr(BUF_A, b"id=%s&n=%d");
    w.mem.write_cstr(BUF_B, b"35693");
    w.shadow.mem.set_range(BUF_B, 5, Taint::IMEI);
    w.shadow.regs[3] = Taint::SMS;
    w.call(ndroid_libc::stdio::sprintf, &[BUF_C, BUF_A, BUF_B, 42]);
    w.shadow.regs[3] = Taint::CLEAR;
    assert_eq!(w.mem.read_cstr(BUF_C), b"id=35693&n=42");
    // "id=" literal: clean.
    assert_eq!(w.shadow.mem.range_taint(BUF_C, 3), Taint::CLEAR);
    // "35693" expansion: IMEI, byte for byte.
    for i in 3..8u32 {
        assert_eq!(w.shadow.mem.get(BUF_C + i), Taint::IMEI, "byte {i}");
    }
    // "&n=" literal: clean.
    assert_eq!(w.shadow.mem.range_taint(BUF_C + 8, 3), Taint::CLEAR);
    // "42" from the register-tainted %d.
    assert_eq!(w.shadow.mem.range_taint(BUF_C + 11, 2), Taint::SMS);
    // Terminator clean.
    assert_eq!(w.shadow.mem.get(BUF_C + 13), Taint::CLEAR);
}

// --------------------------------------------------- Table VII (starred)

#[test]
fn write_of_tainted_bytes_to_file_is_a_leak() {
    let mut w = W::new();
    w.mem.write_cstr(BUF_A, b"/data/out.bin");
    let fd = w.call(syscalls::open, &[BUF_A, 0o102]); // O_RDWR|O_CREAT
    w.mem.write_bytes(BUF_B, b"imei:35693");
    w.shadow.mem.set_range(BUF_B + 5, 5, Taint::IMEI);
    let n = w.call(syscalls::write, &[fd, BUF_B, 10]);
    assert_eq!(n, 10);
    let leaks: Vec<_> = w.kernel.leaks().collect();
    assert_eq!(leaks.len(), 1, "write* is a starred sink");
    assert_eq!(leaks[0].sink, "write");
    assert_eq!(leaks[0].dest, "/data/out.bin");
    assert_eq!(leaks[0].data, "imei:35693");
    assert_eq!(leaks[0].taint, Taint::IMEI);
    assert_eq!(w.kernel.fs["/data/out.bin"], b"imei:35693");
}

#[test]
fn write_of_clean_bytes_is_an_event_but_not_a_leak() {
    let mut w = W::new();
    w.mem.write_cstr(BUF_A, b"/data/log.txt");
    let fd = w.call(syscalls::open, &[BUF_A, 0o102]);
    w.mem.write_bytes(BUF_B, b"boring");
    w.call(syscalls::write, &[fd, BUF_B, 6]);
    assert_eq!(w.kernel.events.len(), 1, "the sink call is observed");
    assert_eq!(w.kernel.leaks().count(), 0, "clean data is no leak");
}

#[test]
fn send_of_tainted_bytes_reports_connected_peer() {
    let mut w = W::new();
    let fd = w.call(syscalls::socket, &[]);
    w.mem.write_cstr(BUF_A, b"evil.example.com");
    w.call(syscalls::connect, &[fd, BUF_A]);
    w.mem.write_bytes(BUF_B, b"gps=22.33,114.18");
    w.shadow.mem.set_range(BUF_B + 4, 12, Taint::LOCATION_GPS);
    let n = w.call(syscalls::send, &[fd, BUF_B, 16, 0]);
    assert_eq!(n, 16);
    let leaks: Vec<_> = w.kernel.leaks().collect();
    assert_eq!(leaks.len(), 1, "send* is a starred sink");
    assert_eq!(leaks[0].sink, "send");
    assert_eq!(leaks[0].dest, "evil.example.com");
    assert_eq!(leaks[0].taint, Taint::LOCATION_GPS);
    assert_eq!(w.kernel.network_log.len(), 1);
    assert_eq!(w.kernel.network_log[0].0, "evil.example.com");
    assert_eq!(w.kernel.network_log[0].2, Taint::LOCATION_GPS);
}

#[test]
fn write_on_a_socket_reports_as_send_sink() {
    let mut w = W::new();
    let fd = w.call(syscalls::socket, &[]);
    w.mem.write_cstr(BUF_A, b"sync.3g.qq.com");
    w.call(syscalls::connect, &[fd, BUF_A]);
    w.mem.write_bytes(BUF_B, b"sid=ab");
    w.shadow.mem.set_range(BUF_B + 4, 2, Taint::CONTACTS);
    w.call(syscalls::write, &[fd, BUF_B, 6]);
    let leaks: Vec<_> = w.kernel.leaks().collect();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].sink, "send", "write on a socket is the send sink");
    assert_eq!(leaks[0].dest, "sync.3g.qq.com");
}

#[test]
fn sendto_carries_destination_in_the_call() {
    let mut w = W::new();
    let fd = w.call(syscalls::socket, &[]);
    w.mem.write_cstr(BUF_A, b"softphone.comwave.net");
    w.mem.write_bytes(BUF_B, b"REGISTER sip:4804001849");
    w.shadow.mem.set_range(BUF_B + 13, 10, Taint::PHONE_NUMBER);
    // sendto's sockaddr rides in arg 4 (stack); push it manually.
    let sp = layout::NATIVE_STACK_TOP - 8;
    w.cpu.regs[13] = sp;
    w.mem.write_u32(sp, BUF_A);
    w.mem.write_u32(sp + 4, 0);
    let n = w.call(syscalls::sendto, &[fd, BUF_B, 23, 0]);
    assert_eq!(n, 23);
    let leaks: Vec<_> = w.kernel.leaks().collect();
    assert_eq!(leaks.len(), 1, "sendto* is a starred sink");
    assert_eq!(leaks[0].sink, "sendto");
    assert_eq!(leaks[0].dest, "softphone.comwave.net");
    assert_eq!(leaks[0].taint, Taint::PHONE_NUMBER);
}

#[test]
fn read_is_a_clean_source_that_scrubs_stale_taint() {
    let mut w = W::new();
    w.mem.write_cstr(BUF_A, b"/data/in.bin");
    let fd = w.call(syscalls::open, &[BUF_A, 0o102]);
    w.mem.write_bytes(BUF_B, b"payload!");
    w.call(syscalls::write, &[fd, BUF_B, 8]);
    w.call(syscalls::close, &[fd]);
    // Re-open and read into a buffer carrying stale taint.
    let fd = w.call(syscalls::open, &[BUF_A, 0]);
    w.shadow.mem.set_range(BUF_C, 8, Taint::SMS);
    let n = w.call(syscalls::read, &[fd, BUF_C, 8]);
    assert_eq!(n, 8);
    assert_eq!(w.mem.read_bytes(BUF_C, 8), b"payload!");
    assert_eq!(
        w.shadow.mem.range_taint(BUF_C, 8),
        Taint::CLEAR,
        "read(2) output reflects the file, not the old buffer taint"
    );
}
