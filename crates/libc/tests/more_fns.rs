//! Additional coverage of the modeled libc functions: padding,
//! truncation, endptr semantics, allocator growth, and the va_list
//! printf variants — all via genuine guest code.

use ndroid_arm::block::BlockCache;
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::reg::RegList;
use ndroid_arm::{Assembler, Cpu, Memory, Reg};
use ndroid_dvm::{Dvm, Program, Taint};
use ndroid_emu::layout;
use ndroid_emu::runtime::{call_guest, Analysis, HostTable, NativeCtx};
use ndroid_emu::{Kernel, ShadowState, TraceLog};
use ndroid_libc::{install_all, libc_addr};

struct TrackOnly;
impl Analysis for TrackOnly {
    fn tracks_native(&self) -> bool {
        true
    }
}

struct World {
    cpu: Cpu,
    mem: Memory,
    dvm: Dvm,
    shadow: ShadowState,
    kernel: Kernel,
    trace: TraceLog,
    budget: u64,
    icache: DecodeCache,
    blocks: BlockCache,
    table: HostTable,
}

impl World {
    fn new() -> World {
        let mut cpu = Cpu::new();
        cpu.regs[13] = layout::NATIVE_STACK_TOP;
        let mut table = HostTable::new();
        install_all(&mut table);
        World {
            cpu,
            mem: Memory::new(),
            dvm: Dvm::new(Program::new()),
            shadow: ShadowState::new(),
            kernel: Kernel::new(),
            trace: TraceLog::new(),
            budget: 1_000_000,
            icache: DecodeCache::new(),
            blocks: BlockCache::new(),
            table,
        }
    }

    fn run(&mut self, build: impl FnOnce(&mut Assembler)) -> u32 {
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.push(RegList::of(&[Reg::R4, Reg::LR]));
        build(&mut asm);
        asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
        let code = asm.assemble().unwrap();
        self.mem.write_bytes(code.base, &code.bytes);
        let mut analysis = TrackOnly;
        let mut ctx = NativeCtx {
            cpu: &mut self.cpu,
            mem: &mut self.mem,
            dvm: &mut self.dvm,
            shadow: &mut self.shadow,
            kernel: &mut self.kernel,
            trace: &mut self.trace,
            analysis: &mut analysis,
            budget: &mut self.budget,
            icache: &mut self.icache,
            blocks: &mut self.blocks,
        };
        call_guest(&mut ctx, &self.table, code.base, &[], |_, _| {})
            .unwrap()
            .0
    }
}

const A: u32 = 0x2000_0000;
const B: u32 = 0x2000_1000;
const C: u32 = 0x2000_2000;

#[test]
fn strncpy_pads_with_nul_and_clears_taint() {
    let mut w = World::new();
    w.mem.write_cstr(A, b"hi");
    w.shadow.mem.set_range(A, 2, Taint::IMEI);
    w.shadow.mem.set_range(B, 8, Taint::SMS); // stale taint to be cleared
    w.run(|asm| {
        asm.ldr_const(Reg::R0, B);
        asm.ldr_const(Reg::R1, A);
        asm.mov_imm(Reg::R2, 8).unwrap();
        asm.call_abs(libc_addr("strncpy"));
    });
    assert_eq!(w.mem.read_bytes(B, 8), b"hi\0\0\0\0\0\0");
    assert_eq!(w.shadow.mem.range_taint(B, 2), Taint::IMEI);
    assert_eq!(w.shadow.mem.range_taint(B + 2, 6), Taint::CLEAR, "padding clean");
}

#[test]
fn strtoul_sets_endptr_and_carries_taint() {
    let mut w = World::new();
    w.mem.write_cstr(A, b"  1234xyz");
    w.shadow.mem.set_range(A, 9, Taint::PHONE_NUMBER);
    let v = w.run(|asm| {
        asm.ldr_const(Reg::R0, A);
        asm.ldr_const(Reg::R1, B); // endptr out
        asm.mov_imm(Reg::R2, 10).unwrap();
        asm.call_abs(libc_addr("strtoul"));
        asm.ldr_const(Reg::R1, C);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    let _ = v;
    assert_eq!(w.mem.read_u32(C), 1234);
    assert_eq!(w.mem.read_u32(B), A + 6, "endptr past the digits");
}

#[test]
fn realloc_grows_and_preserves_taint() {
    let mut w = World::new();
    let p = w.run(|asm| {
        asm.mov_imm(Reg::R0, 8).unwrap();
        asm.call_abs(libc_addr("malloc"));
        asm.ldr_const(Reg::R1, C);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    let _ = p;
    let p = w.mem.read_u32(C);
    w.mem.write_bytes(p, b"secret!!");
    w.shadow.mem.set_range(p, 8, Taint::CONTACTS);
    w.run(|asm| {
        asm.ldr_const(Reg::R1, C);
        asm.ldr(Reg::R0, Reg::R1, 0);
        asm.mov_imm(Reg::R1, 64).unwrap();
        asm.call_abs(libc_addr("realloc"));
        asm.ldr_const(Reg::R1, C);
        asm.str(Reg::R0, Reg::R1, 4);
    });
    let np = w.mem.read_u32(C + 4);
    assert_ne!(np, 0);
    assert_eq!(w.mem.read_bytes(np, 8), b"secret!!");
    assert_eq!(w.shadow.mem.range_taint(np, 8), Taint::CONTACTS);
    assert_eq!(
        w.shadow.mem.range_taint(p, 8),
        Taint::CLEAR,
        "old block's taint cleared on free"
    );
}

#[test]
fn snprintf_truncates_to_size() {
    let mut w = World::new();
    w.mem.write_cstr(A, b"value=%d end");
    let n = w.run(|asm| {
        asm.ldr_const(Reg::R0, B);
        asm.mov_imm(Reg::R1, 8).unwrap(); // size incl. NUL
        asm.ldr_const(Reg::R2, A);
        asm.ldr_const(Reg::R3, 1234);
        asm.call_abs(libc_addr("snprintf"));
    });
    let _ = n;
    assert_eq!(w.mem.read_cstr(B), b"value=1", "truncated to 7 chars + NUL");
}

#[test]
fn vsprintf_reads_va_list_from_memory() {
    let mut w = World::new();
    w.mem.write_cstr(A, b"%s-%d");
    w.mem.write_cstr(C, b"id");
    // va_list block: [ptr to "id", 77]
    w.mem.write_u32(B, C);
    w.mem.write_u32(B + 4, 77);
    w.shadow.mem.set_range(C, 2, Taint::ACCOUNT);
    w.run(|asm| {
        asm.ldr_const(Reg::R0, B + 0x100); // dst
        asm.ldr_const(Reg::R1, A); // fmt
        asm.ldr_const(Reg::R2, B); // va_list
        asm.call_abs(libc_addr("vsprintf"));
    });
    assert_eq!(w.mem.read_cstr(B + 0x100), b"id-77");
    assert_eq!(
        w.shadow.mem.range_taint(B + 0x100, 2),
        Taint::ACCOUNT,
        "%s bytes tainted"
    );
}

#[test]
fn strdup_allocates_and_copies_taint() {
    let mut w = World::new();
    w.mem.write_cstr(A, b"dup-me");
    w.shadow.mem.set_range(A, 6, Taint::IMSI);
    w.run(|asm| {
        asm.ldr_const(Reg::R0, A);
        asm.call_abs(libc_addr("strdup"));
        asm.ldr_const(Reg::R1, C);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    let p = w.mem.read_u32(C);
    assert!(layout::in_native_heap(p));
    assert_eq!(w.mem.read_cstr(p), b"dup-me");
    assert_eq!(w.shadow.mem.range_taint(p, 6), Taint::IMSI);
}

#[test]
fn atoi_handles_sign_and_garbage() {
    let mut w = World::new();
    w.mem.write_cstr(A, b"  -42abc");
    let v = w.run(|asm| {
        asm.ldr_const(Reg::R0, A);
        asm.call_abs(libc_addr("atoi"));
        asm.ldr_const(Reg::R1, C);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    let _ = v;
    assert_eq!(w.mem.read_u32(C) as i32, -42);
}

#[test]
fn strcasecmp_ignores_case() {
    let mut w = World::new();
    w.mem.write_cstr(A, b"HeLLo");
    w.mem.write_cstr(B, b"hello");
    w.run(|asm| {
        asm.ldr_const(Reg::R0, A);
        asm.ldr_const(Reg::R1, B);
        asm.call_abs(libc_addr("strcasecmp"));
        asm.ldr_const(Reg::R1, C);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    assert_eq!(w.mem.read_u32(C), 0);
}

#[test]
fn fgets_reads_line_by_line() {
    let mut w = World::new();
    w.kernel
        .fs
        .insert("/data/lines".into(), b"one\ntwo\n".to_vec());
    w.mem.write_cstr(A, b"/data/lines");
    w.mem.write_cstr(A + 0x40, b"r");
    w.run(|asm| {
        asm.ldr_const(Reg::R0, A);
        asm.ldr_const(Reg::R1, A + 0x40);
        asm.call_abs(libc_addr("fopen"));
        asm.mov(Reg::R4, Reg::R0);
        asm.ldr_const(Reg::R0, B);
        asm.mov_imm(Reg::R1, 64).unwrap();
        asm.mov(Reg::R2, Reg::R4);
        asm.call_abs(libc_addr("fgets"));
        asm.mov(Reg::R0, Reg::R4);
        asm.call_abs(libc_addr("fclose"));
    });
    assert_eq!(w.mem.read_cstr(B), b"one\n");
}

#[test]
fn memset_taints_with_value_register() {
    let mut w = World::new();
    w.shadow.regs[1] = Taint::CLEAR;
    w.run(|asm| {
        asm.ldr_const(Reg::R0, B);
        asm.mov_imm(Reg::R1, 0x5A).unwrap();
        asm.mov_imm(Reg::R2, 16).unwrap();
        asm.call_abs(libc_addr("memset"));
    });
    assert_eq!(w.mem.read_bytes(B, 4), [0x5A; 4]);
    assert_eq!(w.shadow.mem.range_taint(B, 16), Taint::CLEAR);
}

#[test]
fn memcmp_equal_and_different() {
    let mut w = World::new();
    w.mem.write_bytes(A, b"abcd");
    w.mem.write_bytes(B, b"abcd");
    w.run(|asm| {
        asm.ldr_const(Reg::R0, A);
        asm.ldr_const(Reg::R1, B);
        asm.mov_imm(Reg::R2, 4).unwrap();
        asm.call_abs(libc_addr("memcmp"));
        asm.ldr_const(Reg::R1, C);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    assert_eq!(w.mem.read_u32(C), 0);
}
