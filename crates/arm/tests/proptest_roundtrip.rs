//! Property-based tests: every instruction the assembler can emit must
//! decode back to itself, and executor arithmetic must match Rust's
//! wrapping semantics.

use ndroid_arm::cond::Cond;
use ndroid_arm::decode::decode_arm;
use ndroid_arm::encode::encode;
use ndroid_arm::insn::{AddrMode4, DpOp, Instr, MemOffset, MemSize, Op2, ShiftKind};
use ndroid_arm::reg::{Reg, RegList};
use ndroid_arm::{Cpu, Memory};
use ndroid_testkit::prelude::*;

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u32..15).prop_map(Cond::from_bits)
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u32..16).prop_map(Reg::from_bits)
}

fn arb_shift_kind() -> impl Strategy<Value = ShiftKind> {
    (0u32..4).prop_map(ShiftKind::from_bits)
}

fn arb_dp_op() -> impl Strategy<Value = DpOp> {
    (0u32..16).prop_map(DpOp::from_bits)
}

fn arb_op2() -> impl Strategy<Value = Op2> {
    prop_oneof![
        (any::<u8>(), 0u8..16).prop_map(|(imm8, rot4)| Op2::Imm { imm8, rot4 }),
        (arb_reg(), arb_shift_kind(), 0u8..32)
            .prop_map(|(rm, kind, amount)| Op2::RegShiftImm { rm, kind, amount }),
        (arb_reg(), arb_shift_kind(), arb_reg())
            .prop_map(|(rm, kind, rs)| Op2::RegShiftReg { rm, kind, rs }),
    ]
}

fn arb_dp() -> impl Strategy<Value = Instr> {
    (arb_cond(), arb_dp_op(), any::<bool>(), arb_reg(), arb_reg(), arb_op2()).prop_map(
        |(cond, op, s, rd, rn, op2)| Instr::Dp {
            cond,
            op,
            s: s || op.is_compare(),
            rd: if op.is_compare() { Reg::R0 } else { rd },
            rn: if op.uses_rn() { rn } else { Reg::R0 },
            op2,
        },
    )
}

fn arb_mem() -> impl Strategy<Value = Instr> {
    (
        arb_cond(),
        any::<bool>(),
        prop_oneof![
            Just(MemSize::Word),
            Just(MemSize::Byte),
            Just(MemSize::Half),
        ],
        arb_reg(),
        arb_reg(),
        prop_oneof![
            (0u16..0x100).prop_map(MemOffset::Imm),
            (arb_reg(), 0u8..1).prop_map(|(rm, _)| MemOffset::Reg {
                rm,
                kind: ShiftKind::Lsl,
                amount: 0
            }),
        ],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(cond, load, size, rd, rn, offset, pre, up, wb)| Instr::Mem {
                cond,
                load,
                size,
                rd,
                rn,
                offset,
                pre,
                up,
                writeback: wb && pre,
            },
        )
}

fn arb_mem_multi() -> impl Strategy<Value = Instr> {
    (
        arb_cond(),
        any::<bool>(),
        arb_reg(),
        prop_oneof![
            Just(AddrMode4::Ia),
            Just(AddrMode4::Ib),
            Just(AddrMode4::Da),
            Just(AddrMode4::Db),
        ],
        any::<bool>(),
        1u16..=0xFFFF,
    )
        .prop_map(|(cond, load, rn, mode, wb, regs)| Instr::MemMulti {
            cond,
            load,
            rn,
            mode,
            writeback: wb,
            regs: RegList(regs),
        })
}

proptest! {
    #[test]
    fn dp_roundtrips(instr in arb_dp()) {
        let word = encode(&instr).unwrap();
        let back = decode_arm(word, 0).unwrap();
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn mem_roundtrips(instr in arb_mem()) {
        let word = encode(&instr).unwrap();
        let back = decode_arm(word, 0).unwrap();
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn mem_multi_roundtrips(instr in arb_mem_multi()) {
        let word = encode(&instr).unwrap();
        let back = decode_arm(word, 0).unwrap();
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn branch_roundtrips(cond in arb_cond(), link in any::<bool>(), words in -(1i32 << 23)..(1i32 << 23)) {
        let instr = Instr::Branch { cond, link, offset: words * 4 };
        let word = encode(&instr).unwrap();
        prop_assert_eq!(decode_arm(word, 0).unwrap(), instr);
    }

    /// ADD executes as wrapping 32-bit addition for all register values.
    #[test]
    fn add_matches_wrapping(a in any::<u32>(), b in any::<u32>()) {
        let mut mem = Memory::new();
        let word = encode(&Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: false,
            rd: Reg::R2,
            rn: Reg::R0,
            op2: Op2::reg(Reg::R1),
        }).unwrap();
        mem.write_u32(0x1000, word);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x1000);
        cpu.regs[0] = a;
        cpu.regs[1] = b;
        ndroid_arm::step(&mut cpu, &mut mem).unwrap();
        prop_assert_eq!(cpu.regs[2], a.wrapping_add(b));
    }

    /// CMP then a conditional branch agree with Rust's signed comparison.
    #[test]
    fn cmp_flags_match_signed_compare(a in any::<i32>(), b in any::<i32>()) {
        let mut mem = Memory::new();
        let word = encode(&Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Cmp,
            s: true,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Op2::reg(Reg::R1),
        }).unwrap();
        mem.write_u32(0x1000, word);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x1000);
        cpu.regs[0] = a as u32;
        cpu.regs[1] = b as u32;
        ndroid_arm::step(&mut cpu, &mut mem).unwrap();
        prop_assert_eq!(cpu.cond_passes(Cond::Lt), a < b);
        prop_assert_eq!(cpu.cond_passes(Cond::Ge), a >= b);
        prop_assert_eq!(cpu.cond_passes(Cond::Eq), a == b);
        prop_assert_eq!(cpu.cond_passes(Cond::Gt), a > b);
        prop_assert_eq!(cpu.cond_passes(Cond::Le), a <= b);
        // Unsigned comparisons too.
        prop_assert_eq!(cpu.cond_passes(Cond::Cs), (a as u32) >= (b as u32));
        prop_assert_eq!(cpu.cond_passes(Cond::Cc), (a as u32) < (b as u32));
        prop_assert_eq!(cpu.cond_passes(Cond::Hi), (a as u32) > (b as u32));
        prop_assert_eq!(cpu.cond_passes(Cond::Ls), (a as u32) <= (b as u32));
    }

    /// Store-then-load through guest memory is the identity.
    #[test]
    fn store_load_identity(value in any::<u32>(), addr in 0x2000u32..0xFFFF_0000) {
        let mut mem = Memory::new();
        mem.write_u32(addr, value);
        prop_assert_eq!(mem.read_u32(addr), value);
    }

    /// Decoding never panics on arbitrary words.
    #[test]
    fn decode_total(word in any::<u32>()) {
        let _ = decode_arm(word, 0);
    }

    /// Thumb decoding never panics on arbitrary halfwords.
    #[test]
    fn thumb_decode_total(hw in any::<u16>(), hw2 in any::<u16>()) {
        let mut mem = Memory::new();
        mem.write_u16(0x100, hw);
        mem.write_u16(0x102, hw2);
        let _ = ndroid_arm::thumb::decode_thumb(&mem, 0x100);
    }
}
