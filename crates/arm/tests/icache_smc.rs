//! Self-modifying-code correctness of the decoded-instruction cache:
//! a write to a cached code page must cause the *new* bytes to be
//! decoded on the next fetch (page-wise invalidation via memory write
//! generations), both for in-guest stores and for host-side writes
//! between runs.

use ndroid_arm::asm::encoding_of;
use ndroid_arm::exec::step_cached;
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::{Assembler, Cond, Cpu, Memory, Reg};

const SENTINEL: u32 = 0xFFFF_FF00;

fn run(cpu: &mut Cpu, mem: &mut Memory, cache: &mut DecodeCache, entry: u32) {
    cpu.regs[14] = SENTINEL;
    cpu.set_pc(entry);
    let mut budget = 10_000u32;
    while cpu.pc() != SENTINEL {
        step_cached(cpu, mem, cache).expect("step");
        budget -= 1;
        assert!(budget > 0, "runaway guest");
    }
}

#[test]
fn guest_store_into_own_code_page_is_reexecuted_fresh() {
    // A two-pass loop whose body instruction patches itself: pass 1
    // executes `add r5, r5, #1`, then stores the encoding of
    // `add r5, r5, #10` over it; pass 2 must execute the new bytes.
    let patch = encoding_of(|a| a.add_imm(Reg::R5, Reg::R5, 10).unwrap());
    let base = 0x0001_0000;
    let mut asm = Assembler::new(base);
    asm.mov_imm(Reg::R4, 2).unwrap(); // pass counter
    asm.mov_imm(Reg::R5, 0).unwrap(); // accumulator
    asm.ldr_const(Reg::R2, patch);
    let top = asm.here_label();
    let patchme = asm.here();
    asm.add_imm(Reg::R5, Reg::R5, 1).unwrap();
    asm.ldr_const(Reg::R3, patchme);
    asm.str(Reg::R2, Reg::R3, 0);
    asm.subs_imm(Reg::R4, Reg::R4, 1).unwrap();
    asm.b_cond(Cond::Ne, top);
    asm.mov(Reg::R0, Reg::R5);
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();

    let mut mem = Memory::new();
    mem.write_bytes(base, &code.bytes);
    let mut cpu = Cpu::new();
    cpu.regs[13] = 0x0800_0000;
    let mut cache = DecodeCache::new();
    run(&mut cpu, &mut mem, &mut cache, base);

    assert_eq!(cpu.regs[0], 11, "1 (original) + 10 (patched), not 2");
    // Every pass stores into the loop's own page, so each pass
    // invalidates it — the cache must notice every time.
    assert!(
        cache.invalidations > 0,
        "the self-store invalidated the code page"
    );
}

#[test]
fn hot_loop_is_served_from_the_cache() {
    let base = 0x0004_0000;
    let mut asm = Assembler::new(base);
    asm.mov_imm(Reg::R4, 50).unwrap();
    let top = asm.here_label();
    asm.add_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.subs_imm(Reg::R4, Reg::R4, 1).unwrap();
    asm.b_cond(Cond::Ne, top);
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();
    let mut mem = Memory::new();
    mem.write_bytes(base, &code.bytes);
    let mut cpu = Cpu::new();
    let mut cache = DecodeCache::new();
    run(&mut cpu, &mut mem, &mut cache, base);
    assert_eq!(cpu.regs[0], 50);
    assert!(cache.hits >= 49 * 3, "loop body decoded once, replayed 49 times");
    assert_eq!(cache.invalidations, 0, "no writes, no invalidations");
}

#[test]
fn host_write_between_runs_invalidates() {
    let base = 0x0002_0000;
    let mut asm = Assembler::new(base);
    asm.mov_imm(Reg::R0, 1).unwrap();
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();

    let mut mem = Memory::new();
    mem.write_bytes(base, &code.bytes);
    let mut cpu = Cpu::new();
    let mut cache = DecodeCache::new();
    run(&mut cpu, &mut mem, &mut cache, base);
    assert_eq!(cpu.regs[0], 1);

    // Rewrite the first instruction from the host side (the moral
    // equivalent of a JNI/libc host function writing guest memory).
    let patched = encoding_of(|a| {
        a.mov_imm(Reg::R0, 2).unwrap();
    });
    mem.write_u32(base, patched);
    run(&mut cpu, &mut mem, &mut cache, base);
    assert_eq!(cpu.regs[0], 2, "new bytes decoded after the host write");
    assert!(cache.invalidations > 0);
}

#[test]
fn disabled_cache_still_executes_correctly() {
    let base = 0x0003_0000;
    let mut asm = Assembler::new(base);
    asm.mov_imm(Reg::R0, 7).unwrap();
    asm.add_imm(Reg::R0, Reg::R0, 35).unwrap();
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();
    let mut mem = Memory::new();
    mem.write_bytes(base, &code.bytes);
    let mut cpu = Cpu::new();
    let mut cache = DecodeCache::new();
    cache.enabled = false;
    run(&mut cpu, &mut mem, &mut cache, base);
    assert_eq!(cpu.regs[0], 42);
    assert_eq!((cache.hits, cache.misses), (0, 0), "cache fully bypassed");
}
