//! Additional executor coverage: addressing modes, sign extension,
//! register-specified shifts, condition codes, and Thumb formats not
//! exercised by the unit tests.

use ndroid_arm::cond::Cond;
use ndroid_arm::encode::encode;
use ndroid_arm::insn::{AddrMode4, DpOp, Instr, MemOffset, MemSize, Op2, ShiftKind};
use ndroid_arm::reg::{Reg, RegList};
use ndroid_arm::thumb::enc;
use ndroid_arm::{step, Cpu, Memory};

fn exec_one(instr: Instr, setup: impl FnOnce(&mut Cpu, &mut Memory)) -> (Cpu, Memory) {
    let mut cpu = Cpu::new();
    let mut mem = Memory::new();
    cpu.set_pc(0x1000);
    setup(&mut cpu, &mut mem);
    mem.write_u32(0x1000, encode(&instr).unwrap());
    step(&mut cpu, &mut mem).unwrap();
    (cpu, mem)
}

#[test]
fn post_indexed_load_writes_back() {
    // LDR r0, [r1], #4
    let (cpu, _) = exec_one(
        Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(4),
            pre: false,
            up: true,
            writeback: false,
        },
        |cpu, mem| {
            cpu.regs[1] = 0x5000;
            mem.write_u32(0x5000, 0xAA55);
        },
    );
    assert_eq!(cpu.regs[0], 0xAA55, "loads from the ORIGINAL address");
    assert_eq!(cpu.regs[1], 0x5004, "base advanced after");
}

#[test]
fn pre_indexed_store_with_writeback() {
    // STR r0, [r1, #-8]!
    let (cpu, mem) = exec_one(
        Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(8),
            pre: true,
            up: false,
            writeback: true,
        },
        |cpu, _| {
            cpu.regs[0] = 0x1234;
            cpu.regs[1] = 0x5010;
        },
    );
    assert_eq!(mem.read_u32(0x5008), 0x1234);
    assert_eq!(cpu.regs[1], 0x5008);
}

#[test]
fn signed_loads_extend() {
    let (cpu, _) = exec_one(
        Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::SignedByte,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        },
        |cpu, mem| {
            cpu.regs[1] = 0x5000;
            mem.write_u8(0x5000, 0x80);
        },
    );
    assert_eq!(cpu.regs[0] as i32, -128);

    let (cpu, _) = exec_one(
        Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::SignedHalf,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        },
        |cpu, mem| {
            cpu.regs[1] = 0x5000;
            mem.write_u16(0x5000, 0x8001);
        },
    );
    assert_eq!(cpu.regs[0] as i32, -32767);
}

#[test]
fn register_offset_with_shift() {
    // LDR r0, [r1, r2, LSL #2]
    let (cpu, _) = exec_one(
        Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Reg {
                rm: Reg::R2,
                kind: ShiftKind::Lsl,
                amount: 2,
            },
            pre: true,
            up: true,
            writeback: false,
        },
        |cpu, mem| {
            cpu.regs[1] = 0x5000;
            cpu.regs[2] = 3;
            mem.write_u32(0x500C, 0xFEED);
        },
    );
    assert_eq!(cpu.regs[0], 0xFEED);
}

#[test]
fn shift_by_register_amount() {
    // MOV r0, r1, LSL r2
    let (cpu, _) = exec_one(
        Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: false,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Op2::RegShiftReg {
                rm: Reg::R1,
                kind: ShiftKind::Lsl,
                rs: Reg::R2,
            },
        },
        |cpu, _| {
            cpu.regs[1] = 1;
            cpu.regs[2] = 12;
        },
    );
    assert_eq!(cpu.regs[0], 1 << 12);
}

#[test]
fn asr_preserves_sign() {
    let (cpu, _) = exec_one(
        Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: false,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Op2::RegShiftImm {
                rm: Reg::R1,
                kind: ShiftKind::Asr,
                amount: 4,
            },
        },
        |cpu, _| {
            cpu.regs[1] = (-256i32) as u32;
        },
    );
    assert_eq!(cpu.regs[0] as i32, -16);
}

#[test]
fn every_condition_code_honored() {
    // For each cond, run `MOV<cond> r0, #1` under flags where it
    // passes and where it fails.
    let conds = [
        (Cond::Eq, (false, true, false, false), (false, false, false, false)),
        (Cond::Ne, (false, false, false, false), (false, true, false, false)),
        (Cond::Cs, (false, false, true, false), (false, false, false, false)),
        (Cond::Cc, (false, false, false, false), (false, false, true, false)),
        (Cond::Mi, (true, false, false, false), (false, false, false, false)),
        (Cond::Pl, (false, false, false, false), (true, false, false, false)),
        (Cond::Vs, (false, false, false, true), (false, false, false, false)),
        (Cond::Vc, (false, false, false, false), (false, false, false, true)),
        (Cond::Hi, (false, false, true, false), (false, true, true, false)),
        (Cond::Ls, (false, true, false, false), (false, false, true, false)),
        (Cond::Ge, (true, false, false, true), (true, false, false, false)),
        (Cond::Lt, (true, false, false, false), (true, false, false, true)),
        (Cond::Gt, (false, false, false, false), (false, true, false, false)),
        (Cond::Le, (false, true, false, false), (false, false, false, false)),
    ];
    for (cond, pass, fail) in conds {
        for (flags, expect) in [(pass, 1u32), (fail, 0u32)] {
            let instr = Instr::Dp {
                cond,
                op: DpOp::Mov,
                s: false,
                rd: Reg::R0,
                rn: Reg::R0,
                op2: Op2::encode_imm(1).unwrap(),
            };
            let (cpu, _) = exec_one(instr, |cpu, _| {
                (cpu.n, cpu.z, cpu.c, cpu.v) = flags;
            });
            assert_eq!(cpu.regs[0], expect, "{cond:?} flags {flags:?}");
        }
    }
}

#[test]
fn ldm_modes_address_correctly() {
    for (mode, base, expected_lowest) in [
        (AddrMode4::Ia, 0x5000u32, 0x5000u32),
        (AddrMode4::Ib, 0x5000, 0x5004),
        (AddrMode4::Da, 0x5000, 0x4FFC),
        (AddrMode4::Db, 0x5000, 0x4FF8),
    ] {
        let (cpu, _) = exec_one(
            Instr::MemMulti {
                cond: Cond::Al,
                load: true,
                rn: Reg::R1,
                mode,
                writeback: false,
                regs: RegList::of(&[Reg::R2, Reg::R3]),
            },
            |cpu, mem| {
                cpu.regs[1] = base;
                mem.write_u32(expected_lowest, 0x11);
                mem.write_u32(expected_lowest + 4, 0x22);
            },
        );
        assert_eq!(cpu.regs[2], 0x11, "{mode:?}");
        assert_eq!(cpu.regs[3], 0x22, "{mode:?}");
    }
}

#[test]
fn mla_accumulates() {
    let (cpu, _) = exec_one(
        Instr::Mul {
            cond: Cond::Al,
            s: false,
            rd: Reg::R0,
            rm: Reg::R1,
            rs: Reg::R2,
            acc: Some(Reg::R3),
        },
        |cpu, _| {
            cpu.regs[1] = 6;
            cpu.regs[2] = 7;
            cpu.regs[3] = 100;
        },
    );
    assert_eq!(cpu.regs[0], 142);
}

// --- Thumb formats ------------------------------------------------------

fn thumb_run(halfwords: &[u16], setup: impl FnOnce(&mut Cpu, &mut Memory)) -> (Cpu, Memory) {
    let mut cpu = Cpu::new();
    let mut mem = Memory::new();
    for (i, hw) in halfwords.iter().enumerate() {
        mem.write_u16(0x100 + 2 * i as u32, *hw);
    }
    cpu.set_pc(0x101);
    cpu.regs[13] = 0x8000;
    cpu.regs[14] = 0xFFFF_FF00;
    setup(&mut cpu, &mut mem);
    let mut steps = 0;
    while cpu.pc() != 0xFFFF_FF00 {
        step(&mut cpu, &mut mem).unwrap();
        steps += 1;
        assert!(steps < 10_000, "runaway thumb program");
    }
    (cpu, mem)
}

#[test]
fn thumb_sp_relative_load_store() {
    // str r0, [sp, #4] ; ldr r1, [sp, #4] ; bx lr
    let (cpu, mem) = thumb_run(
        &[
            0x9001, // STR r0, [sp, #4] => 1001 0 000 00000001
            0x9901,     // LDR r1, [sp, #4]
            enc::bx(Reg::LR),
        ],
        |cpu, _| {
            cpu.regs[0] = 0xCAFE;
        },
    );
    assert_eq!(mem.read_u32(0x8004), 0xCAFE);
    assert_eq!(cpu.regs[1], 0xCAFE);
}

#[test]
fn thumb_add_sub_sp() {
    // sub sp, #16 ; add sp, #8 ; bx lr
    let (cpu, _) = thumb_run(&[0xB084, 0xB002, enc::bx(Reg::LR)], |_, _| {});
    assert_eq!(cpu.regs[13], 0x8000 - 16 + 8);
}

#[test]
fn thumb_hi_register_add() {
    // add r8, r0 ... use mov_hi + add hi form: ADD r1, r8
    // 0x4441 = 0100 0100 0 1 000 001: ADD r1, r8
    let (cpu, _) = thumb_run(&[0x4441, enc::bx(Reg::LR)], |cpu, _| {
        cpu.regs[1] = 30;
        cpu.regs[8] = 12;
    });
    assert_eq!(cpu.regs[1], 42);
}

#[test]
fn thumb_ldmia_stmia() {
    // stmia r0!, {r1, r2} ; ldmia r3!, {r4, r5} ; bx lr
    let (cpu, mem) = thumb_run(
        &[
            0xC006, // STMIA r0!, {r1, r2}
            0xCB30, // LDMIA r3!, {r4, r5}
            enc::bx(Reg::LR),
        ],
        |cpu, _| {
            cpu.regs[0] = 0x6000;
            cpu.regs[1] = 7;
            cpu.regs[2] = 9;
            cpu.regs[3] = 0x6000;
        },
    );
    assert_eq!(mem.read_u32(0x6000), 7);
    assert_eq!(mem.read_u32(0x6004), 9);
    assert_eq!(cpu.regs[0], 0x6008, "stmia writeback");
    assert_eq!(cpu.regs[4], 7);
    assert_eq!(cpu.regs[5], 9);
    assert_eq!(cpu.regs[3], 0x6008, "ldmia writeback");
}

#[test]
fn thumb_load_store_halfword() {
    // strh r0, [r1, #2] ; ldrh r2, [r1, #2] ; bx lr
    // fmt 10: 1000 0 00001 001 000 = 0x8048? compute: STRH imm5=1 rn=1 rd=0:
    // 1000_0_00001_001_000 = 0x8048
    let (cpu, mem) = thumb_run(&[0x8048, 0x884A, enc::bx(Reg::LR)], |cpu, _| {
        cpu.regs[0] = 0xBEEF;
        cpu.regs[1] = 0x6000;
    });
    assert_eq!(mem.read_u16(0x6002), 0xBEEF);
    assert_eq!(cpu.regs[2], 0xBEEF);
}

#[test]
fn thumb_conditional_skip() {
    // cmp r0, #5 ; beq +2 (skip movs r1) ; movs r1, #9 ; bx lr
    let (cpu, _) = thumb_run(
        &[
            enc::cmp_imm(Reg::R0, 5),
            enc::b_cond(Cond::Eq, 0), // target = pc+4 = the bx, skipping the movs
            enc::mov_imm(Reg::R1, 9),
            enc::bx(Reg::LR),
        ],
        |cpu, _| {
            cpu.regs[0] = 5;
        },
    );
    assert_eq!(cpu.regs[1], 0, "movs was skipped");
}

#[test]
fn vcmp_vmrs_sets_flags_for_branching() {
    use ndroid_arm::insn::{VfpOp, VfpPrec};
    // d0 = 2.0, d1 = 3.0; VCMP d0, d1; VMRS; MOVLT r0, #1
    let mut cpu = Cpu::new();
    let mut mem = Memory::new();
    cpu.set_pc(0x1000);
    cpu.write_d(0, 2.0);
    cpu.write_d(1, 3.0);
    let vcmp = Instr::Vfp {
        cond: Cond::Al,
        op: VfpOp::Cmp,
        prec: VfpPrec::F64,
        fd: 0,
        fn_: 0,
        fm: 1,
    };
    let vmrs = Instr::VfpMrs { cond: Cond::Al };
    let movlt = Instr::Dp {
        cond: Cond::Lt,
        op: DpOp::Mov,
        s: false,
        rd: Reg::R0,
        rn: Reg::R0,
        op2: Op2::encode_imm(1).unwrap(),
    };
    mem.write_u32(0x1000, encode(&vcmp).unwrap());
    mem.write_u32(0x1004, encode(&vmrs).unwrap());
    mem.write_u32(0x1008, encode(&movlt).unwrap());
    step(&mut cpu, &mut mem).unwrap();
    step(&mut cpu, &mut mem).unwrap();
    step(&mut cpu, &mut mem).unwrap();
    assert_eq!(cpu.regs[0], 1, "2.0 < 3.0 taken");
}

#[test]
fn vmov_register_copy() {
    use ndroid_arm::insn::{VfpOp, VfpPrec};
    let mut cpu = Cpu::new();
    let mut mem = Memory::new();
    cpu.set_pc(0x1000);
    cpu.write_s(3, 9.5);
    let vmov = Instr::Vfp {
        cond: Cond::Al,
        op: VfpOp::Mov,
        prec: VfpPrec::F32,
        fd: 7,
        fn_: 0,
        fm: 3,
    };
    mem.write_u32(0x1000, encode(&vmov).unwrap());
    step(&mut cpu, &mut mem).unwrap();
    assert_eq!(cpu.read_s(7), 9.5);
}
