//! Cache coherency at page seams and across forks.
//!
//! A guest store that **straddles a page boundary** patches code on
//! two pages with one write; both the decoded-instruction cache and
//! the superblock cache must invalidate *both* pages (a single-page
//! invalidation would keep serving the stale half). And a cache
//! carried warm across a [`Memory::fork`] must apply exactly the same
//! rules against the fork's pages.

use ndroid_arm::asm::encoding_of;
use ndroid_arm::block::{build_block, BlockCache};
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::mem::PAGE_SIZE;
use ndroid_arm::{Memory, Reg};

/// Last ARM instruction slot of page 1 and first of page 2.
const LO_PC: u32 = PAGE_SIZE as u32 * 2 - 4;
const HI_PC: u32 = PAGE_SIZE as u32 * 2;

/// Lays one `mov rN, #imm` on each side of the page-1/page-2 seam
/// plus a terminator, so both pages hold decodable code.
fn seam_code(mem: &mut Memory, lo_imm: u32, hi_imm: u32) {
    mem.write_u32(LO_PC, encoding_of(|a| a.mov_imm(Reg::R0, lo_imm).unwrap()));
    mem.write_u32(HI_PC, encoding_of(|a| a.mov_imm(Reg::R1, hi_imm).unwrap()));
    mem.write_u32(HI_PC + 4, encoding_of(|a| a.bx(Reg::LR)));
}

/// Fills both caches at the seam and returns them primed (one decoded
/// instruction and one block per page, all lookups hitting).
fn primed_caches(mem: &Memory) -> (DecodeCache, BlockCache) {
    let mut icache = DecodeCache::new();
    let mut blocks = BlockCache::new();
    for pc in [LO_PC, HI_PC] {
        assert!(icache.lookup(mem, pc, false).is_none());
        let (instr, size) =
            ndroid_arm::exec::decode_at(mem, pc, false).expect("decodable");
        icache.insert(mem, pc, false, instr, size);
        assert!(icache.lookup(mem, pc, false).is_some());

        assert!(blocks.lookup(mem, pc, false).is_none());
        let block = build_block(mem, pc, false, |_| false).expect("block");
        blocks.insert(mem, block);
        assert!(blocks.lookup(mem, pc, false).is_some());
    }
    (icache, blocks)
}

#[test]
fn straddling_code_patch_invalidates_both_pages_in_both_caches() {
    let mut mem = Memory::new();
    seam_code(&mut mem, 1, 2);
    let (mut icache, mut blocks) = primed_caches(&mem);

    // One unaligned u32 store across the seam: its low half lands on
    // page 1 (tail of the LO_PC encoding), its high half on page 2
    // (head of the HI_PC encoding).
    mem.write_u32(HI_PC - 2, 0xE1A0_E1A0);

    assert!(icache.lookup(&mem, LO_PC, false).is_none(), "low page stale");
    assert!(icache.lookup(&mem, HI_PC, false).is_none(), "high page stale");
    assert_eq!(
        icache.invalidations, 2,
        "decode cache must invalidate both straddled pages"
    );
    assert!(blocks.lookup(&mem, LO_PC, false).is_none());
    assert!(blocks.lookup(&mem, HI_PC, false).is_none());
    assert_eq!(
        blocks.invalidations, 2,
        "block cache must invalidate both straddled pages"
    );
}

#[test]
fn carried_caches_catch_straddling_patch_after_fork() {
    let mut mem = Memory::new();
    seam_code(&mut mem, 1, 2);
    let (icache, blocks) = primed_caches(&mem);

    // Fork memory and carry both caches warm, the snapshot way.
    let mut fmem = mem.fork();
    let mut ficache = icache.clone();
    ficache.rebind_epoch(fmem.epoch());
    let mut fblocks = blocks.clone();
    fblocks.rebind_epoch(fmem.epoch());
    assert!(ficache.lookup(&fmem, LO_PC, false).is_some(), "carried warm");
    assert!(fblocks.lookup(&fmem, HI_PC, false).is_some(), "carried warm");

    // The straddling patch in the fork privatizes both CoW pages and
    // must invalidate both in the carried caches...
    fmem.write_u32(HI_PC - 2, 0xE1A0_E1A0);
    assert!(ficache.lookup(&fmem, LO_PC, false).is_none());
    assert!(ficache.lookup(&fmem, HI_PC, false).is_none());
    assert!(fblocks.lookup(&fmem, LO_PC, false).is_none());
    assert!(fblocks.lookup(&fmem, HI_PC, false).is_none());
    assert_eq!(ficache.invalidations, 2);
    assert_eq!(fblocks.invalidations, 2);

    // ...while the parent's caches still serve the parent's untouched
    // pages without a single invalidation.
    let mut picache = icache;
    let mut pblocks = blocks;
    assert!(picache.lookup(&mem, LO_PC, false).is_some());
    assert!(pblocks.lookup(&mem, LO_PC, false).is_some());
    assert_eq!(picache.invalidations, 0);
    assert_eq!(pblocks.invalidations, 0);
}
