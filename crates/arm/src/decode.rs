//! ARM (A32) instruction decoding.
//!
//! The decoder recognizes exactly the instruction subset NDroid's
//! instruction tracer handles (plus the VFP subset used by the CF-Bench
//! kernels) and returns [`ArmError::UndefinedInstruction`] for anything
//! else, so unexpected guest code is surfaced rather than silently
//! misinterpreted.

use crate::cond::Cond;
use crate::error::ArmError;
use crate::insn::{AddrMode4, DpOp, Instr, MemOffset, MemSize, Op2, ShiftKind, VfpOp, VfpPrec};
use crate::reg::{Reg, RegList};

/// Decodes one 32-bit ARM instruction word fetched from `addr`.
///
/// # Errors
///
/// [`ArmError::UndefinedInstruction`] if the word is not in the
/// supported subset (including the entire `cond == 0b1111`
/// unconditional space).
pub fn decode_arm(word: u32, addr: u32) -> Result<Instr, ArmError> {
    let cond_bits = word >> 28;
    if cond_bits == 0xF {
        return Err(ArmError::UndefinedInstruction { addr, word });
    }
    let cond = Cond::from_bits(cond_bits);
    let undef = || ArmError::UndefinedInstruction { addr, word };

    match (word >> 25) & 0b111 {
        0b000 => {
            // BX / BLX (register)
            if word & 0x0FFF_FFF0 == 0x012F_FF10 {
                return Ok(Instr::BranchExchange {
                    cond,
                    link: false,
                    rm: Reg::from_bits(word & 0xF),
                });
            }
            if word & 0x0FFF_FFF0 == 0x012F_FF30 {
                return Ok(Instr::BranchExchange {
                    cond,
                    link: true,
                    rm: Reg::from_bits(word & 0xF),
                });
            }
            // Multiply: bits 7:4 == 1001 and bits 24:22 == 000.
            if word & 0x0FC0_00F0 == 0x0000_0090 {
                let a = word & (1 << 21) != 0;
                let rn = Reg::from_bits((word >> 12) & 0xF);
                return Ok(Instr::Mul {
                    cond,
                    s: word & (1 << 20) != 0,
                    rd: Reg::from_bits((word >> 16) & 0xF),
                    rm: Reg::from_bits(word & 0xF),
                    rs: Reg::from_bits((word >> 8) & 0xF),
                    acc: if a { Some(rn) } else { None },
                });
            }
            // Halfword / signed transfers: bit7 == 1, bit4 == 1, SH != 00.
            if word & 0x0000_0090 == 0x0000_0090 && (word >> 5) & 0b11 != 0 {
                return decode_halfword(word, cond, addr);
            }
            // Data-processing, register operand.
            if word & (1 << 4) == 0 {
                decode_dp(word, cond, false, addr)
            } else if word & (1 << 7) == 0 {
                decode_dp(word, cond, true, addr)
            } else {
                Err(undef())
            }
        }
        0b001 => decode_dp_imm(word, cond, addr),
        0b010 => decode_single(word, cond, MemOffset::Imm((word & 0xFFF) as u16)),
        0b011 => {
            if word & (1 << 4) != 0 {
                return Err(undef());
            }
            decode_single(
                word,
                cond,
                MemOffset::Reg {
                    rm: Reg::from_bits(word & 0xF),
                    kind: ShiftKind::from_bits((word >> 5) & 0b11),
                    amount: ((word >> 7) & 0x1F) as u8,
                },
            )
        }
        0b100 => {
            let p = word & (1 << 24) != 0;
            let u = word & (1 << 23) != 0;
            Ok(Instr::MemMulti {
                cond,
                load: word & (1 << 20) != 0,
                rn: Reg::from_bits((word >> 16) & 0xF),
                mode: AddrMode4::from_pu(p, u),
                writeback: word & (1 << 21) != 0,
                regs: RegList((word & 0xFFFF) as u16),
            })
        }
        0b101 => {
            let mut words = (word & 0x00FF_FFFF) as i32;
            if words & 0x0080_0000 != 0 {
                words |= !0x00FF_FFFF; // sign extend 24-bit field
            }
            Ok(Instr::Branch {
                cond,
                link: word & (1 << 24) != 0,
                offset: words * 4,
            })
        }
        0b110 => {
            // VLDR/VSTR: bits 27:24 == 1101, bits 11:9 == 101.
            if (word >> 24) & 0xF == 0b1101 && (word >> 9) & 0b111 == 0b101 {
                if word & (1 << 21) != 0 {
                    return Err(undef()); // writeback form unsupported
                }
                let prec = if word & (1 << 8) != 0 {
                    VfpPrec::F64
                } else {
                    VfpPrec::F32
                };
                let fd = join_vreg((word >> 12) & 0xF, (word >> 22) & 1, prec);
                return Ok(Instr::VfpMem {
                    cond,
                    load: word & (1 << 20) != 0,
                    prec,
                    fd,
                    rn: Reg::from_bits((word >> 16) & 0xF),
                    offset: ((word & 0xFF) * 4) as u16,
                    up: word & (1 << 23) != 0,
                });
            }
            Err(undef())
        }
        0b111 => {
            if (word >> 24) & 0xF == 0b1111 {
                return Ok(Instr::Svc {
                    cond,
                    imm: word & 0x00FF_FFFF,
                });
            }
            // VMRS APSR_nzcv, FPSCR (exact pattern, bit 4 set).
            if word & 0x0FFF_FFFF == 0x0EF1_FA10 {
                return Ok(Instr::VfpMrs { cond });
            }
            // VFP data processing: bits 27:24 == 1110, 11:9 == 101, bit4 == 0.
            if (word >> 24) & 0xF == 0b1110 && (word >> 9) & 0b111 == 0b101 && word & (1 << 4) == 0
            {
                return decode_vfp_dp(word, cond, addr);
            }
            Err(undef())
        }
        _ => unreachable!(),
    }
}

fn decode_dp(word: u32, cond: Cond, shift_by_reg: bool, addr: u32) -> Result<Instr, ArmError> {
    let op = DpOp::from_bits((word >> 21) & 0xF);
    let s = word & (1 << 20) != 0;
    if op.is_compare() && !s {
        // MRS/MSR etc. live in this hole; unsupported.
        return Err(ArmError::UndefinedInstruction { addr, word });
    }
    let rm = Reg::from_bits(word & 0xF);
    let kind = ShiftKind::from_bits((word >> 5) & 0b11);
    let op2 = if shift_by_reg {
        Op2::RegShiftReg {
            rm,
            kind,
            rs: Reg::from_bits((word >> 8) & 0xF),
        }
    } else {
        Op2::RegShiftImm {
            rm,
            kind,
            amount: ((word >> 7) & 0x1F) as u8,
        }
    };
    Ok(Instr::Dp {
        cond,
        op,
        s,
        rd: Reg::from_bits((word >> 12) & 0xF),
        rn: Reg::from_bits((word >> 16) & 0xF),
        op2,
    })
}

fn decode_dp_imm(word: u32, cond: Cond, addr: u32) -> Result<Instr, ArmError> {
    let op = DpOp::from_bits((word >> 21) & 0xF);
    let s = word & (1 << 20) != 0;
    if op.is_compare() && !s {
        return Err(ArmError::UndefinedInstruction { addr, word });
    }
    Ok(Instr::Dp {
        cond,
        op,
        s,
        rd: Reg::from_bits((word >> 12) & 0xF),
        rn: Reg::from_bits((word >> 16) & 0xF),
        op2: Op2::Imm {
            imm8: (word & 0xFF) as u8,
            rot4: ((word >> 8) & 0xF) as u8,
        },
    })
}

fn decode_single(word: u32, cond: Cond, offset: MemOffset) -> Result<Instr, ArmError> {
    let size = if word & (1 << 22) != 0 {
        MemSize::Byte
    } else {
        MemSize::Word
    };
    Ok(Instr::Mem {
        cond,
        load: word & (1 << 20) != 0,
        size,
        rd: Reg::from_bits((word >> 12) & 0xF),
        rn: Reg::from_bits((word >> 16) & 0xF),
        offset,
        pre: word & (1 << 24) != 0,
        up: word & (1 << 23) != 0,
        writeback: word & (1 << 21) != 0,
    })
}

fn decode_halfword(word: u32, cond: Cond, addr: u32) -> Result<Instr, ArmError> {
    let load = word & (1 << 20) != 0;
    let sh = (word >> 5) & 0b11;
    let size = match (load, sh) {
        (true, 0b01) | (false, 0b01) => MemSize::Half,
        (true, 0b10) => MemSize::SignedByte,
        (true, 0b11) => MemSize::SignedHalf,
        _ => return Err(ArmError::UndefinedInstruction { addr, word }), // LDRD/STRD
    };
    let offset = if word & (1 << 22) != 0 {
        MemOffset::Imm((((word >> 8) & 0xF) << 4 | (word & 0xF)) as u16)
    } else {
        MemOffset::Reg {
            rm: Reg::from_bits(word & 0xF),
            kind: ShiftKind::Lsl,
            amount: 0,
        }
    };
    Ok(Instr::Mem {
        cond,
        load,
        size,
        rd: Reg::from_bits((word >> 12) & 0xF),
        rn: Reg::from_bits((word >> 16) & 0xF),
        offset,
        pre: word & (1 << 24) != 0,
        up: word & (1 << 23) != 0,
        writeback: word & (1 << 21) != 0,
    })
}

fn decode_vfp_dp(word: u32, cond: Cond, addr: u32) -> Result<Instr, ArmError> {
    let prec = if word & (1 << 8) != 0 {
        VfpPrec::F64
    } else {
        VfpPrec::F32
    };
    let d = (word >> 22) & 1;
    let n = (word >> 7) & 1;
    let m = (word >> 5) & 1;
    let vd = (word >> 12) & 0xF;
    let vn = (word >> 16) & 0xF;
    let vm = word & 0xF;
    let fd = join_vreg(vd, d, prec);
    let fm = join_vreg(vm, m, prec);
    let opc1 = (word >> 20) & 0xB; // bits 23 and 21:20
    let op6 = (word >> 6) & 1;

    // VMOV / VCMP share opc1 == 0b1011 with Vn selecting the operation.
    if (word >> 23) & 1 == 1 && (word >> 20) & 0b11 == 0b11 {
        let fn_sel = vn;
        return match (fn_sel, op6) {
            (0b0000, 1) => Ok(Instr::Vfp {
                cond,
                op: VfpOp::Mov,
                prec,
                fd,
                fn_: 0,
                fm,
            }),
            (0b0100, 1) => Ok(Instr::Vfp {
                cond,
                op: VfpOp::Cmp,
                prec,
                fd,
                fn_: 0,
                fm,
            }),
            _ => Err(ArmError::UndefinedInstruction { addr, word }),
        };
    }

    let fn_ = join_vreg(vn, n, prec);
    let op = match (opc1, op6) {
        (0b0011, 0) => VfpOp::Add,
        (0b0011, 1) => VfpOp::Sub,
        (0b0010, 0) => VfpOp::Mul,
        (0b1000, 0) => VfpOp::Div,
        _ => return Err(ArmError::UndefinedInstruction { addr, word }),
    };
    Ok(Instr::Vfp {
        cond,
        op,
        prec,
        fd,
        fn_,
        fm,
    })
}

/// Joins a 4-bit VFP register field with its extra bit.
fn join_vreg(field: u32, extra: u32, prec: VfpPrec) -> u8 {
    match prec {
        VfpPrec::F32 => ((field << 1) | extra) as u8,
        VfpPrec::F64 => ((extra << 4) | field) as u8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::insn::Op2;

    #[test]
    fn undefined_words_rejected() {
        // cond == 0b1111 space.
        assert!(decode_arm(0xF000_0000, 0).is_err());
        // MRS (compare hole with S == 0).
        assert!(decode_arm(0xE10F_0000, 0).is_err());
        // LDRD (SH == 10, L == 0).
        assert!(decode_arm(0xE1C0_00D0, 0).is_err());
    }

    #[test]
    fn decode_known_words() {
        // 0xE2810004 = add r0, r1, #4
        match decode_arm(0xE281_0004, 0).unwrap() {
            Instr::Dp { op: DpOp::Add, rd, rn, op2, s: false, .. } => {
                assert_eq!(rd, Reg::R0);
                assert_eq!(rn, Reg::R1);
                match op2 {
                    Op2::Imm { imm8, rot4 } => assert_eq!(Op2::imm_value(imm8, rot4), 4),
                    _ => panic!("expected imm"),
                }
            }
            other => panic!("bad decode: {other:?}"),
        }
        // 0xE12FFF1E = bx lr
        assert_eq!(
            decode_arm(0xE12F_FF1E, 0).unwrap(),
            Instr::BranchExchange {
                cond: Cond::Al,
                link: false,
                rm: Reg::LR
            }
        );
        // 0xEB000000 = bl .+0 (to pc+8)
        assert_eq!(
            decode_arm(0xEB00_0000, 0).unwrap(),
            Instr::Branch {
                cond: Cond::Al,
                link: true,
                offset: 0
            }
        );
        // 0xEAFFFFFE = b . (offset -8)
        assert_eq!(
            decode_arm(0xEAFF_FFFE, 0).unwrap(),
            Instr::Branch {
                cond: Cond::Al,
                link: false,
                offset: -8
            }
        );
    }

    /// Every encodable instruction must decode back to itself.
    #[test]
    fn roundtrip_exhaustive_sample() {
        use crate::insn::{AddrMode4, MemSize, VfpOp, VfpPrec};
        use crate::reg::RegList;
        let mut cases: Vec<Instr> = Vec::new();
        for op in [
            DpOp::And, DpOp::Eor, DpOp::Sub, DpOp::Rsb, DpOp::Add, DpOp::Adc, DpOp::Sbc,
            DpOp::Rsc, DpOp::Tst, DpOp::Teq, DpOp::Cmp, DpOp::Cmn, DpOp::Orr, DpOp::Mov,
            DpOp::Bic, DpOp::Mvn,
        ] {
            cases.push(Instr::Dp {
                cond: Cond::Ne,
                op,
                s: op.is_compare(),
                rd: if op.is_compare() { Reg::R0 } else { Reg::R3 },
                rn: if op.uses_rn() { Reg::R5 } else { Reg::R0 },
                op2: Op2::Imm { imm8: 0x7F, rot4: 3 },
            });
            cases.push(Instr::Dp {
                cond: Cond::Al,
                op,
                s: true,
                rd: if op.is_compare() { Reg::R0 } else { Reg::R1 },
                rn: if op.uses_rn() { Reg::R2 } else { Reg::R0 },
                op2: Op2::RegShiftImm {
                    rm: Reg::R4,
                    kind: ShiftKind::Asr,
                    amount: 7,
                },
            });
            cases.push(Instr::Dp {
                cond: Cond::Al,
                op,
                s: true,
                rd: if op.is_compare() { Reg::R0 } else { Reg::R1 },
                rn: if op.uses_rn() { Reg::R2 } else { Reg::R0 },
                op2: Op2::RegShiftReg {
                    rm: Reg::R4,
                    kind: ShiftKind::Ror,
                    rs: Reg::R6,
                },
            });
        }
        for (size, load) in [
            (MemSize::Word, true),
            (MemSize::Word, false),
            (MemSize::Byte, true),
            (MemSize::Byte, false),
            (MemSize::Half, true),
            (MemSize::Half, false),
            (MemSize::SignedByte, true),
            (MemSize::SignedHalf, true),
        ] {
            cases.push(Instr::Mem {
                cond: Cond::Al,
                load,
                size,
                rd: Reg::R1,
                rn: Reg::R2,
                offset: MemOffset::Imm(0xF0),
                pre: true,
                up: false,
                writeback: true,
            });
            cases.push(Instr::Mem {
                cond: Cond::Gt,
                load,
                size,
                rd: Reg::R7,
                rn: Reg::SP,
                offset: MemOffset::Reg {
                    rm: Reg::R3,
                    kind: ShiftKind::Lsl,
                    amount: if matches!(size, MemSize::Word | MemSize::Byte) {
                        2
                    } else {
                        0
                    },
                },
                pre: false,
                up: true,
                writeback: false,
            });
        }
        for mode in [AddrMode4::Ia, AddrMode4::Ib, AddrMode4::Da, AddrMode4::Db] {
            cases.push(Instr::MemMulti {
                cond: Cond::Al,
                load: true,
                rn: Reg::SP,
                mode,
                writeback: true,
                regs: RegList::of(&[Reg::R0, Reg::R4, Reg::PC]),
            });
        }
        cases.push(Instr::Mul {
            cond: Cond::Al,
            s: true,
            rd: Reg::R0,
            rm: Reg::R1,
            rs: Reg::R2,
            acc: Some(Reg::R3),
        });
        cases.push(Instr::Branch {
            cond: Cond::Lt,
            link: true,
            offset: -4096,
        });
        cases.push(Instr::Svc {
            cond: Cond::Al,
            imm: 0x42,
        });
        for prec in [VfpPrec::F32, VfpPrec::F64] {
            for op in [VfpOp::Add, VfpOp::Sub, VfpOp::Mul, VfpOp::Div] {
                cases.push(Instr::Vfp {
                    cond: Cond::Al,
                    op,
                    prec,
                    fd: 3,
                    fn_: 5,
                    fm: 7,
                });
            }
            cases.push(Instr::Vfp {
                cond: Cond::Al,
                op: VfpOp::Mov,
                prec,
                fd: 2,
                fn_: 0,
                fm: 9,
            });
            cases.push(Instr::Vfp {
                cond: Cond::Al,
                op: VfpOp::Cmp,
                prec,
                fd: 1,
                fn_: 0,
                fm: 4,
            });
            cases.push(Instr::VfpMem {
                cond: Cond::Al,
                load: true,
                prec,
                fd: 6,
                rn: Reg::R2,
                offset: 16,
                up: true,
            });
        }
        cases.push(Instr::VfpMrs { cond: Cond::Al });

        for case in cases {
            let word = encode(&case).unwrap_or_else(|e| panic!("encode {case:?}: {e}"));
            let back = decode_arm(word, 0)
                .unwrap_or_else(|e| panic!("decode {word:#010x} ({case:?}): {e}"));
            assert_eq!(back, case, "word {word:#010x}");
        }
    }
}
