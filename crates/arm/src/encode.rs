//! ARM (A32) instruction encoding.
//!
//! [`encode`] turns a decoded [`Instr`] into the genuine 32-bit
//! architectural encoding, so that native workloads in the NDroid
//! reproduction are real machine code that the decoder
//! ([`crate::decode`]) parses back.

use crate::error::ArmError;
use crate::insn::{AddrMode4, Instr, MemOffset, MemSize, Op2, VfpOp, VfpPrec};
use crate::reg::Reg;

/// Encodes an instruction into its 32-bit ARM representation.
///
/// # Errors
///
/// Returns [`ArmError::Unsupported`] for operand combinations that have
/// no A32 encoding (e.g. a shifted register offset on a halfword
/// transfer, or a branch offset that does not fit in 24 bits).
pub fn encode(instr: &Instr) -> Result<u32, ArmError> {
    match *instr {
        Instr::Dp {
            cond,
            op,
            s,
            rd,
            rn,
            op2,
        } => {
            let s_bit = if s || op.is_compare() { 1 } else { 0 };
            let rd_bits = if op.is_compare() { 0 } else { rd.bits() };
            let rn_bits = if op.uses_rn() { rn.bits() } else { 0 };
            let base = (cond.bits() << 28)
                | ((op as u32) << 21)
                | (s_bit << 20)
                | (rn_bits << 16)
                | (rd_bits << 12);
            let op2_bits = match op2 {
                Op2::Imm { imm8, rot4 } => {
                    (1 << 25) | ((rot4 as u32) << 8) | imm8 as u32
                }
                Op2::RegShiftImm { rm, kind, amount } => {
                    if amount > 31 {
                        return Err(ArmError::Unsupported {
                            addr: 0,
                            what: "shift amount > 31",
                        });
                    }
                    ((amount as u32) << 7) | ((kind as u32) << 5) | rm.bits()
                }
                Op2::RegShiftReg { rm, kind, rs } => {
                    (rs.bits() << 8) | ((kind as u32) << 5) | (1 << 4) | rm.bits()
                }
            };
            Ok(base | op2_bits)
        }
        Instr::Mul {
            cond,
            s,
            rd,
            rm,
            rs,
            acc,
        } => {
            let (a_bit, rn_bits) = match acc {
                Some(ra) => (1u32, ra.bits()),
                None => (0, 0),
            };
            Ok((cond.bits() << 28)
                | (a_bit << 21)
                | ((s as u32) << 20)
                | (rd.bits() << 16)
                | (rn_bits << 12)
                | (rs.bits() << 8)
                | (0b1001 << 4)
                | rm.bits())
        }
        Instr::Mem {
            cond,
            load,
            size,
            rd,
            rn,
            offset,
            pre,
            up,
            writeback,
        } => match size {
            MemSize::Word | MemSize::Byte => {
                let b_bit = (size == MemSize::Byte) as u32;
                let base = (cond.bits() << 28)
                    | (0b01 << 26)
                    | ((pre as u32) << 24)
                    | ((up as u32) << 23)
                    | (b_bit << 22)
                    | ((writeback as u32) << 21)
                    | ((load as u32) << 20)
                    | (rn.bits() << 16)
                    | (rd.bits() << 12);
                let off = match offset {
                    MemOffset::Imm(i) => {
                        if i > 0xFFF {
                            return Err(ArmError::UnencodableImmediate {
                                value: i as u32,
                                context: "ldr/str offset",
                            });
                        }
                        i as u32
                    }
                    MemOffset::Reg { rm, kind, amount } => {
                        (1 << 25)
                            | ((amount as u32) << 7)
                            | ((kind as u32) << 5)
                            | rm.bits()
                    }
                };
                Ok(base | off)
            }
            MemSize::Half | MemSize::SignedByte | MemSize::SignedHalf => {
                let (s_bit, h_bit, l_bit) = match (size, load) {
                    (MemSize::Half, true) => (0u32, 1u32, 1u32),
                    (MemSize::Half, false) => (0, 1, 0),
                    (MemSize::SignedByte, true) => (1, 0, 1),
                    (MemSize::SignedHalf, true) => (1, 1, 1),
                    _ => {
                        return Err(ArmError::Unsupported {
                            addr: 0,
                            what: "signed store has no encoding",
                        })
                    }
                };
                let base = (cond.bits() << 28)
                    | ((pre as u32) << 24)
                    | ((up as u32) << 23)
                    | ((writeback as u32) << 21)
                    | (l_bit << 20)
                    | (rn.bits() << 16)
                    | (rd.bits() << 12)
                    | (1 << 7)
                    | (s_bit << 6)
                    | (h_bit << 5)
                    | (1 << 4);
                match offset {
                    MemOffset::Imm(i) => {
                        if i > 0xFF {
                            return Err(ArmError::UnencodableImmediate {
                                value: i as u32,
                                context: "halfword offset",
                            });
                        }
                        let i = i as u32;
                        Ok(base | (1 << 22) | ((i >> 4) << 8) | (i & 0xF))
                    }
                    MemOffset::Reg { rm, kind: _, amount } => {
                        if amount != 0 {
                            return Err(ArmError::Unsupported {
                                addr: 0,
                                what: "shifted register offset on halfword transfer",
                            });
                        }
                        Ok(base | rm.bits())
                    }
                }
            }
        },
        Instr::MemMulti {
            cond,
            load,
            rn,
            mode,
            writeback,
            regs,
        } => {
            let (p, u) = mode.pu();
            Ok((cond.bits() << 28)
                | (0b100 << 25)
                | ((p as u32) << 24)
                | ((u as u32) << 23)
                | ((writeback as u32) << 21)
                | ((load as u32) << 20)
                | (rn.bits() << 16)
                | regs.0 as u32)
        }
        Instr::Branch { cond, link, offset } => {
            if offset % 4 != 0 {
                return Err(ArmError::Unsupported {
                    addr: 0,
                    what: "misaligned branch offset",
                });
            }
            let words = offset / 4;
            if !(-(1 << 23)..(1 << 23)).contains(&words) {
                return Err(ArmError::BranchOutOfRange {
                    from: 0,
                    to: offset as u32,
                });
            }
            Ok((cond.bits() << 28)
                | (0b101 << 25)
                | ((link as u32) << 24)
                | ((words as u32) & 0x00FF_FFFF))
        }
        Instr::BranchExchange { cond, link, rm } => {
            let op = if link { 0x3u32 } else { 0x1 };
            Ok((cond.bits() << 28) | 0x012F_FF00 | (op << 4) | rm.bits())
        }
        Instr::Svc { cond, imm } => {
            if imm > 0x00FF_FFFF {
                return Err(ArmError::UnencodableImmediate {
                    value: imm,
                    context: "svc",
                });
            }
            Ok((cond.bits() << 28) | (0b1111 << 24) | imm)
        }
        Instr::Vfp {
            cond,
            op,
            prec,
            fd,
            fn_,
            fm,
        } => {
            let sz = (prec == VfpPrec::F64) as u32;
            let (vd, d) = split_vreg(fd, prec);
            let (vn, n) = split_vreg(fn_, prec);
            let (vm, m) = split_vreg(fm, prec);
            let base = (cond.bits() << 28)
                | (0b1110 << 24)
                | (d << 22)
                | (vn << 16)
                | (vd << 12)
                | (0b101 << 9)
                | (sz << 8)
                | (n << 7)
                | (m << 5)
                | vm;
            Ok(match op {
                VfpOp::Add => base | (0b011 << 20),
                VfpOp::Sub => base | (0b011 << 20) | (1 << 6),
                VfpOp::Mul => base | (0b010 << 20),
                VfpOp::Div => base | (1 << 23),
                VfpOp::Mov => {
                    // VMOV register: 11101 D 110000 Vd 101 sz 01 M 0 Vm
                    (cond.bits() << 28)
                        | (0b1_1101 << 23)
                        | (d << 22)
                        | (0b110000 << 16)
                        | (vd << 12)
                        | (0b101 << 9)
                        | (sz << 8)
                        | (0b01 << 6)
                        | (m << 5)
                        | vm
                }
                VfpOp::Cmp => {
                    // VCMP: 11101 D 110100 Vd 101 sz 01 M 0 Vm  (E=0)
                    (cond.bits() << 28)
                        | (0b1_1101 << 23)
                        | (d << 22)
                        | (0b110100 << 16)
                        | (vd << 12)
                        | (0b101 << 9)
                        | (sz << 8)
                        | (0b01 << 6)
                        | (m << 5)
                        | vm
                }
            })
        }
        Instr::VfpMem {
            cond,
            load,
            prec,
            fd,
            rn,
            offset,
            up,
        } => {
            if offset % 4 != 0 || offset / 4 > 0xFF {
                return Err(ArmError::UnencodableImmediate {
                    value: offset as u32,
                    context: "vldr/vstr offset",
                });
            }
            let sz = (prec == VfpPrec::F64) as u32;
            let (vd, d) = split_vreg(fd, prec);
            Ok((cond.bits() << 28)
                | (0b1101 << 24)
                | ((up as u32) << 23)
                | (d << 22)
                | ((load as u32) << 20)
                | (rn.bits() << 16)
                | (vd << 12)
                | (0b101 << 9)
                | (sz << 8)
                | (offset as u32 / 4))
        }
        Instr::VfpMrs { cond } => Ok((cond.bits() << 28) | 0x0EF1_FA10),
    }
}

/// Splits a VFP register index into its (4-bit field, extra bit) parts.
///
/// Singles: `Sx` → (x >> 1, x & 1). Doubles: `Dx` → (x & 0xF, x >> 4).
fn split_vreg(idx: u8, prec: VfpPrec) -> (u32, u32) {
    match prec {
        VfpPrec::F32 => ((idx >> 1) as u32, (idx & 1) as u32),
        VfpPrec::F64 => ((idx & 0xF) as u32, (idx >> 4) as u32),
    }
}

/// Convenience: encodes a PUSH (`STMDB SP!, regs`).
pub fn push(cond: crate::cond::Cond, regs: crate::reg::RegList) -> Result<u32, ArmError> {
    encode(&Instr::MemMulti {
        cond,
        load: false,
        rn: Reg::SP,
        mode: AddrMode4::Db,
        writeback: true,
        regs,
    })
}

/// Convenience: encodes a POP (`LDMIA SP!, regs`).
pub fn pop(cond: crate::cond::Cond, regs: crate::reg::RegList) -> Result<u32, ArmError> {
    encode(&Instr::MemMulti {
        cond,
        load: true,
        rn: Reg::SP,
        mode: AddrMode4::Ia,
        writeback: true,
        regs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::insn::DpOp;
    use crate::reg::RegList;

    /// Cross-checked against GNU `as` output.
    #[test]
    fn known_encodings() {
        // add r0, r1, #4  -> 0xE2810004
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: false,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Op2::encode_imm(4).unwrap(),
        };
        assert_eq!(encode(&i).unwrap(), 0xE281_0004);

        // mov r0, r1 -> 0xE1A00001
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: false,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Op2::reg(Reg::R1),
        };
        assert_eq!(encode(&i).unwrap(), 0xE1A0_0001);

        // cmp r2, #0 -> 0xE3520000
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Cmp,
            s: true,
            rd: Reg::R0,
            rn: Reg::R2,
            op2: Op2::encode_imm(0).unwrap(),
        };
        assert_eq!(encode(&i).unwrap(), 0xE352_0000);

        // ldr r0, [r1, #8] -> 0xE5910008
        let i = Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(8),
            pre: true,
            up: true,
            writeback: false,
        };
        assert_eq!(encode(&i).unwrap(), 0xE591_0008);

        // str r3, [sp, #-4]! -> 0xE52D3004
        let i = Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::Word,
            rd: Reg::R3,
            rn: Reg::SP,
            offset: MemOffset::Imm(4),
            pre: true,
            up: false,
            writeback: true,
        };
        assert_eq!(encode(&i).unwrap(), 0xE52D_3004);

        // bx lr -> 0xE12FFF1E
        let i = Instr::BranchExchange {
            cond: Cond::Al,
            link: false,
            rm: Reg::LR,
        };
        assert_eq!(encode(&i).unwrap(), 0xE12F_FF1E);

        // blx r3 -> 0xE12FFF33
        let i = Instr::BranchExchange {
            cond: Cond::Al,
            link: true,
            rm: Reg::R3,
        };
        assert_eq!(encode(&i).unwrap(), 0xE12F_FF33);

        // push {r4, lr} -> 0xE92D4010
        assert_eq!(
            push(Cond::Al, RegList::of(&[Reg::R4, Reg::LR])).unwrap(),
            0xE92D_4010
        );
        // pop {r4, pc} -> 0xE8BD8010
        assert_eq!(
            pop(Cond::Al, RegList::of(&[Reg::R4, Reg::PC])).unwrap(),
            0xE8BD_8010
        );

        // mul r0, r1, r2 -> 0xE0000291
        let i = Instr::Mul {
            cond: Cond::Al,
            s: false,
            rd: Reg::R0,
            rm: Reg::R1,
            rs: Reg::R2,
            acc: None,
        };
        assert_eq!(encode(&i).unwrap(), 0xE000_0291);

        // svc #0 -> 0xEF000000
        let i = Instr::Svc {
            cond: Cond::Al,
            imm: 0,
        };
        assert_eq!(encode(&i).unwrap(), 0xEF00_0000);

        // b .+8 -> offset field 0 (pc+8), word 0xEA000000
        let i = Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset: 0,
        };
        assert_eq!(encode(&i).unwrap(), 0xEA00_0000);

        // ldrh r0, [r1, #2] -> 0xE1D100B2
        let i = Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Half,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(2),
            pre: true,
            up: true,
            writeback: false,
        };
        assert_eq!(encode(&i).unwrap(), 0xE1D1_00B2);

        // vadd.f64 d0, d1, d2 -> 0xEE310B02
        let i = Instr::Vfp {
            cond: Cond::Al,
            op: VfpOp::Add,
            prec: VfpPrec::F64,
            fd: 0,
            fn_: 1,
            fm: 2,
        };
        assert_eq!(encode(&i).unwrap(), 0xEE31_0B02);

        // vldr s0, [r1, #4] -> 0xED910A01
        let i = Instr::VfpMem {
            cond: Cond::Al,
            load: true,
            prec: VfpPrec::F32,
            fd: 0,
            rn: Reg::R1,
            offset: 4,
            up: true,
        };
        assert_eq!(encode(&i).unwrap(), 0xED91_0A01);

        // vmrs APSR_nzcv, fpscr -> 0xEEF1FA10
        assert_eq!(encode(&Instr::VfpMrs { cond: Cond::Al }).unwrap(), 0xEEF1_FA10);
    }

    #[test]
    fn rejects_unencodable() {
        // Signed byte store does not exist.
        let i = Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::SignedByte,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        };
        assert!(encode(&i).is_err());

        // 12-bit offset overflow.
        let i = Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0x1000),
            pre: true,
            up: true,
            writeback: false,
        };
        assert!(encode(&i).is_err());

        // Branch offset out of range.
        let i = Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset: 64 << 20,
        };
        assert!(encode(&i).is_err());
    }
}
