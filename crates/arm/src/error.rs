//! Error type for the ARM simulator.

use std::fmt;

/// Errors raised while assembling, decoding or executing guest code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmError {
    /// An immediate cannot be encoded in the instruction's immediate field.
    UnencodableImmediate {
        /// The value that failed to encode.
        value: u32,
        /// The instruction mnemonic being assembled.
        context: &'static str,
    },
    /// A branch target is out of range or misaligned.
    BranchOutOfRange {
        /// Branch origin.
        from: u32,
        /// Branch target.
        to: u32,
    },
    /// A label was referenced but never bound.
    UnboundLabel(usize),
    /// A label was bound more than once.
    RebindLabel(usize),
    /// The word at `addr` does not decode to a supported instruction.
    UndefinedInstruction {
        /// Address of the instruction.
        addr: u32,
        /// The raw instruction word.
        word: u32,
    },
    /// A memory access touched an unmapped address in strict mode.
    Unmapped {
        /// The faulting address.
        addr: u32,
    },
    /// The executor detected an instruction it cannot run.
    Unsupported {
        /// Address of the instruction.
        addr: u32,
        /// Description of the unsupported feature.
        what: &'static str,
    },
    /// Division by zero in a guest `VDIV` or helper.
    DivideByZero {
        /// Address of the instruction.
        addr: u32,
    },
}

impl fmt::Display for ArmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmError::UnencodableImmediate { value, context } => {
                write!(f, "immediate {value:#x} not encodable in {context}")
            }
            ArmError::BranchOutOfRange { from, to } => {
                write!(f, "branch from {from:#x} to {to:#x} out of range")
            }
            ArmError::UnboundLabel(id) => write!(f, "label {id} referenced but never bound"),
            ArmError::RebindLabel(id) => write!(f, "label {id} bound twice"),
            ArmError::UndefinedInstruction { addr, word } => {
                write!(f, "undefined instruction {word:#010x} at {addr:#x}")
            }
            ArmError::Unmapped { addr } => write!(f, "unmapped guest address {addr:#x}"),
            ArmError::Unsupported { addr, what } => {
                write!(f, "unsupported operation at {addr:#x}: {what}")
            }
            ArmError::DivideByZero { addr } => write!(f, "divide by zero at {addr:#x}"),
        }
    }
}

impl std::error::Error for ArmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            ArmError::UnencodableImmediate {
                value: 0x1234,
                context: "mov",
            },
            ArmError::BranchOutOfRange { from: 0, to: 1 },
            ArmError::UnboundLabel(3),
            ArmError::RebindLabel(4),
            ArmError::UndefinedInstruction {
                addr: 0x1000,
                word: 0xFFFF_FFFF,
            },
            ArmError::Unmapped { addr: 0xdead },
            ArmError::Unsupported {
                addr: 0,
                what: "x",
            },
            ArmError::DivideByZero { addr: 8 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArmError>();
    }
}
