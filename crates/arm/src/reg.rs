//! ARM general-purpose register names.

use std::fmt;

/// One of the sixteen ARM core registers.
///
/// `R13`/`SP` is the stack pointer, `R14`/`LR` the link register and
/// `R15`/`PC` the program counter, per the ARM Architecture Reference
/// Manual and the AAPCS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Reg {
    /// General-purpose register R0.
    R0 = 0,
    /// General-purpose register R1.
    R1 = 1,
    /// General-purpose register R2.
    R2 = 2,
    /// General-purpose register R3.
    R3 = 3,
    /// General-purpose register R4.
    R4 = 4,
    /// General-purpose register R5.
    R5 = 5,
    /// General-purpose register R6.
    R6 = 6,
    /// General-purpose register R7.
    R7 = 7,
    /// General-purpose register R8.
    R8 = 8,
    /// General-purpose register R9.
    R9 = 9,
    /// General-purpose register R10.
    R10 = 10,
    /// General-purpose register R11.
    R11 = 11,
    /// General-purpose register R12.
    R12 = 12,
    /// Stack pointer (R13).
    SP = 13,
    /// Link register (R14).
    LR = 14,
    /// Program counter (R15).
    PC = 15,
}

impl Reg {
    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::SP,
        Reg::LR,
        Reg::PC,
    ];

    /// The register's index in the architectural register file (0..=15).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The 4-bit encoding used in instruction fields.
    #[inline]
    pub const fn bits(self) -> u32 {
        self as u32
    }

    /// Builds a register from a 4-bit field.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 15`.
    #[inline]
    pub fn from_bits(bits: u32) -> Reg {
        Reg::ALL[(bits & 0xF) as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::SP => write!(f, "sp"),
            Reg::LR => write!(f, "lr"),
            Reg::PC => write!(f, "pc"),
            other => write!(f, "r{}", other.index()),
        }
    }
}

/// A set of core registers, as used by `LDM`/`STM`/`PUSH`/`POP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegList(pub u16);

impl RegList {
    /// The empty register list.
    pub const EMPTY: RegList = RegList(0);

    /// Builds a list from a slice of registers.
    pub fn of(regs: &[Reg]) -> RegList {
        let mut mask = 0u16;
        for r in regs {
            mask |= 1 << r.index();
        }
        RegList(mask)
    }

    /// Whether `r` is in the list.
    #[inline]
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Number of registers in the list.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over members in ascending register order (the transfer
    /// order used by `LDM`/`STM`).
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        Reg::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl fmt::Display for RegList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_bits() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_bits(r.bits()), r);
        }
    }

    #[test]
    fn reg_display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg::PC.to_string(), "pc");
    }

    #[test]
    fn reglist_membership_and_order() {
        let l = RegList::of(&[Reg::R4, Reg::R0, Reg::LR]);
        assert!(l.contains(Reg::R0));
        assert!(l.contains(Reg::R4));
        assert!(l.contains(Reg::LR));
        assert!(!l.contains(Reg::R1));
        assert_eq!(l.len(), 3);
        let order: Vec<Reg> = l.iter().collect();
        assert_eq!(order, vec![Reg::R0, Reg::R4, Reg::LR]);
    }

    #[test]
    fn reglist_display() {
        let l = RegList::of(&[Reg::R0, Reg::PC]);
        assert_eq!(l.to_string(), "{r0,pc}");
        assert_eq!(RegList::EMPTY.to_string(), "{}");
        assert!(RegList::EMPTY.is_empty());
    }
}
