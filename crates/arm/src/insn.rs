//! The decoded instruction model shared by the assembler, decoder,
//! executor and NDroid's instruction tracer.

use crate::cond::Cond;
use crate::reg::{Reg, RegList};
use std::fmt;

/// Data-processing opcodes (the 4-bit `opcode` field of ARM
/// data-processing instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DpOp {
    /// Bitwise AND.
    And = 0x0,
    /// Bitwise exclusive OR.
    Eor = 0x1,
    /// Subtract.
    Sub = 0x2,
    /// Reverse subtract.
    Rsb = 0x3,
    /// Add.
    Add = 0x4,
    /// Add with carry.
    Adc = 0x5,
    /// Subtract with carry.
    Sbc = 0x6,
    /// Reverse subtract with carry.
    Rsc = 0x7,
    /// Test (AND, flags only).
    Tst = 0x8,
    /// Test equivalence (EOR, flags only).
    Teq = 0x9,
    /// Compare (SUB, flags only).
    Cmp = 0xA,
    /// Compare negative (ADD, flags only).
    Cmn = 0xB,
    /// Bitwise OR.
    Orr = 0xC,
    /// Move.
    Mov = 0xD,
    /// Bit clear (AND NOT).
    Bic = 0xE,
    /// Move NOT.
    Mvn = 0xF,
}

impl DpOp {
    /// Decodes the 4-bit opcode field.
    pub fn from_bits(bits: u32) -> DpOp {
        use DpOp::*;
        [
            And, Eor, Sub, Rsb, Add, Adc, Sbc, Rsc, Tst, Teq, Cmp, Cmn, Orr, Mov, Bic, Mvn,
        ][(bits & 0xF) as usize]
    }

    /// Whether the op is a comparison (writes flags only, no `Rd`).
    pub fn is_compare(self) -> bool {
        matches!(self, DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn)
    }

    /// Whether the op uses `Rn` (MOV and MVN do not).
    pub fn uses_rn(self) -> bool {
        !matches!(self, DpOp::Mov | DpOp::Mvn)
    }
}

/// Barrel-shifter operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ShiftKind {
    /// Logical shift left.
    Lsl = 0,
    /// Logical shift right.
    Lsr = 1,
    /// Arithmetic shift right.
    Asr = 2,
    /// Rotate right.
    Ror = 3,
}

impl ShiftKind {
    /// Decodes the 2-bit shift-type field.
    pub fn from_bits(bits: u32) -> ShiftKind {
        [ShiftKind::Lsl, ShiftKind::Lsr, ShiftKind::Asr, ShiftKind::Ror][(bits & 0x3) as usize]
    }
}

/// The flexible second operand of a data-processing instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op2 {
    /// Rotated 8-bit immediate: value = `imm8.rotate_right(2 * rot4)`.
    Imm {
        /// 8-bit base immediate.
        imm8: u8,
        /// 4-bit rotation (applied as `rotate_right(2 * rot4)`).
        rot4: u8,
    },
    /// Register shifted by an immediate amount.
    RegShiftImm {
        /// Source register.
        rm: Reg,
        /// Shift kind.
        kind: ShiftKind,
        /// Shift amount (0–31; 0 with LSR/ASR means 32 architecturally,
        /// which this simulator does not use).
        amount: u8,
    },
    /// Register shifted by a register amount.
    RegShiftReg {
        /// Source register.
        rm: Reg,
        /// Shift kind.
        kind: ShiftKind,
        /// Register holding the shift amount.
        rs: Reg,
    },
}

impl Op2 {
    /// The immediate's architectural value.
    pub fn imm_value(imm8: u8, rot4: u8) -> u32 {
        (imm8 as u32).rotate_right(2 * rot4 as u32)
    }

    /// Attempts to express `value` as a rotated 8-bit immediate.
    pub fn encode_imm(value: u32) -> Option<Op2> {
        for rot4 in 0..16u8 {
            let rotated = value.rotate_left(2 * rot4 as u32);
            if rotated <= 0xFF {
                return Some(Op2::Imm {
                    imm8: rotated as u8,
                    rot4,
                });
            }
        }
        None
    }

    /// A plain (unshifted) register operand.
    pub fn reg(rm: Reg) -> Op2 {
        Op2::RegShiftImm {
            rm,
            kind: ShiftKind::Lsl,
            amount: 0,
        }
    }

    /// The register read by this operand, if any (ignoring the shift
    /// amount register).
    pub fn rm(self) -> Option<Reg> {
        match self {
            Op2::Imm { .. } => None,
            Op2::RegShiftImm { rm, .. } | Op2::RegShiftReg { rm, .. } => Some(rm),
        }
    }
}

/// Memory access width for single loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 32-bit word (`LDR`/`STR`).
    Word,
    /// 8-bit unsigned byte (`LDRB`/`STRB`).
    Byte,
    /// 16-bit unsigned halfword (`LDRH`/`STRH`).
    Half,
    /// 8-bit sign-extended byte (`LDRSB`).
    SignedByte,
    /// 16-bit sign-extended halfword (`LDRSH`).
    SignedHalf,
}

impl MemSize {
    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Word => 4,
            MemSize::Byte | MemSize::SignedByte => 1,
            MemSize::Half | MemSize::SignedHalf => 2,
        }
    }
}

/// Addressing offset for single loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOffset {
    /// Immediate offset (12-bit for word/byte, 8-bit for halfword forms).
    Imm(u16),
    /// Register offset, optionally shifted (shift only valid for
    /// word/byte forms).
    Reg {
        /// Offset register.
        rm: Reg,
        /// Shift applied to `rm`.
        kind: ShiftKind,
        /// Immediate shift amount.
        amount: u8,
    },
}

/// Load/store-multiple addressing modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode4 {
    /// Increment after (`LDMIA`/`STMIA`) — the default, used by `POP`.
    Ia,
    /// Increment before.
    Ib,
    /// Decrement after.
    Da,
    /// Decrement before — used by `PUSH` (`STMDB`).
    Db,
}

impl AddrMode4 {
    /// (pre-indexed?, upward?) flag pair as encoded in bits P and U.
    pub fn pu(self) -> (bool, bool) {
        match self {
            AddrMode4::Ia => (false, true),
            AddrMode4::Ib => (true, true),
            AddrMode4::Da => (false, false),
            AddrMode4::Db => (true, false),
        }
    }

    /// Decodes the P/U bit pair.
    pub fn from_pu(p: bool, u: bool) -> AddrMode4 {
        match (p, u) {
            (false, true) => AddrMode4::Ia,
            (true, true) => AddrMode4::Ib,
            (false, false) => AddrMode4::Da,
            (true, false) => AddrMode4::Db,
        }
    }
}

/// VFP data-processing operations (subset used by CF-Bench kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VfpOp {
    /// Floating-point add.
    Add,
    /// Floating-point subtract.
    Sub,
    /// Floating-point multiply.
    Mul,
    /// Floating-point divide.
    Div,
    /// Copy.
    Mov,
    /// Compare (sets FPSCR flags which `Vmrs` transfers).
    Cmp,
}

/// Floating-point precision selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VfpPrec {
    /// Single precision (`Sx` registers).
    F32,
    /// Double precision (`Dx` registers).
    F64,
}

/// A decoded instruction.
///
/// This enum mirrors the architectural instruction classes NDroid's
/// instruction tracer distinguishes in Table V of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Data-processing (`ADD`, `MOV`, `CMP`, …).
    Dp {
        /// Condition code.
        cond: Cond,
        /// Opcode.
        op: DpOp,
        /// Set flags?
        s: bool,
        /// Destination register (ignored for compares).
        rd: Reg,
        /// First operand register (ignored for MOV/MVN).
        rn: Reg,
        /// Flexible second operand.
        op2: Op2,
    },
    /// Multiply / multiply-accumulate.
    Mul {
        /// Condition code.
        cond: Cond,
        /// Set flags?
        s: bool,
        /// Destination.
        rd: Reg,
        /// First factor.
        rm: Reg,
        /// Second factor.
        rs: Reg,
        /// Accumulator (for `MLA`).
        acc: Option<Reg>,
    },
    /// Single register load/store.
    Mem {
        /// Condition code.
        cond: Cond,
        /// Load (`true`) or store (`false`).
        load: bool,
        /// Access width / signedness.
        size: MemSize,
        /// Data register.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Offset.
        offset: MemOffset,
        /// Pre-indexed addressing?
        pre: bool,
        /// Offset added (`true`) or subtracted.
        up: bool,
        /// Write the updated address back to `rn`?
        writeback: bool,
    },
    /// Load/store multiple (`LDM`/`STM`, including `PUSH`/`POP`).
    MemMulti {
        /// Condition code.
        cond: Cond,
        /// Load (`true`) or store (`false`).
        load: bool,
        /// Base register.
        rn: Reg,
        /// Addressing mode.
        mode: AddrMode4,
        /// Write the final address back to `rn`?
        writeback: bool,
        /// Registers to transfer.
        regs: RegList,
    },
    /// PC-relative branch (`B`/`BL`).
    Branch {
        /// Condition code.
        cond: Cond,
        /// Set LR?
        link: bool,
        /// Signed word offset from `PC + 8` (ARM) or `PC + 4` (Thumb),
        /// already scaled to bytes.
        offset: i32,
    },
    /// Branch (and optionally link) to a register (`BX`/`BLX`).
    BranchExchange {
        /// Condition code.
        cond: Cond,
        /// Set LR?
        link: bool,
        /// Target register.
        rm: Reg,
    },
    /// Supervisor call (software interrupt).
    Svc {
        /// Condition code.
        cond: Cond,
        /// 24-bit comment field (the syscall selector by convention).
        imm: u32,
    },
    /// VFP register-to-register data processing.
    Vfp {
        /// Condition code.
        cond: Cond,
        /// Operation.
        op: VfpOp,
        /// Precision.
        prec: VfpPrec,
        /// Destination FP register index.
        fd: u8,
        /// First source FP register index.
        fn_: u8,
        /// Second source FP register index.
        fm: u8,
    },
    /// VFP load/store (`VLDR`/`VSTR`).
    VfpMem {
        /// Condition code.
        cond: Cond,
        /// Load (`true`) or store.
        load: bool,
        /// Precision.
        prec: VfpPrec,
        /// FP register index.
        fd: u8,
        /// Base core register.
        rn: Reg,
        /// Unsigned byte offset (must be a multiple of 4).
        offset: u16,
        /// Offset added (`true`) or subtracted.
        up: bool,
    },
    /// `VMRS APSR_nzcv, FPSCR` — transfer FP compare flags to CPSR.
    VfpMrs {
        /// Condition code.
        cond: Cond,
    },
}

impl Instr {
    /// The condition code guarding this instruction.
    pub fn cond(&self) -> Cond {
        match *self {
            Instr::Dp { cond, .. }
            | Instr::Mul { cond, .. }
            | Instr::Mem { cond, .. }
            | Instr::MemMulti { cond, .. }
            | Instr::Branch { cond, .. }
            | Instr::BranchExchange { cond, .. }
            | Instr::Svc { cond, .. }
            | Instr::Vfp { cond, .. }
            | Instr::VfpMem { cond, .. }
            | Instr::VfpMrs { cond } => cond,
        }
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_branch(&self) -> bool {
        match self {
            Instr::Branch { .. } | Instr::BranchExchange { .. } => true,
            Instr::Dp { rd, op, .. } => *rd == Reg::PC && !op.is_compare(),
            Instr::Mem { load: true, rd, .. } => *rd == Reg::PC,
            Instr::MemMulti { load: true, regs, .. } => regs.contains(Reg::PC),
            _ => false,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Dp {
                cond, op, s, rd, rn, op2,
            } => {
                let name = format!("{op:?}").to_lowercase();
                let sfx = if *s && !op.is_compare() { "s" } else { "" };
                write!(f, "{name}{cond}{sfx} ")?;
                if op.is_compare() {
                    write!(f, "{rn}, ")?;
                } else if op.uses_rn() {
                    write!(f, "{rd}, {rn}, ")?;
                } else {
                    write!(f, "{rd}, ")?;
                }
                match op2 {
                    Op2::Imm { imm8, rot4 } => {
                        write!(f, "#{:#x}", Op2::imm_value(*imm8, *rot4))
                    }
                    Op2::RegShiftImm { rm, kind, amount } => {
                        if *amount == 0 && *kind == ShiftKind::Lsl {
                            write!(f, "{rm}")
                        } else {
                            write!(f, "{rm}, {kind:?} #{amount}")
                        }
                    }
                    Op2::RegShiftReg { rm, kind, rs } => write!(f, "{rm}, {kind:?} {rs}"),
                }
            }
            Instr::Mul {
                cond, s, rd, rm, rs, acc,
            } => {
                let sfx = if *s { "s" } else { "" };
                match acc {
                    Some(ra) => write!(f, "mla{cond}{sfx} {rd}, {rm}, {rs}, {ra}"),
                    None => write!(f, "mul{cond}{sfx} {rd}, {rm}, {rs}"),
                }
            }
            Instr::Mem {
                cond, load, size, rd, rn, offset, pre, up, writeback,
            } => {
                let op = if *load { "ldr" } else { "str" };
                let sz = match size {
                    MemSize::Word => "",
                    MemSize::Byte => "b",
                    MemSize::Half => "h",
                    MemSize::SignedByte => "sb",
                    MemSize::SignedHalf => "sh",
                };
                let sign = if *up { "" } else { "-" };
                write!(f, "{op}{cond}{sz} {rd}, [{rn}")?;
                let off = match offset {
                    MemOffset::Imm(i) => format!("#{sign}{i}"),
                    MemOffset::Reg { rm, kind, amount } => {
                        if *amount == 0 {
                            format!("{sign}{rm}")
                        } else {
                            format!("{sign}{rm}, {kind:?} #{amount}")
                        }
                    }
                };
                if *pre {
                    write!(f, ", {off}]{}", if *writeback { "!" } else { "" })
                } else {
                    write!(f, "], {off}")
                }
            }
            Instr::MemMulti {
                cond, load, rn, mode, writeback, regs,
            } => {
                let op = if *load { "ldm" } else { "stm" };
                let m = format!("{mode:?}").to_lowercase();
                let wb = if *writeback { "!" } else { "" };
                write!(f, "{op}{m}{cond} {rn}{wb}, {regs}")
            }
            Instr::Branch { cond, link, offset } => {
                write!(f, "b{}{cond} .{offset:+}", if *link { "l" } else { "" })
            }
            Instr::BranchExchange { cond, link, rm } => {
                write!(f, "b{}x{cond} {rm}", if *link { "l" } else { "" })
            }
            Instr::Svc { cond, imm } => write!(f, "svc{cond} #{imm:#x}"),
            Instr::Vfp {
                cond: _, op, prec, fd, fn_, fm,
            } => {
                let p = if *prec == VfpPrec::F32 { "s" } else { "d" };
                let name = format!("{op:?}").to_lowercase();
                write!(f, "v{name}.{} {p}{fd}, {p}{fn_}, {p}{fm}", if *prec == VfpPrec::F32 { "f32" } else { "f64" }, )
            }
            Instr::VfpMem {
                cond, load, prec, fd, rn, offset, up,
            } => {
                let op = if *load { "vldr" } else { "vstr" };
                let p = if *prec == VfpPrec::F32 { "s" } else { "d" };
                let sign = if *up { "" } else { "-" };
                write!(f, "{op}{cond} {p}{fd}, [{rn}, #{sign}{offset}]")
            }
            Instr::VfpMrs { cond } => write!(f, "vmrs{cond} APSR_nzcv, fpscr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op2_imm_encode_roundtrip() {
        for value in [0u32, 1, 0xFF, 0x100, 0xFF00, 0xFF000000, 0xF000000F, 0x3FC] {
            let op2 = Op2::encode_imm(value).expect("encodable");
            match op2 {
                Op2::Imm { imm8, rot4 } => assert_eq!(Op2::imm_value(imm8, rot4), value),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn op2_imm_rejects_unencodable() {
        assert!(Op2::encode_imm(0x101).is_none());
        assert!(Op2::encode_imm(0xFFFF).is_none());
        assert!(Op2::encode_imm(0x1FE00001).is_none());
    }

    #[test]
    fn dpop_properties() {
        assert!(DpOp::Cmp.is_compare());
        assert!(!DpOp::Add.is_compare());
        assert!(!DpOp::Mov.uses_rn());
        assert!(DpOp::Add.uses_rn());
        for bits in 0..16 {
            assert_eq!(DpOp::from_bits(bits) as u32, bits);
        }
    }

    #[test]
    fn addr_mode4_pu_roundtrip() {
        for m in [AddrMode4::Ia, AddrMode4::Ib, AddrMode4::Da, AddrMode4::Db] {
            let (p, u) = m.pu();
            assert_eq!(AddrMode4::from_pu(p, u), m);
        }
    }

    #[test]
    fn branch_detection() {
        let b = Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset: 8,
        };
        assert!(b.is_branch());
        let mov_pc = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: false,
            rd: Reg::PC,
            rn: Reg::R0,
            op2: Op2::reg(Reg::LR),
        };
        assert!(mov_pc.is_branch());
        let pop_pc = Instr::MemMulti {
            cond: Cond::Al,
            load: true,
            rn: Reg::SP,
            mode: AddrMode4::Ia,
            writeback: true,
            regs: RegList::of(&[Reg::R4, Reg::PC]),
        };
        assert!(pop_pc.is_branch());
        let add = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: false,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Op2::reg(Reg::R2),
        };
        assert!(!add.is_branch());
    }

    #[test]
    fn display_smoke() {
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: false,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Op2::encode_imm(4).unwrap(),
        };
        assert_eq!(i.to_string(), "add r0, r1, #0x4");
        let l = Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::SP,
            offset: MemOffset::Imm(8),
            pre: true,
            up: true,
            writeback: false,
        };
        assert_eq!(l.to_string(), "ldr r0, [sp, #8]");
    }
}
