#![warn(missing_docs)]

//! # ndroid-arm
//!
//! An ARM32/Thumb instruction-set simulator: the substrate that replaces
//! QEMU's ARM system emulation in the NDroid reproduction.
//!
//! The crate provides:
//!
//! * [`Cpu`] — architectural state (R0–R15, CPSR flags, VFP registers).
//! * [`Memory`] — a sparse, paged guest address space.
//! * [`Assembler`] — a builder-style assembler producing *real* ARM/Thumb
//!   encodings, so native workloads are genuine machine code.
//! * [`decode`](decode::decode_arm) / [`thumb`] — decoders back to [`Instr`].
//! * [`exec`] — an interpreter whose [`Effect`] records (branches, effective
//!   addresses) feed NDroid's instruction tracer.
//!
//! The supported subset covers the instructions NDroid's taint logic handles
//! (Table V of the paper): data-processing, moves, multiplies,
//! loads/stores (word/byte/halfword, signed variants), load/store multiple
//! (`PUSH`/`POP`), branches (`B`/`BL`/`BX`/`BLX`), `SVC`, and a VFP subset
//! for the CF-Bench floating-point kernels.
//!
//! ```
//! use ndroid_arm::{Assembler, Cpu, Memory, Reg, exec};
//!
//! # fn main() -> Result<(), ndroid_arm::ArmError> {
//! let mut asm = Assembler::new(0x1000);
//! asm.mov_imm(Reg::R0, 7)?;
//! asm.add_imm(Reg::R0, Reg::R0, 35)?;
//! asm.bx(Reg::LR);
//! let code = asm.assemble()?;
//!
//! let mut mem = Memory::new();
//! mem.write_bytes(0x1000, &code.bytes);
//! let mut cpu = Cpu::new();
//! cpu.set_pc(0x1000);
//! cpu.regs[Reg::LR.index()] = 0xFFFF_FFFC; // sentinel return
//! while cpu.pc() != 0xFFFF_FFFC {
//!     exec::step(&mut cpu, &mut mem)?;
//! }
//! assert_eq!(cpu.regs[0], 42);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod block;
pub mod cond;
pub mod cpu;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod error;
pub mod exec;
pub mod icache;
pub mod insn;
pub mod mem;
pub mod reg;
pub mod thumb;

pub use asm::{Assembler, CodeBlock, Label};
pub use block::{build_block, Block, BlockCache, BlockStep, TaintOp};
pub use cond::Cond;
pub use cpu::Cpu;
pub use error::ArmError;
pub use exec::{step, step_cached, step_decoded, Branch, Effect};
pub use icache::DecodeCache;
pub use insn::{AddrMode4, DpOp, Instr, MemOffset, MemSize, Op2, ShiftKind};
pub use mem::Memory;
pub use reg::Reg;
