//! Sparse paged guest memory.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the guest page size. Shared by the decoded-instruction
/// cache and the emulator's shadow taint memory so all three layers
/// slice the address space identically.
pub const PAGE_SHIFT: u32 = 12;
/// Guest page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Mask selecting the offset-within-page bits of an address.
pub const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Process-global epoch counter: every distinct slot lineage (a fresh
/// `Memory` or a [`Memory::fork`]) draws a unique, nonzero epoch.
static EPOCH_COUNTER: AtomicU64 = AtomicU64::new(0);

fn next_epoch() -> u64 {
    EPOCH_COUNTER.fetch_add(1, Ordering::Relaxed) + 1
}

/// A sparse 32-bit guest address space backed by 4 KiB pages, with a
/// one-entry TLB caching the last page touched (guest access patterns
/// are strongly local, so this removes most hash lookups from the
/// fetch/load/store fast paths — the moral equivalent of QEMU's
/// softmmu TLB).
///
/// Reads of unmapped memory return zero (pages are allocated lazily on
/// write), mirroring a zero-filled anonymous mapping. Little-endian, like
/// the Android/ARM targets NDroid analyzed.
///
/// Pages are `Rc`-shared **copy-on-write**: cloning (or
/// [`fork`](Memory::fork)ing) a `Memory` copies only the page table,
/// and a shared page is duplicated lazily by the first write on either
/// side. A fork is therefore O(mapped pages), not O(address space).
#[derive(Debug)]
pub struct Memory {
    pages: Vec<Rc<[u8; PAGE_SIZE]>>,
    index: HashMap<u32, u32>,
    tlb: Cell<Option<(u32, u32)>>, // (page number, pages[] slot)
    /// Per-page write generation, parallel to `pages`. Bumped on every
    /// write that touches the page; consumers holding derived state
    /// (the decoded-instruction cache) compare against it to detect
    /// self-modifying code. An unmapped page reports generation 0 and
    /// a freshly materialized page starts at 1, so any transition is
    /// observable.
    versions: Vec<u64>,
    /// Slot-lineage epoch. Two `Memory` values agree on what a `pages[]`
    /// slot number means only if they carry the same epoch: `clone`
    /// preserves it (a clone is a faithful copy of the same lineage,
    /// slot-for-slot), while [`fork`](Memory::fork) draws a fresh one so
    /// derived caches pinned to the parent can never be replayed against
    /// a diverged child by mistake (see [`Memory::epoch`]).
    epoch: u64,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

impl Clone for Memory {
    fn clone(&self) -> Memory {
        Memory {
            pages: self.pages.clone(),
            index: self.index.clone(),
            tlb: Cell::new(None),
            versions: self.versions.clone(),
            epoch: self.epoch,
        }
    }
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory {
            pages: Vec::new(),
            index: HashMap::new(),
            tlb: Cell::new(None),
            versions: Vec::new(),
            epoch: next_epoch(),
        }
    }

    /// Copy-on-write fork: shares every mapped page with `self` (an
    /// `Rc` bump per page) and draws a **fresh epoch**, marking the
    /// copy as a new slot lineage. Writes on either side duplicate
    /// only the touched page. Slot numbers and write generations are
    /// carried over verbatim, so caches warmed against the parent can
    /// be explicitly re-bound to the fork's epoch and stay warm.
    pub fn fork(&self) -> Memory {
        let mut m = self.clone();
        m.epoch = next_epoch();
        m
    }

    /// The slot-lineage epoch (nonzero, process-unique). Derived caches
    /// that pin `pages[]` slots (the decode cache, the block cache, the
    /// tracer's handler cache) record the epoch of the `Memory` they
    /// were warmed against and must discard everything when handed a
    /// `Memory` with a different epoch: after a fork diverges, the same
    /// slot number can back a *different guest page* in each lineage,
    /// so a slot-pinned version compare alone would silently validate
    /// stale entries.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of pages currently materialized.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of materialized pages exclusively owned by this `Memory`
    /// (copy-on-write has privatized them). Immediately after a
    /// [`fork`](Memory::fork) this is 0; it grows by one per distinct
    /// page written since. The complement of shared pages — the
    /// fan-out benches report it as "resident pages per fork".
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| Rc::strong_count(p) == 1).count()
    }

    /// Whether the page containing `addr` has been materialized.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.index.contains_key(&(addr >> PAGE_SHIFT))
    }

    #[inline]
    fn slot_of(&self, pageno: u32) -> Option<u32> {
        if let Some((p, slot)) = self.tlb.get() {
            if p == pageno {
                return Some(slot);
            }
        }
        let slot = *self.index.get(&pageno)?;
        self.tlb.set(Some((pageno, slot)));
        Some(slot)
    }

    /// Slot lookup for a *write*: materializes the page if needed and
    /// bumps its write generation (every caller is about to mutate it).
    #[inline]
    fn slot_or_alloc(&mut self, pageno: u32) -> u32 {
        if let Some(slot) = self.slot_of(pageno) {
            self.versions[slot as usize] += 1;
            return slot;
        }
        let slot = self.pages.len() as u32;
        self.pages.push(Rc::new([0u8; PAGE_SIZE]));
        self.versions.push(1);
        self.index.insert(pageno, slot);
        self.tlb.set(Some((pageno, slot)));
        slot
    }

    /// The writable backing array for `pageno`, materializing and
    /// generation-bumping it, and privatizing it first if it is still
    /// CoW-shared with a fork (`Rc::make_mut` — a no-op two-refcount
    /// check when already exclusive).
    #[inline]
    fn page_for_write(&mut self, pageno: u32) -> &mut [u8; PAGE_SIZE] {
        let slot = self.slot_or_alloc(pageno);
        Rc::make_mut(&mut self.pages[slot as usize])
    }

    /// The write generation of the page containing `addr`: 0 for an
    /// unmapped page, otherwise a counter that changes on every write
    /// to the page. Derived caches (decoded instructions) validate
    /// against this instead of hooking the write path.
    #[inline]
    pub fn page_version(&self, addr: u32) -> u64 {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(slot) => self.versions[slot as usize],
            None => 0,
        }
    }

    /// The `pages[]` slot backing `pageno`, if materialized. Slots are
    /// stable for the lifetime of the `Memory` (pages are only ever
    /// appended), so derived caches — the decoded-instruction cache and
    /// the taint tracer's handler-classification cache — may pin a slot
    /// once and then poll [`Memory::version_by_slot`] without touching
    /// the TLB or the page index again. A pinned slot is only
    /// meaningful within one slot lineage — see [`Memory::epoch`].
    #[inline]
    pub fn slot_of_page(&self, pageno: u32) -> Option<u32> {
        self.slot_of(pageno)
    }

    /// The write generation of the page in `slot` (see
    /// [`Memory::slot_of_page`]).
    #[inline]
    pub fn version_by_slot(&self, slot: u32) -> u64 {
        self.versions[slot as usize]
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(slot) => self.pages[slot as usize][(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, materializing the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_for_write(addr >> PAGE_SHIFT)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian 16-bit halfword (no alignment requirement).
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian 16-bit halfword. A halfword straddling a
    /// page boundary bumps the write generation of *both* pages (each
    /// byte goes through the per-page write path).
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let b = value.to_le_bytes();
        self.write_u8(addr, b[0]);
        self.write_u8(addr.wrapping_add(1), b[1]);
    }

    /// Reads a little-endian 32-bit word (no alignment requirement).
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        // Fast path: whole word within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + 4 <= PAGE_SIZE {
            if let Some(slot) = self.slot_of(addr >> PAGE_SHIFT) {
                let page = &self.pages[slot as usize];
                return u32::from_le_bytes([page[off], page[off + 1], page[off + 2], page[off + 3]]);
            }
            return 0;
        }
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian 32-bit word. A word straddling a page
    /// boundary decays to per-byte writes, so the write generation of
    /// *both* touched pages is bumped — derived caches on either side
    /// of the boundary must observe the patch.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let off = (addr & PAGE_MASK) as usize;
        let b = value.to_le_bytes();
        if off + 4 <= PAGE_SIZE {
            self.page_for_write(addr >> PAGE_SHIFT)[off..off + 4].copy_from_slice(&b);
            return;
        }
        for (i, byte) in b.into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), byte);
        }
    }

    /// Reads a little-endian 64-bit doubleword.
    pub fn read_u64(&self, addr: u32) -> u64 {
        (self.read_u32(addr) as u64) | ((self.read_u32(addr.wrapping_add(4)) as u64) << 32)
    }

    /// Writes a little-endian 64-bit doubleword.
    pub fn write_u64(&mut self, addr: u32, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr.wrapping_add(4), (value >> 32) as u32);
    }

    /// Copies `bytes` into guest memory starting at `addr`,
    /// page-sliced (one slot lookup per page, not per byte); every
    /// page the span touches gets its write generation bumped.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let mut i = 0usize;
        while i < bytes.len() {
            let a = addr.wrapping_add(i as u32);
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(bytes.len() - i);
            let page = self.page_for_write(a >> PAGE_SHIFT);
            page[off..off + n].copy_from_slice(&bytes[i..i + n]);
            i += n;
        }
    }

    /// Reads `len` bytes starting at `addr`, page-sliced; unmapped
    /// pages read back as zeroes.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut i = 0usize;
        while i < len {
            let a = addr.wrapping_add(i as u32);
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(len - i);
            if let Some(slot) = self.slot_of(a >> PAGE_SHIFT) {
                out[i..i + n].copy_from_slice(&self.pages[slot as usize][off..off + n]);
            }
            i += n;
        }
        out
    }

    /// Reads a NUL-terminated C string starting at `addr` (scanning at
    /// most 64 KiB to bound runaway reads of corrupt guests).
    pub fn read_cstr(&self, addr: u32) -> Vec<u8> {
        self.read_cstr_bounded(addr, 65536)
    }

    /// Reads a NUL-terminated C string of at most `max_len` bytes,
    /// page-sliced. The scan stops **explicitly** at the first unmapped
    /// page: an unmapped byte reads as zero, which is a terminator, so
    /// a string running into unmapped memory ends at the last mapped
    /// byte (bounded stop — never a panic, never garbage bytes).
    pub fn read_cstr_bounded(&self, addr: u32, max_len: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < max_len {
            let a = addr.wrapping_add(i as u32);
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(max_len - i);
            let Some(slot) = self.slot_of(a >> PAGE_SHIFT) else {
                // Unmapped page boundary: the next byte is a zero fill,
                // i.e. a NUL terminator. Stop at the last mapped byte.
                break;
            };
            let chunk = &self.pages[slot as usize][off..off + n];
            match chunk.iter().position(|&b| b == 0) {
                Some(p) => {
                    out.extend_from_slice(&chunk[..p]);
                    return out;
                }
                None => out.extend_from_slice(chunk),
            }
            i += n;
        }
        out
    }

    /// Writes a NUL-terminated C string.
    pub fn write_cstr(&mut self, addr: u32, s: &[u8]) {
        self.write_bytes(addr, s);
        self.write_u8(addr.wrapping_add(s.len() as u32), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0xdead_beef), 0);
        assert_eq!(m.read_u32(0xdead_beef), 0);
        assert_eq!(m.page_count(), 0);
        assert!(!m.is_mapped(0xdead_beef));
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(0x100, 0xAB);
        assert_eq!(m.read_u8(0x100), 0xAB);
        m.write_u16(0x200, 0xBEEF);
        assert_eq!(m.read_u16(0x200), 0xBEEF);
        m.write_u32(0x300, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x300), 0xDEAD_BEEF);
        m.write_u64(0x400, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x400), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(1), 2);
        assert_eq!(m.read_u8(2), 3);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn cross_page_word_access() {
        let mut m = Memory::new();
        let addr = 0x1000 - 2; // straddles a page boundary
        m.write_u32(addr, 0x1122_3344);
        assert_eq!(m.read_u32(addr), 0x1122_3344);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn straddling_writes_bump_both_page_generations() {
        // Regression for the cross-page invalidation contract: a write
        // that straddles a 4 KiB boundary must bump the generation of
        // BOTH touched pages, or a derived cache holding decodes of the
        // second page would survive the patch.
        let mut m = Memory::new();
        m.write_u8(0x0FFF, 0); // materialize page 0
        m.write_u8(0x1000, 0); // materialize page 1
        let (a0, a1) = (m.page_version(0x0FFF), m.page_version(0x1000));
        m.write_u32(0x0FFE, 0xDDCC_BBAA);
        assert!(m.page_version(0x0FFF) > a0, "u32 straddle bumps first page");
        assert!(m.page_version(0x1000) > a1, "u32 straddle bumps second page");

        let (b0, b1) = (m.page_version(0x1FFF), m.page_version(0x2000));
        m.write_u16(0x1FFF, 0xBEEF);
        assert!(m.page_version(0x1FFF) > b0, "u16 straddle bumps first page");
        assert!(m.page_version(0x2000) > b1, "u16 straddle bumps second page");

        let (c0, c1) = (m.page_version(0x2FFF), m.page_version(0x3000));
        m.write_bytes(0x2FF0, &[7u8; 64]);
        assert!(m.page_version(0x2FFF) > c0, "byte span bumps first page");
        assert!(m.page_version(0x3000) > c1, "byte span bumps second page");
    }

    #[test]
    fn cstr_roundtrip() {
        let mut m = Memory::new();
        m.write_cstr(0x500, b"hello jni");
        assert_eq!(m.read_cstr(0x500), b"hello jni");
        assert_eq!(m.read_u8(0x500 + 9), 0);
    }

    #[test]
    fn cstr_bounded_stops() {
        let mut m = Memory::new();
        m.write_bytes(0x600, &[0x41; 100]);
        assert_eq!(m.read_cstr_bounded(0x600, 10).len(), 10);
    }

    #[test]
    fn cstr_stops_at_unmapped_page_boundary() {
        // An unterminated string running to the very last mapped byte:
        // the scan must stop at the unmapped-page boundary (bounded
        // stop), exactly as if a NUL sat in the zero fill beyond it.
        let mut m = Memory::new();
        let base = 0x7000 - 16; // last 16 bytes of an otherwise empty page
        m.write_bytes(base, &[0x42; 16]); // page 0x7000.. stays unmapped
        assert!(!m.is_mapped(0x7000));
        assert_eq!(m.read_cstr(base), vec![0x42; 16]);
        assert_eq!(m.read_cstr_bounded(base, 1024), vec![0x42; 16]);
        // Starting read in unmapped memory yields an empty string.
        assert_eq!(m.read_cstr(0x7000), b"");
        // Once the next page is mapped with more non-NUL bytes, the
        // same scan continues across the boundary.
        m.write_bytes(0x7000, &[0x43; 8]);
        let mut want = vec![0x42; 16];
        want.extend_from_slice(&[0x43; 8]);
        assert_eq!(m.read_cstr(base), want);
    }

    #[test]
    fn cstr_honors_max_len_across_pages() {
        let mut m = Memory::new();
        m.write_bytes(0x8000 - 8, &[0x41; 64]);
        assert_eq!(m.read_cstr_bounded(0x8000 - 8, 12).len(), 12);
    }

    #[test]
    fn page_versions_track_writes() {
        let mut m = Memory::new();
        assert_eq!(m.page_version(0x5000), 0, "unmapped page is generation 0");
        m.write_u8(0x5000, 1);
        let v1 = m.page_version(0x5000);
        assert!(v1 >= 1, "materialized page has nonzero generation");
        m.write_u32(0x5100, 0xAABBCCDD);
        assert!(m.page_version(0x5000) > v1, "same-page write bumps");
        let other = m.page_version(0x6000);
        m.write_u8(0x5001, 2);
        assert_eq!(m.page_version(0x6000), other, "other pages unaffected");
        // Reads never bump.
        let v = m.page_version(0x5000);
        let _ = m.read_u32(0x5000);
        let _ = m.read_bytes(0x5000, 64);
        assert_eq!(m.page_version(0x5000), v);
    }

    #[test]
    fn bulk_bytes_cross_many_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..3 * PAGE_SIZE + 17).map(|i| (i % 251) as u8).collect();
        m.write_bytes(0x1000 - 7, &data);
        assert_eq!(m.read_bytes(0x1000 - 7, data.len()), data);
        assert_eq!(m.page_count(), 5, "7 bytes + 3 full pages + 10-byte tail");
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x2000 - 100, &data);
        assert_eq!(m.read_bytes(0x2000 - 100, 256), data);
    }

    #[test]
    fn fork_shares_pages_until_written() {
        let mut m = Memory::new();
        m.write_bytes(0x1000, &[0xAA; 3 * PAGE_SIZE]);
        assert_eq!(m.resident_pages(), 3, "unforked memory owns its pages");
        let mut child = m.fork();
        assert_ne!(child.epoch(), m.epoch(), "fork draws a fresh epoch");
        assert_eq!(child.page_count(), 3);
        assert_eq!(child.resident_pages(), 0, "all pages CoW-shared at fork");
        assert_eq!(m.resident_pages(), 0);

        // First write privatizes exactly the touched page, on the
        // writing side only; the other side still sees the old bytes.
        child.write_u8(0x1004, 0xBB);
        assert_eq!(child.resident_pages(), 1);
        assert_eq!(m.resident_pages(), 1, "parent's copy of that page is now exclusive too");
        assert_eq!(child.read_u8(0x1004), 0xBB);
        assert_eq!(m.read_u8(0x1004), 0xAA, "parent unaffected by child write");

        // And symmetrically: parent writes don't reach the child.
        m.write_u8(0x2008, 0xCC);
        assert_eq!(child.read_u8(0x2008), 0xAA);
    }

    #[test]
    fn fork_carries_versions_and_diverges_independently() {
        let mut m = Memory::new();
        m.write_u8(0x3000, 1);
        m.write_u8(0x3001, 2);
        let v = m.page_version(0x3000);
        let child = m.fork();
        assert_eq!(child.page_version(0x3000), v, "generations carried verbatim");

        let mut a = m.fork();
        let mut b = m.fork();
        a.write_u8(0x3002, 3);
        b.write_u8(0x3002, 4);
        assert!(a.page_version(0x3000) > v);
        assert!(b.page_version(0x3000) > v);
        assert_eq!(a.read_u8(0x3002), 3);
        assert_eq!(b.read_u8(0x3002), 4);
        assert_eq!(m.read_u8(0x3002), 0, "siblings never alias");
    }

    #[test]
    fn clone_preserves_epoch_fork_does_not() {
        let m = Memory::new();
        assert_ne!(m.epoch(), 0, "epochs are nonzero");
        let c = m.clone();
        assert_eq!(c.epoch(), m.epoch(), "a clone stays in the lineage");
        let f = m.fork();
        assert_ne!(f.epoch(), m.epoch());
        assert_ne!(Memory::new().epoch(), m.epoch(), "fresh memories get fresh epochs");
    }

    #[test]
    fn new_page_after_fork_is_private() {
        let mut m = Memory::new();
        m.write_u8(0x1000, 1);
        let mut child = m.fork();
        child.write_u8(0x9000, 9); // page the parent never mapped
        assert_eq!(child.page_count(), 2);
        assert_eq!(m.page_count(), 1);
        assert_eq!(m.read_u8(0x9000), 0);
        assert_eq!(child.resident_pages(), 1);
    }
}
