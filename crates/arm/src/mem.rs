//! Sparse paged guest memory.

use std::cell::Cell;
use std::collections::HashMap;

/// log2 of the guest page size. Shared by the decoded-instruction
/// cache and the emulator's shadow taint memory so all three layers
/// slice the address space identically.
pub const PAGE_SHIFT: u32 = 12;
/// Guest page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Mask selecting the offset-within-page bits of an address.
pub const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// A sparse 32-bit guest address space backed by 4 KiB pages, with a
/// one-entry TLB caching the last page touched (guest access patterns
/// are strongly local, so this removes most hash lookups from the
/// fetch/load/store fast paths — the moral equivalent of QEMU's
/// softmmu TLB).
///
/// Reads of unmapped memory return zero (pages are allocated lazily on
/// write), mirroring a zero-filled anonymous mapping. Little-endian, like
/// the Android/ARM targets NDroid analyzed.
#[derive(Debug, Default)]
pub struct Memory {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    index: HashMap<u32, u32>,
    tlb: Cell<Option<(u32, u32)>>, // (page number, pages[] slot)
    /// Per-page write generation, parallel to `pages`. Bumped on every
    /// write that touches the page; consumers holding derived state
    /// (the decoded-instruction cache) compare against it to detect
    /// self-modifying code. An unmapped page reports generation 0 and
    /// a freshly materialized page starts at 1, so any transition is
    /// observable.
    versions: Vec<u64>,
}

impl Clone for Memory {
    fn clone(&self) -> Memory {
        Memory {
            pages: self.pages.clone(),
            index: self.index.clone(),
            tlb: Cell::new(None),
            versions: self.versions.clone(),
        }
    }
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of pages currently materialized.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Whether the page containing `addr` has been materialized.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.index.contains_key(&(addr >> PAGE_SHIFT))
    }

    #[inline]
    fn slot_of(&self, pageno: u32) -> Option<u32> {
        if let Some((p, slot)) = self.tlb.get() {
            if p == pageno {
                return Some(slot);
            }
        }
        let slot = *self.index.get(&pageno)?;
        self.tlb.set(Some((pageno, slot)));
        Some(slot)
    }

    /// Slot lookup for a *write*: materializes the page if needed and
    /// bumps its write generation (every caller is about to mutate it).
    #[inline]
    fn slot_or_alloc(&mut self, pageno: u32) -> u32 {
        if let Some(slot) = self.slot_of(pageno) {
            self.versions[slot as usize] += 1;
            return slot;
        }
        let slot = self.pages.len() as u32;
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        self.versions.push(1);
        self.index.insert(pageno, slot);
        self.tlb.set(Some((pageno, slot)));
        slot
    }

    /// The write generation of the page containing `addr`: 0 for an
    /// unmapped page, otherwise a counter that changes on every write
    /// to the page. Derived caches (decoded instructions) validate
    /// against this instead of hooking the write path.
    #[inline]
    pub fn page_version(&self, addr: u32) -> u64 {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(slot) => self.versions[slot as usize],
            None => 0,
        }
    }

    /// The `pages[]` slot backing `pageno`, if materialized. Slots are
    /// stable for the lifetime of the `Memory` (pages are only ever
    /// appended), so derived caches — the decoded-instruction cache and
    /// the taint tracer's handler-classification cache — may pin a slot
    /// once and then poll [`Memory::version_by_slot`] without touching
    /// the TLB or the page index again.
    #[inline]
    pub fn slot_of_page(&self, pageno: u32) -> Option<u32> {
        self.slot_of(pageno)
    }

    /// The write generation of the page in `slot` (see
    /// [`Memory::slot_of_page`]).
    #[inline]
    pub fn version_by_slot(&self, slot: u32) -> u64 {
        self.versions[slot as usize]
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(slot) => self.pages[slot as usize][(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, materializing the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let slot = self.slot_or_alloc(addr >> PAGE_SHIFT);
        self.pages[slot as usize][(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian 16-bit halfword (no alignment requirement).
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian 16-bit halfword.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let b = value.to_le_bytes();
        self.write_u8(addr, b[0]);
        self.write_u8(addr.wrapping_add(1), b[1]);
    }

    /// Reads a little-endian 32-bit word (no alignment requirement).
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        // Fast path: whole word within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + 4 <= PAGE_SIZE {
            if let Some(slot) = self.slot_of(addr >> PAGE_SHIFT) {
                let page = &self.pages[slot as usize];
                return u32::from_le_bytes([page[off], page[off + 1], page[off + 2], page[off + 3]]);
            }
            return 0;
        }
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let off = (addr & PAGE_MASK) as usize;
        let b = value.to_le_bytes();
        if off + 4 <= PAGE_SIZE {
            let slot = self.slot_or_alloc(addr >> PAGE_SHIFT);
            self.pages[slot as usize][off..off + 4].copy_from_slice(&b);
            return;
        }
        for (i, byte) in b.into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), byte);
        }
    }

    /// Reads a little-endian 64-bit doubleword.
    pub fn read_u64(&self, addr: u32) -> u64 {
        (self.read_u32(addr) as u64) | ((self.read_u32(addr.wrapping_add(4)) as u64) << 32)
    }

    /// Writes a little-endian 64-bit doubleword.
    pub fn write_u64(&mut self, addr: u32, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr.wrapping_add(4), (value >> 32) as u32);
    }

    /// Copies `bytes` into guest memory starting at `addr`,
    /// page-sliced (one slot lookup per page, not per byte).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let mut i = 0usize;
        while i < bytes.len() {
            let a = addr.wrapping_add(i as u32);
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(bytes.len() - i);
            let slot = self.slot_or_alloc(a >> PAGE_SHIFT) as usize;
            self.pages[slot][off..off + n].copy_from_slice(&bytes[i..i + n]);
            i += n;
        }
    }

    /// Reads `len` bytes starting at `addr`, page-sliced; unmapped
    /// pages read back as zeroes.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut i = 0usize;
        while i < len {
            let a = addr.wrapping_add(i as u32);
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(len - i);
            if let Some(slot) = self.slot_of(a >> PAGE_SHIFT) {
                out[i..i + n].copy_from_slice(&self.pages[slot as usize][off..off + n]);
            }
            i += n;
        }
        out
    }

    /// Reads a NUL-terminated C string starting at `addr` (at most
    /// `max_len` bytes, defaulting the scan to 64 KiB to bound runaway
    /// reads of corrupt guests).
    pub fn read_cstr(&self, addr: u32) -> Vec<u8> {
        self.read_cstr_bounded(addr, 65536)
    }

    /// Reads a NUL-terminated C string of at most `max_len` bytes.
    pub fn read_cstr_bounded(&self, addr: u32, max_len: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..max_len {
            let b = self.read_u8(addr.wrapping_add(i as u32));
            if b == 0 {
                break;
            }
            out.push(b);
        }
        out
    }

    /// Writes a NUL-terminated C string.
    pub fn write_cstr(&mut self, addr: u32, s: &[u8]) {
        self.write_bytes(addr, s);
        self.write_u8(addr.wrapping_add(s.len() as u32), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0xdead_beef), 0);
        assert_eq!(m.read_u32(0xdead_beef), 0);
        assert_eq!(m.page_count(), 0);
        assert!(!m.is_mapped(0xdead_beef));
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(0x100, 0xAB);
        assert_eq!(m.read_u8(0x100), 0xAB);
        m.write_u16(0x200, 0xBEEF);
        assert_eq!(m.read_u16(0x200), 0xBEEF);
        m.write_u32(0x300, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x300), 0xDEAD_BEEF);
        m.write_u64(0x400, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x400), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(1), 2);
        assert_eq!(m.read_u8(2), 3);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn cross_page_word_access() {
        let mut m = Memory::new();
        let addr = 0x1000 - 2; // straddles a page boundary
        m.write_u32(addr, 0x1122_3344);
        assert_eq!(m.read_u32(addr), 0x1122_3344);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn cstr_roundtrip() {
        let mut m = Memory::new();
        m.write_cstr(0x500, b"hello jni");
        assert_eq!(m.read_cstr(0x500), b"hello jni");
        assert_eq!(m.read_u8(0x500 + 9), 0);
    }

    #[test]
    fn cstr_bounded_stops() {
        let mut m = Memory::new();
        m.write_bytes(0x600, &[0x41; 100]);
        assert_eq!(m.read_cstr_bounded(0x600, 10).len(), 10);
    }

    #[test]
    fn page_versions_track_writes() {
        let mut m = Memory::new();
        assert_eq!(m.page_version(0x5000), 0, "unmapped page is generation 0");
        m.write_u8(0x5000, 1);
        let v1 = m.page_version(0x5000);
        assert!(v1 >= 1, "materialized page has nonzero generation");
        m.write_u32(0x5100, 0xAABBCCDD);
        assert!(m.page_version(0x5000) > v1, "same-page write bumps");
        let other = m.page_version(0x6000);
        m.write_u8(0x5001, 2);
        assert_eq!(m.page_version(0x6000), other, "other pages unaffected");
        // Reads never bump.
        let v = m.page_version(0x5000);
        let _ = m.read_u32(0x5000);
        let _ = m.read_bytes(0x5000, 64);
        assert_eq!(m.page_version(0x5000), v);
    }

    #[test]
    fn bulk_bytes_cross_many_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..3 * PAGE_SIZE + 17).map(|i| (i % 251) as u8).collect();
        m.write_bytes(0x1000 - 7, &data);
        assert_eq!(m.read_bytes(0x1000 - 7, data.len()), data);
        assert_eq!(m.page_count(), 5, "7 bytes + 3 full pages + 10-byte tail");
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x2000 - 100, &data);
        assert_eq!(m.read_bytes(0x2000 - 100, 256), data);
    }
}
