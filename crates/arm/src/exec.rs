//! The instruction interpreter.
//!
//! [`step`] fetches, decodes and executes one instruction, returning an
//! [`Effect`] record describing what happened (condition outcome, any
//! branch, the effective memory address). NDroid's instruction tracer
//! consumes `(Instr, Effect)` pairs to drive taint propagation without
//! the executor knowing anything about taint — which is exactly what
//! lets the benchmarks compare instrumented vs. vanilla execution.

use crate::cpu::Cpu;
use crate::decode::decode_arm;
use crate::error::ArmError;
use crate::icache::DecodeCache;
use crate::insn::{AddrMode4, DpOp, Instr, MemOffset, MemSize, Op2, ShiftKind, VfpOp, VfpPrec};
use crate::mem::Memory;
use crate::reg::Reg;
use crate::thumb::decode_thumb;

/// A control-flow transfer taken by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Branch {
    /// Address of the branch instruction (the paper's `I_from`).
    pub from: u32,
    /// Branch target (the paper's `I_to`).
    pub to: u32,
    /// Whether the link register was written (call-like transfer).
    pub link: bool,
}

/// What one [`step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effect {
    /// The decoded instruction.
    pub instr: Instr,
    /// Address the instruction was fetched from.
    pub pc: u32,
    /// Instruction size in bytes (4 for ARM, 2 or 4 for Thumb).
    pub size: u8,
    /// Whether the condition passed and the instruction executed.
    pub executed: bool,
    /// Control transfer taken, if any.
    pub branch: Option<Branch>,
    /// Effective start address for memory-accessing instructions.
    pub addr: Option<u32>,
    /// `SVC` immediate, if the instruction was a supervisor call.
    pub svc: Option<u32>,
}

/// Fetches, decodes and executes one instruction at the current PC.
///
/// # Errors
///
/// Propagates decode errors ([`ArmError::UndefinedInstruction`]) and
/// execution errors such as [`ArmError::Unsupported`].
pub fn step(cpu: &mut Cpu, mem: &mut Memory) -> Result<Effect, ArmError> {
    let pc = cpu.pc();
    let (instr, size) = fetch_decode(cpu, mem, pc)?;
    step_decoded(cpu, mem, instr, size)
}

/// Like [`step`], but consults (and fills) a [`DecodeCache`] instead of
/// re-decoding every fetch. The cache validates itself against the
/// memory page's write generation, so self-modifying code is re-decoded
/// transparently; a disabled cache degrades to plain [`step`].
///
/// # Errors
///
/// Same as [`step`].
pub fn step_cached(
    cpu: &mut Cpu,
    mem: &mut Memory,
    icache: &mut DecodeCache,
) -> Result<Effect, ArmError> {
    if !icache.enabled {
        return step(cpu, mem);
    }
    let pc = cpu.pc();
    let (instr, size) = match icache.lookup(mem, pc, cpu.thumb) {
        Some(hit) => hit,
        None => {
            let (instr, size) = fetch_decode(cpu, mem, pc)?;
            icache.insert(mem, pc, cpu.thumb, instr, size);
            (instr, size)
        }
    };
    step_decoded(cpu, mem, instr, size)
}

#[inline]
fn fetch_decode(cpu: &Cpu, mem: &Memory, pc: u32) -> Result<(Instr, u8), ArmError> {
    decode_at(mem, pc, cpu.thumb)
}

/// Decodes the instruction at `pc` in the given instruction set,
/// returning it together with its size in bytes. This is the fetch path
/// [`step`] uses, exposed so block discovery can decode ahead of the
/// program counter.
///
/// # Errors
///
/// [`ArmError::UndefinedInstruction`] for encodings outside the
/// supported subset.
#[inline]
pub fn decode_at(mem: &Memory, pc: u32, thumb: bool) -> Result<(Instr, u8), ArmError> {
    if thumb {
        decode_thumb(mem, pc)
    } else {
        Ok((decode_arm(mem.read_u32(pc), pc)?, 4))
    }
}

/// Executes an already-decoded instruction at the current PC (the
/// shared back half of [`step`] and [`step_cached`]).
///
/// # Errors
///
/// Execution errors such as [`ArmError::Unsupported`].
pub fn step_decoded(
    cpu: &mut Cpu,
    mem: &mut Memory,
    instr: Instr,
    size: u8,
) -> Result<Effect, ArmError> {
    let pc = cpu.pc();
    cpu.insn_count += 1;

    let mut effect = Effect {
        instr,
        pc,
        size,
        executed: false,
        branch: None,
        addr: None,
        svc: None,
    };

    if !cpu.cond_passes(instr.cond()) {
        cpu.regs[15] = pc.wrapping_add(size as u32);
        return Ok(effect);
    }
    effect.executed = true;

    let was_thumb = cpu.thumb;
    execute(cpu, mem, &instr, pc, size, &mut effect)?;

    if effect.branch.is_some() {
        // Explicit branch: the executor already set the PC (possibly to
        // the same address, e.g. `b .`).
    } else if cpu.regs[15] == pc && cpu.thumb == was_thumb {
        // No branch: fall through.
        cpu.regs[15] = pc.wrapping_add(size as u32);
    } else {
        // PC changed through a register write (e.g. `mov pc, lr`,
        // `pop {…, pc}`): synthesize the branch record.
        effect.branch = Some(Branch {
            from: pc,
            to: cpu.regs[15],
            link: false,
        });
    }
    Ok(effect)
}

fn execute(
    cpu: &mut Cpu,
    mem: &mut Memory,
    instr: &Instr,
    pc: u32,
    size: u8,
    effect: &mut Effect,
) -> Result<(), ArmError> {
    match *instr {
        Instr::Dp {
            op, s, rd, rn, op2, ..
        } => exec_dp(cpu, op, s, rd, rn, op2),
        Instr::Mul {
            s, rd, rm, rs, acc, ..
        } => {
            let mut result = cpu.read(rm).wrapping_mul(cpu.read(rs));
            if let Some(ra) = acc {
                result = result.wrapping_add(cpu.read(ra));
            }
            cpu.write(rd, result);
            if s {
                cpu.n = result & 0x8000_0000 != 0;
                cpu.z = result == 0;
            }
            Ok(())
        }
        Instr::Mem {
            load,
            size: msize,
            rd,
            rn,
            offset,
            pre,
            up,
            writeback,
            ..
        } => {
            let mut base = cpu.read(rn);
            if rn == Reg::PC && cpu.thumb {
                base &= !3; // Thumb PC-relative loads use the aligned PC.
            }
            let off = match offset {
                MemOffset::Imm(i) => i as u32,
                MemOffset::Reg { rm, kind, amount } => {
                    shift_value(cpu.read(rm), kind, amount as u32, cpu.c).0
                }
            };
            let updated = if up {
                base.wrapping_add(off)
            } else {
                base.wrapping_sub(off)
            };
            let addr = if pre { updated } else { base };
            effect.addr = Some(addr);
            if load {
                let value = match msize {
                    MemSize::Word => mem.read_u32(addr),
                    MemSize::Byte => mem.read_u8(addr) as u32,
                    MemSize::Half => mem.read_u16(addr) as u32,
                    MemSize::SignedByte => mem.read_u8(addr) as i8 as i32 as u32,
                    MemSize::SignedHalf => mem.read_u16(addr) as i16 as i32 as u32,
                };
                if writeback || !pre {
                    cpu.write(rn, updated);
                }
                cpu.write(rd, value);
            } else {
                let value = cpu.read(rd);
                match msize {
                    MemSize::Word => mem.write_u32(addr, value),
                    MemSize::Byte => mem.write_u8(addr, value as u8),
                    MemSize::Half | MemSize::SignedHalf => mem.write_u16(addr, value as u16),
                    MemSize::SignedByte => {
                        return Err(ArmError::Unsupported {
                            addr: pc,
                            what: "signed byte store",
                        })
                    }
                }
                if writeback || !pre {
                    cpu.write(rn, updated);
                }
            }
            Ok(())
        }
        Instr::MemMulti {
            load,
            rn,
            mode,
            writeback,
            regs,
            ..
        } => {
            let base = cpu.read(rn);
            let n = regs.len();
            let start = match mode {
                AddrMode4::Ia => base,
                AddrMode4::Ib => base.wrapping_add(4),
                AddrMode4::Da => base.wrapping_sub(4 * n).wrapping_add(4),
                AddrMode4::Db => base.wrapping_sub(4 * n),
            };
            effect.addr = Some(start);
            let final_base = match mode {
                AddrMode4::Ia | AddrMode4::Ib => base.wrapping_add(4 * n),
                AddrMode4::Da | AddrMode4::Db => base.wrapping_sub(4 * n),
            };
            if load {
                if writeback {
                    cpu.write(rn, final_base);
                }
                for (i, r) in regs.iter().enumerate() {
                    let value = mem.read_u32(start.wrapping_add(4 * i as u32));
                    if r == Reg::PC {
                        // Interworking return (e.g. `pop {pc}`).
                        cpu.thumb = value & 1 != 0;
                        cpu.regs[15] = value & !1;
                    } else {
                        cpu.write(r, value);
                    }
                }
            } else {
                for (i, r) in regs.iter().enumerate() {
                    mem.write_u32(start.wrapping_add(4 * i as u32), cpu.read(r));
                }
                if writeback {
                    cpu.write(rn, final_base);
                }
            }
            Ok(())
        }
        Instr::Branch { link, offset, .. } => {
            let ahead = if cpu.thumb { 4 } else { 8 };
            let target = pc.wrapping_add(ahead).wrapping_add(offset as u32);
            if link {
                let ret = pc.wrapping_add(size as u32) | cpu.thumb as u32;
                cpu.regs[14] = ret;
            }
            cpu.regs[15] = target;
            effect.branch = Some(Branch {
                from: pc,
                to: target,
                link,
            });
            Ok(())
        }
        Instr::BranchExchange { link, rm, .. } => {
            let target = cpu.read(rm);
            if link {
                cpu.regs[14] = pc.wrapping_add(size as u32) | cpu.thumb as u32;
            }
            cpu.thumb = target & 1 != 0;
            cpu.regs[15] = target & !1;
            effect.branch = Some(Branch {
                from: pc,
                to: target & !1,
                link,
            });
            Ok(())
        }
        Instr::Svc { imm, .. } => {
            effect.svc = Some(imm);
            Ok(())
        }
        Instr::Vfp {
            op,
            prec,
            fd,
            fn_,
            fm,
            ..
        } => {
            match prec {
                VfpPrec::F32 => {
                    let a = cpu.read_s(fn_);
                    let b = cpu.read_s(fm);
                    match op {
                        VfpOp::Add => cpu.write_s(fd, a + b),
                        VfpOp::Sub => cpu.write_s(fd, a - b),
                        VfpOp::Mul => cpu.write_s(fd, a * b),
                        VfpOp::Div => cpu.write_s(fd, a / b),
                        VfpOp::Mov => {
                            let v = cpu.read_s(fm);
                            cpu.write_s(fd, v);
                        }
                        VfpOp::Cmp => {
                            let x = cpu.read_s(fd);
                            set_fp_flags(cpu, x as f64, b as f64);
                        }
                    }
                }
                VfpPrec::F64 => {
                    let a = cpu.read_d(fn_);
                    let b = cpu.read_d(fm);
                    match op {
                        VfpOp::Add => cpu.write_d(fd, a + b),
                        VfpOp::Sub => cpu.write_d(fd, a - b),
                        VfpOp::Mul => cpu.write_d(fd, a * b),
                        VfpOp::Div => cpu.write_d(fd, a / b),
                        VfpOp::Mov => {
                            let v = cpu.read_d(fm);
                            cpu.write_d(fd, v);
                        }
                        VfpOp::Cmp => {
                            let x = cpu.read_d(fd);
                            set_fp_flags(cpu, x, b);
                        }
                    }
                }
            }
            Ok(())
        }
        Instr::VfpMem {
            load,
            prec,
            fd,
            rn,
            offset,
            up,
            ..
        } => {
            let base = cpu.read(rn);
            let addr = if up {
                base.wrapping_add(offset as u32)
            } else {
                base.wrapping_sub(offset as u32)
            };
            effect.addr = Some(addr);
            match (load, prec) {
                (true, VfpPrec::F32) => {
                    let v = mem.read_u32(addr);
                    cpu.vfp[(fd & 31) as usize] = v;
                }
                (true, VfpPrec::F64) => {
                    let v = mem.read_u64(addr);
                    cpu.write_d(fd, f64::from_bits(v));
                }
                (false, VfpPrec::F32) => mem.write_u32(addr, cpu.vfp[(fd & 31) as usize]),
                (false, VfpPrec::F64) => mem.write_u64(addr, cpu.read_d(fd).to_bits()),
            }
            Ok(())
        }
        Instr::VfpMrs { .. } => Ok(()), // flags already live in the CPSR model
    }
}

/// Applies the IEEE comparison result to the CPSR flags the way
/// `VCMP` + `VMRS` does.
fn set_fp_flags(cpu: &mut Cpu, a: f64, b: f64) {
    if a.is_nan() || b.is_nan() {
        (cpu.n, cpu.z, cpu.c, cpu.v) = (false, false, true, true);
    } else if a == b {
        (cpu.n, cpu.z, cpu.c, cpu.v) = (false, true, true, false);
    } else if a < b {
        (cpu.n, cpu.z, cpu.c, cpu.v) = (true, false, false, false);
    } else {
        (cpu.n, cpu.z, cpu.c, cpu.v) = (false, false, true, false);
    }
}

/// Barrel shifter: returns (value, carry_out).
fn shift_value(value: u32, kind: ShiftKind, amount: u32, carry_in: bool) -> (u32, bool) {
    if amount == 0 {
        return (value, carry_in);
    }
    match kind {
        ShiftKind::Lsl => {
            if amount < 32 {
                (value << amount, value & (1 << (32 - amount)) != 0)
            } else if amount == 32 {
                (0, value & 1 != 0)
            } else {
                (0, false)
            }
        }
        ShiftKind::Lsr => {
            if amount < 32 {
                (value >> amount, value & (1 << (amount - 1)) != 0)
            } else if amount == 32 {
                (0, value & 0x8000_0000 != 0)
            } else {
                (0, false)
            }
        }
        ShiftKind::Asr => {
            if amount < 32 {
                (
                    ((value as i32) >> amount) as u32,
                    value & (1 << (amount - 1)) != 0,
                )
            } else {
                let fill = if value & 0x8000_0000 != 0 { u32::MAX } else { 0 };
                (fill, value & 0x8000_0000 != 0)
            }
        }
        ShiftKind::Ror => {
            let amt = amount % 32;
            if amt == 0 {
                (value, value & 0x8000_0000 != 0)
            } else {
                let r = value.rotate_right(amt);
                (r, r & 0x8000_0000 != 0)
            }
        }
    }
}

fn exec_dp(cpu: &mut Cpu, op: DpOp, s: bool, rd: Reg, rn: Reg, op2: Op2) -> Result<(), ArmError> {
    let (b, shifter_carry) = match op2 {
        Op2::Imm { imm8, rot4 } => {
            let v = Op2::imm_value(imm8, rot4);
            let c = if rot4 == 0 {
                cpu.c
            } else {
                v & 0x8000_0000 != 0
            };
            (v, c)
        }
        Op2::RegShiftImm { rm, kind, amount } => {
            shift_value(cpu.read(rm), kind, amount as u32, cpu.c)
        }
        Op2::RegShiftReg { rm, kind, rs } => {
            let amount = cpu.read(rs) & 0xFF;
            shift_value(cpu.read(rm), kind, amount, cpu.c)
        }
    };
    let a = cpu.read(rn);
    let cin = cpu.c as u32;

    enum Flags {
        Logical,
        Add(u32, u32, u32),
        Sub(u32, u32, u32),
    }
    let (result, fl) = match op {
        DpOp::And | DpOp::Tst => (a & b, Flags::Logical),
        DpOp::Eor | DpOp::Teq => (a ^ b, Flags::Logical),
        DpOp::Orr => (a | b, Flags::Logical),
        DpOp::Bic => (a & !b, Flags::Logical),
        DpOp::Mov => (b, Flags::Logical),
        DpOp::Mvn => (!b, Flags::Logical),
        DpOp::Add | DpOp::Cmn => (a.wrapping_add(b), Flags::Add(a, b, 0)),
        DpOp::Adc => (a.wrapping_add(b).wrapping_add(cin), Flags::Add(a, b, cin)),
        DpOp::Sub | DpOp::Cmp => (a.wrapping_sub(b), Flags::Sub(a, b, 0)),
        DpOp::Sbc => (
            a.wrapping_sub(b).wrapping_sub(1 - cin),
            Flags::Sub(a, b, 1 - cin),
        ),
        DpOp::Rsb => (b.wrapping_sub(a), Flags::Sub(b, a, 0)),
        DpOp::Rsc => (
            b.wrapping_sub(a).wrapping_sub(1 - cin),
            Flags::Sub(b, a, 1 - cin),
        ),
    };

    if s || op.is_compare() {
        cpu.n = result & 0x8000_0000 != 0;
        cpu.z = result == 0;
        match fl {
            Flags::Logical => cpu.c = shifter_carry,
            Flags::Add(x, y, c) => {
                let wide = x as u64 + y as u64 + c as u64;
                cpu.c = wide > u32::MAX as u64;
                cpu.v = ((x ^ result) & (y ^ result)) & 0x8000_0000 != 0;
            }
            Flags::Sub(x, y, borrow) => {
                let wide = (x as u64).wrapping_sub(y as u64).wrapping_sub(borrow as u64);
                cpu.c = wide <= u32::MAX as u64; // C = NOT borrow
                cpu.v = ((x ^ y) & (x ^ result)) & 0x8000_0000 != 0;
            }
        }
    }
    if !op.is_compare() {
        cpu.write(rd, result);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::cond::Cond;
    use crate::reg::RegList;

    fn run(asm: Assembler, setup: impl FnOnce(&mut Cpu, &mut Memory)) -> (Cpu, Memory) {
        let base = asm.base();
        let code = asm.assemble().expect("assemble");
        let mut mem = Memory::new();
        mem.write_bytes(base, &code.bytes);
        let mut cpu = Cpu::new();
        cpu.set_pc(base);
        cpu.regs[13] = 0x8000;
        cpu.regs[14] = 0xFFFF_FF00;
        setup(&mut cpu, &mut mem);
        let mut steps = 0;
        while cpu.pc() != 0xFFFF_FF00 {
            step(&mut cpu, &mut mem).expect("step");
            steps += 1;
            assert!(steps < 100_000, "runaway program");
        }
        (cpu, mem)
    }

    #[test]
    fn arithmetic_program() {
        let mut asm = Assembler::new(0x1000);
        asm.mov_imm(Reg::R0, 10).unwrap();
        asm.mov_imm(Reg::R1, 32).unwrap();
        asm.add(Reg::R2, Reg::R0, Reg::R1);
        asm.sub_imm(Reg::R2, Reg::R2, 2).unwrap();
        asm.mul(Reg::R3, Reg::R2, Reg::R0);
        asm.bx(Reg::LR);
        let (cpu, _) = run(asm, |_, _| {});
        assert_eq!(cpu.regs[2], 40);
        assert_eq!(cpu.regs[3], 400);
    }

    #[test]
    fn loop_with_branch() {
        // Sum 1..=5 using a countdown loop.
        let mut asm = Assembler::new(0x1000);
        let top = asm.label();
        asm.mov_imm(Reg::R0, 0).unwrap();
        asm.mov_imm(Reg::R1, 5).unwrap();
        asm.bind(top).unwrap();
        asm.add(Reg::R0, Reg::R0, Reg::R1);
        asm.subs_imm(Reg::R1, Reg::R1, 1).unwrap();
        asm.b_cond(Cond::Ne, top);
        asm.bx(Reg::LR);
        let (cpu, _) = run(asm, |_, _| {});
        assert_eq!(cpu.regs[0], 15);
    }

    #[test]
    fn memory_load_store() {
        let mut asm = Assembler::new(0x1000);
        asm.mov_imm(Reg::R1, 0x4000).unwrap();
        asm.mov_imm(Reg::R0, 0xAB).unwrap();
        asm.strb(Reg::R0, Reg::R1, 0);
        asm.ldrb(Reg::R2, Reg::R1, 0);
        asm.str(Reg::R0, Reg::R1, 4);
        asm.ldr(Reg::R3, Reg::R1, 4);
        asm.bx(Reg::LR);
        let (cpu, mem) = run(asm, |_, _| {});
        assert_eq!(cpu.regs[2], 0xAB);
        assert_eq!(cpu.regs[3], 0xAB);
        assert_eq!(mem.read_u8(0x4000), 0xAB);
        assert_eq!(mem.read_u32(0x4004), 0xAB);
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut asm = Assembler::new(0x1000);
        asm.mov_imm(Reg::R4, 0x11).unwrap();
        asm.mov_imm(Reg::R5, 0x22).unwrap();
        asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
        asm.mov_imm(Reg::R4, 0).unwrap();
        asm.mov_imm(Reg::R5, 0).unwrap();
        asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
        let (cpu, _) = run(asm, |_, _| {});
        assert_eq!(cpu.regs[4], 0x11);
        assert_eq!(cpu.regs[5], 0x22);
        assert_eq!(cpu.sp(), 0x8000);
    }

    #[test]
    fn bl_sets_lr_and_returns() {
        let mut asm = Assembler::new(0x1000);
        let func = asm.label();
        let done = asm.label();
        asm.mov(Reg::R4, Reg::LR); // save the outer return address
        asm.mov_imm(Reg::R0, 1).unwrap();
        asm.bl(func);
        asm.b(done);
        asm.bind(func).unwrap();
        asm.add_imm(Reg::R0, Reg::R0, 41).unwrap();
        asm.bx(Reg::LR);
        asm.bind(done).unwrap();
        asm.bx(Reg::R4);
        let (cpu, _) = run(asm, |_, _| {});
        assert_eq!(cpu.regs[0], 42);
    }

    #[test]
    fn conditional_execution_skips() {
        let mut asm = Assembler::new(0x1000);
        asm.mov_imm(Reg::R0, 5).unwrap();
        asm.cmp_imm(Reg::R0, 5).unwrap();
        asm.emit(Instr::Dp {
            cond: Cond::Ne, // skipped: flags say equal
            op: DpOp::Mov,
            s: false,
            rd: Reg::R1,
            rn: Reg::R0,
            op2: Op2::encode_imm(99).unwrap(),
        });
        asm.emit(Instr::Dp {
            cond: Cond::Eq, // taken
            op: DpOp::Mov,
            s: false,
            rd: Reg::R2,
            rn: Reg::R0,
            op2: Op2::encode_imm(7).unwrap(),
        });
        asm.bx(Reg::LR);
        let (cpu, _) = run(asm, |_, _| {});
        assert_eq!(cpu.regs[1], 0);
        assert_eq!(cpu.regs[2], 7);
    }

    #[test]
    fn flags_from_subtraction() {
        let mut asm = Assembler::new(0x1000);
        asm.cmp_imm(Reg::R0, 1).unwrap(); // 0 - 1: borrow, negative
        asm.bx(Reg::LR);
        let (cpu, _) = run(asm, |_, _| {});
        assert!(cpu.n);
        assert!(!cpu.z);
        assert!(!cpu.c); // borrow occurred
    }

    #[test]
    fn shifted_operand() {
        let mut asm = Assembler::new(0x1000);
        asm.mov_imm(Reg::R0, 3).unwrap();
        asm.emit(Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: false,
            rd: Reg::R1,
            rn: Reg::R0,
            op2: Op2::RegShiftImm {
                rm: Reg::R0,
                kind: ShiftKind::Lsl,
                amount: 4,
            },
        });
        asm.bx(Reg::LR);
        let (cpu, _) = run(asm, |_, _| {});
        assert_eq!(cpu.regs[1], 48);
    }

    #[test]
    fn effect_records_memory_address() {
        let mut mem = Memory::new();
        let word = crate::encode::encode(&Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(8),
            pre: true,
            up: true,
            writeback: false,
        })
        .unwrap();
        mem.write_u32(0x1000, word);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x1000);
        cpu.regs[1] = 0x5000;
        let eff = step(&mut cpu, &mut mem).unwrap();
        assert_eq!(eff.addr, Some(0x5008));
        assert!(eff.executed);
        assert!(eff.branch.is_none());
        assert_eq!(eff.size, 4);
    }

    #[test]
    fn svc_reports_selector() {
        let mut mem = Memory::new();
        let word = crate::encode::encode(&Instr::Svc {
            cond: Cond::Al,
            imm: 0x17,
        })
        .unwrap();
        mem.write_u32(0x1000, word);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x1000);
        let eff = step(&mut cpu, &mut mem).unwrap();
        assert_eq!(eff.svc, Some(0x17));
        assert_eq!(cpu.pc(), 0x1004);
    }

    #[test]
    fn vfp_double_arithmetic() {
        let mut asm = Assembler::new(0x1000);
        asm.vldr_d(0, Reg::R1, 0);
        asm.vldr_d(1, Reg::R1, 8);
        asm.vadd_d(2, 0, 1);
        asm.vmul_d(3, 0, 1);
        asm.vdiv_d(4, 0, 1);
        asm.vstr_d(2, Reg::R1, 16);
        asm.bx(Reg::LR);
        let (cpu, mem) = run(asm, |cpu, mem| {
            cpu.regs[1] = 0x6000;
            mem.write_u64(0x6000, 6.0f64.to_bits());
            mem.write_u64(0x6008, 1.5f64.to_bits());
        });
        assert_eq!(cpu.read_d(2), 7.5);
        assert_eq!(cpu.read_d(3), 9.0);
        assert_eq!(cpu.read_d(4), 4.0);
        assert_eq!(f64::from_bits(mem.read_u64(0x6010)), 7.5);
    }

    #[test]
    fn mov_pc_synthesizes_branch() {
        let mut mem = Memory::new();
        let word = crate::encode::encode(&Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: false,
            rd: Reg::PC,
            rn: Reg::R0,
            op2: Op2::reg(Reg::R3),
        })
        .unwrap();
        mem.write_u32(0x1000, word);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x1000);
        cpu.regs[3] = 0x2000;
        let eff = step(&mut cpu, &mut mem).unwrap();
        assert_eq!(
            eff.branch,
            Some(Branch {
                from: 0x1000,
                to: 0x2000,
                link: false
            })
        );
        assert_eq!(cpu.pc(), 0x2000);
    }

    #[test]
    fn adc_sbc_carry_chain() {
        // 64-bit add: (2^32 - 1) + 1 using ADDS/ADC.
        let mut asm = Assembler::new(0x1000);
        asm.emit(Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: true,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Op2::reg(Reg::R2),
        });
        asm.emit(Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Adc,
            s: false,
            rd: Reg::R1,
            rn: Reg::R1,
            op2: Op2::reg(Reg::R3),
        });
        asm.bx(Reg::LR);
        let (cpu, _) = run(asm, |cpu, _| {
            cpu.regs[0] = u32::MAX;
            cpu.regs[1] = 0;
            cpu.regs[2] = 1;
            cpu.regs[3] = 0;
        });
        assert_eq!(cpu.regs[0], 0);
        assert_eq!(cpu.regs[1], 1); // carry propagated
    }
}
