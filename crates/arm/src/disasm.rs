//! A linear-sweep disassembler over guest memory.
//!
//! The NDroid authors "manually disassemble libdvm.so, libc.so,
//! libm.so … and determine the offsets of these functions" (§V-G);
//! this module provides the inverse tool for the reproduction's
//! assembled libraries — used by the analysis tooling to render the
//! third-party code under investigation.

use crate::decode::decode_arm;
use crate::mem::Memory;
use crate::thumb::decode_thumb;

/// One disassembled line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Instruction address.
    pub addr: u32,
    /// Raw encoding (one word for ARM; one or two halfwords packed
    /// low-to-high for Thumb).
    pub raw: u32,
    /// Instruction size in bytes.
    pub size: u8,
    /// Rendered mnemonic, or `".word 0x…"` for undecodable data.
    pub text: String,
}

impl std::fmt::Display for DisasmLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.size == 2 {
            write!(f, "{:08x}:     {:04x}  {}", self.addr, self.raw, self.text)
        } else {
            write!(f, "{:08x}: {:08x}  {}", self.addr, self.raw, self.text)
        }
    }
}

/// Disassembles ARM (A32) code in `[start, end)`.
pub fn disassemble_arm(mem: &Memory, start: u32, end: u32) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut addr = start & !3;
    while addr < end {
        let word = mem.read_u32(addr);
        let text = match decode_arm(word, addr) {
            Ok(instr) => instr.to_string(),
            Err(_) => format!(".word {word:#010x}"),
        };
        out.push(DisasmLine {
            addr,
            raw: word,
            size: 4,
            text,
        });
        addr += 4;
    }
    out
}

/// Disassembles Thumb (T16/BL-pair) code in `[start, end)`.
pub fn disassemble_thumb(mem: &Memory, start: u32, end: u32) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut addr = start & !1;
    while addr < end {
        match decode_thumb(mem, addr) {
            Ok((instr, size)) => {
                let raw = if size == 4 {
                    (mem.read_u16(addr) as u32) | ((mem.read_u16(addr + 2) as u32) << 16)
                } else {
                    mem.read_u16(addr) as u32
                };
                out.push(DisasmLine {
                    addr,
                    raw,
                    size,
                    text: instr.to_string(),
                });
                addr += size as u32;
            }
            Err(_) => {
                let hw = mem.read_u16(addr);
                out.push(DisasmLine {
                    addr,
                    raw: hw as u32,
                    size: 2,
                    text: format!(".hword {hw:#06x}"),
                });
                addr += 2;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg::{Reg, RegList};

    #[test]
    fn disassembles_assembled_code() {
        let mut asm = Assembler::new(0x1000);
        asm.push(RegList::of(&[Reg::R4, Reg::LR]));
        asm.mov_imm(Reg::R0, 42).unwrap();
        asm.add(Reg::R1, Reg::R0, Reg::R0);
        asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
        let code = asm.assemble().unwrap();
        let mut mem = Memory::new();
        mem.write_bytes(code.base, &code.bytes);
        let lines = disassemble_arm(&mem, code.base, code.end());
        assert_eq!(lines.len(), 4);
        assert!(lines[0].text.starts_with("stm"), "{}", lines[0].text);
        assert!(lines[1].text.contains("mov"), "{}", lines[1].text);
        assert!(lines[2].text.contains("add r1, r0, r0"), "{}", lines[2].text);
        assert!(lines[3].text.starts_with("ldm"), "{}", lines[3].text);
        // Display format includes address and raw word.
        let rendered = lines[1].to_string();
        assert!(rendered.starts_with("00001004:"));
    }

    #[test]
    fn data_rendered_as_words() {
        let mut mem = Memory::new();
        mem.write_u32(0x2000, 0xF000_0000); // undefined space
        let lines = disassemble_arm(&mem, 0x2000, 0x2004);
        assert_eq!(lines[0].text, ".word 0xf0000000");
    }

    #[test]
    fn thumb_sweep_handles_bl_pairs() {
        use crate::thumb::enc;
        let mut mem = Memory::new();
        mem.write_u16(0x100, enc::mov_imm(Reg::R0, 1));
        let (p, s) = enc::bl(0x40);
        mem.write_u16(0x102, p);
        mem.write_u16(0x104, s);
        mem.write_u16(0x106, enc::bx(Reg::LR));
        let lines = disassemble_thumb(&mem, 0x100, 0x108);
        assert_eq!(lines.len(), 3, "BL pair consumed as one instruction");
        assert_eq!(lines[1].size, 4);
        assert!(lines[1].text.contains("bl"));
        assert!(lines[2].text.contains("bx lr"));
    }
}
