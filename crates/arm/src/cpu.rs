//! ARM CPU architectural state.

use crate::reg::Reg;

/// Architectural state of one ARM core: sixteen core registers, the
/// CPSR condition flags, the Thumb execution-state bit, and 32
/// single-precision VFP registers (aliased in pairs as 16 doubles).
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Core registers R0–R15. `regs[15]` is the PC.
    pub regs: [u32; 16],
    /// Negative flag.
    pub n: bool,
    /// Zero flag.
    pub z: bool,
    /// Carry flag.
    pub c: bool,
    /// Overflow flag.
    pub v: bool,
    /// Thumb execution state.
    pub thumb: bool,
    /// VFP single-precision registers S0–S31 (D0–D15 alias pairs).
    pub vfp: [u32; 32],
    /// Instructions retired since construction.
    pub insn_count: u64,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new()
    }
}

impl Cpu {
    /// A CPU with all registers zero, flags clear, in ARM state.
    pub fn new() -> Cpu {
        Cpu {
            regs: [0; 16],
            n: false,
            z: false,
            c: false,
            v: false,
            thumb: false,
            vfp: [0; 32],
            insn_count: 0,
        }
    }

    /// The current program counter.
    #[inline]
    pub fn pc(&self) -> u32 {
        self.regs[15]
    }

    /// Sets the program counter. Bit 0 selects Thumb state, as with `BX`.
    #[inline]
    pub fn set_pc(&mut self, value: u32) {
        if value & 1 != 0 {
            self.thumb = true;
            self.regs[15] = value & !1;
        } else {
            self.regs[15] = value & !1;
        }
    }

    /// Reads a core register. Reads of PC return the architecturally
    /// visible value: current instruction address + 8 in ARM state,
    /// + 4 in Thumb state.
    #[inline]
    pub fn read(&self, r: Reg) -> u32 {
        if r == Reg::PC {
            self.regs[15].wrapping_add(if self.thumb { 4 } else { 8 })
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a core register. Writes to PC are treated as a branch
    /// (bit 0 selects Thumb state).
    #[inline]
    pub fn write(&mut self, r: Reg, value: u32) {
        if r == Reg::PC {
            self.set_pc(value);
        } else {
            self.regs[r.index()] = value;
        }
    }

    /// The stack pointer.
    #[inline]
    pub fn sp(&self) -> u32 {
        self.regs[13]
    }

    /// The link register.
    #[inline]
    pub fn lr(&self) -> u32 {
        self.regs[14]
    }

    /// Reads a single-precision VFP register as `f32`.
    #[inline]
    pub fn read_s(&self, i: u8) -> f32 {
        f32::from_bits(self.vfp[(i & 31) as usize])
    }

    /// Writes a single-precision VFP register.
    #[inline]
    pub fn write_s(&mut self, i: u8, value: f32) {
        self.vfp[(i & 31) as usize] = value.to_bits();
    }

    /// Reads a double-precision VFP register (D`i` = S`2i+1`:S`2i`).
    #[inline]
    pub fn read_d(&self, i: u8) -> f64 {
        let lo = self.vfp[((i & 15) * 2) as usize] as u64;
        let hi = self.vfp[((i & 15) * 2 + 1) as usize] as u64;
        f64::from_bits(lo | (hi << 32))
    }

    /// Writes a double-precision VFP register.
    #[inline]
    pub fn write_d(&mut self, i: u8, value: f64) {
        let bits = value.to_bits();
        self.vfp[((i & 15) * 2) as usize] = bits as u32;
        self.vfp[((i & 15) * 2 + 1) as usize] = (bits >> 32) as u32;
    }

    /// Evaluates whether a condition passes under the current flags.
    #[inline]
    pub fn cond_passes(&self, cond: crate::cond::Cond) -> bool {
        cond.passes(self.n, self.z, self.c, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;

    #[test]
    fn pc_reads_ahead() {
        let mut cpu = Cpu::new();
        cpu.set_pc(0x1000);
        assert_eq!(cpu.read(Reg::PC), 0x1008);
        cpu.thumb = true;
        assert_eq!(cpu.read(Reg::PC), 0x1004);
    }

    #[test]
    fn pc_write_selects_thumb() {
        let mut cpu = Cpu::new();
        cpu.write(Reg::PC, 0x2001);
        assert!(cpu.thumb);
        assert_eq!(cpu.pc(), 0x2000);
        // Writing an even address does NOT clear Thumb state (only BX-style
        // interworking in the executor does); set_pc with bit0=0 keeps mode.
        cpu.thumb = false;
        cpu.write(Reg::PC, 0x3000);
        assert!(!cpu.thumb);
    }

    #[test]
    fn vfp_single_double_aliasing() {
        let mut cpu = Cpu::new();
        cpu.write_d(1, 1.5f64);
        let bits = 1.5f64.to_bits();
        assert_eq!(cpu.vfp[2], bits as u32);
        assert_eq!(cpu.vfp[3], (bits >> 32) as u32);
        assert_eq!(cpu.read_d(1), 1.5);
        cpu.write_s(0, 2.25);
        assert_eq!(cpu.read_s(0), 2.25);
    }

    #[test]
    fn cond_uses_cpu_flags() {
        let mut cpu = Cpu::new();
        cpu.z = true;
        assert!(cpu.cond_passes(Cond::Eq));
        assert!(!cpu.cond_passes(Cond::Ne));
    }

    #[test]
    fn general_register_rw() {
        let mut cpu = Cpu::new();
        for r in Reg::ALL.into_iter().take(15) {
            cpu.write(r, 0x100 + r.index() as u32);
        }
        for r in Reg::ALL.into_iter().take(15) {
            assert_eq!(cpu.read(r), 0x100 + r.index() as u32);
        }
        assert_eq!(cpu.sp(), 0x10D);
        assert_eq!(cpu.lr(), 0x10E);
    }
}
