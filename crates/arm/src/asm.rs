//! Builder-style ARM and Thumb assemblers.
//!
//! The assemblers emit genuine machine-code encodings (via
//! [`crate::encode`] and [`crate::thumb::enc`]) with label-based
//! branches and a PC-relative literal pool, so that the "third-party
//! native libraries" of the NDroid reproduction are realistic binary
//! code that the decoder and instruction tracer process like QEMU
//! processed real `.so` files.

use crate::cond::Cond;
use crate::encode::encode;
use crate::error::ArmError;
use crate::insn::{AddrMode4, DpOp, Instr, MemOffset, MemSize, Op2, VfpOp, VfpPrec};
use crate::reg::{Reg, RegList};

/// A label identifying a position in the code being assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// The machine-code word of a single assembled ARM instruction —
/// the constant an app embeds when it plans to overwrite its own code
/// at runtime (self-patching / inline-detour idiom).
///
/// # Panics
///
/// Panics if `build` emits no instruction or an unencodable one.
pub fn encoding_of(build: impl FnOnce(&mut Assembler)) -> u32 {
    let mut asm = Assembler::new(0);
    build(&mut asm);
    let code = asm.assemble().expect("encodable instruction");
    u32::from_le_bytes(code.bytes[..4].try_into().expect("one instruction emitted"))
}

/// The encoding of `B <to>` as fetched from address `from` — the word
/// an inline detour stores over a function prologue to divert every
/// subsequent call into a patched copy.
///
/// # Errors
///
/// [`ArmError::BranchOutOfRange`] if `to` is outside the ±32 MiB
/// branch range of `from`.
pub fn branch_word(from: u32, to: u32) -> Result<u32, ArmError> {
    let offset = to.wrapping_sub(from.wrapping_add(8)) as i32;
    encode(&Instr::Branch {
        cond: Cond::Al,
        link: false,
        offset,
    })
    .map_err(|_| ArmError::BranchOutOfRange { from, to })
}

/// The output of assembly: a base address and the raw bytes to load at it.
#[derive(Debug, Clone)]
pub struct CodeBlock {
    /// Load address the code was assembled for.
    pub base: u32,
    /// The machine code (and literal pool) bytes.
    pub bytes: Vec<u8>,
    labels: Vec<Option<u32>>,
}

impl CodeBlock {
    /// The resolved address of `label`.
    ///
    /// # Panics
    ///
    /// Panics if the label was never bound (assembly would have failed).
    pub fn addr_of(&self, label: Label) -> u32 {
        self.labels[label.0].expect("label bound during assembly")
    }

    /// One past the last byte of the block.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }
}

enum Item {
    /// A finished instruction word.
    Word(u32),
    /// A raw data word (no relocation).
    Data(u32),
    /// `B`/`BL` whose offset is patched when the label resolves.
    BranchTo { cond: Cond, link: bool, label: Label },
    /// `LDR rd, [pc, #off]` from the literal pool entry `pool_index`.
    LoadLiteral { cond: Cond, rd: Reg, pool_index: usize },
}

/// An ARM (A32) assembler.
///
/// Instructions are appended through mnemonic methods; [`assemble`]
/// resolves labels and lays down the literal pool.
///
/// [`assemble`]: Assembler::assemble
pub struct Assembler {
    base: u32,
    items: Vec<Item>,
    labels: Vec<Option<usize>>, // item index the label points at
    literals: Vec<u32>,
}

impl std::fmt::Debug for Assembler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Assembler")
            .field("base", &self.base)
            .field("items", &self.items.len())
            .field("labels", &self.labels.len())
            .field("literals", &self.literals.len())
            .finish()
    }
}

impl Assembler {
    /// Starts assembling at `base` (must be 4-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned.
    pub fn new(base: u32) -> Assembler {
        assert_eq!(base % 4, 0, "ARM code must be word aligned");
        Assembler {
            base,
            items: Vec::new(),
            labels: Vec::new(),
            literals: Vec::new(),
        }
    }

    /// The base address the code is being assembled for.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The address of the next instruction to be emitted.
    ///
    /// Valid because every item occupies exactly one word.
    pub fn here(&self) -> u32 {
        self.base + 4 * self.items.len() as u32
    }

    /// Creates a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// [`ArmError::RebindLabel`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), ArmError> {
        if self.labels[label.0].is_some() {
            return Err(ArmError::RebindLabel(label.0));
        }
        self.labels[label.0] = Some(self.items.len());
        Ok(())
    }

    /// Creates a label already bound to the current position.
    pub fn here_label(&mut self) -> Label {
        self.labels.push(Some(self.items.len()));
        Label(self.labels.len() - 1)
    }

    /// Emits a pre-built instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction cannot be encoded; use the checked
    /// mnemonic methods for fallible operands.
    pub fn emit(&mut self, instr: Instr) {
        let word = encode(&instr).expect("encodable instruction");
        self.items.push(Item::Word(word));
    }

    /// Emits a raw data word (e.g. an embedded constant).
    pub fn word(&mut self, value: u32) {
        self.items.push(Item::Data(value));
    }

    // --- data-processing -------------------------------------------------

    fn dp(&mut self, op: DpOp, s: bool, rd: Reg, rn: Reg, op2: Op2) {
        self.emit(Instr::Dp {
            cond: Cond::Al,
            op,
            s,
            rd,
            rn,
            op2,
        });
    }

    fn dp_imm(
        &mut self,
        op: DpOp,
        s: bool,
        rd: Reg,
        rn: Reg,
        imm: u32,
        ctx: &'static str,
    ) -> Result<(), ArmError> {
        let op2 = Op2::encode_imm(imm).ok_or(ArmError::UnencodableImmediate {
            value: imm,
            context: ctx,
        })?;
        self.dp(op, s, rd, rn, op2);
        Ok(())
    }

    /// `MOV rd, #imm` (rotated-immediate encodable values only; use
    /// [`ldr_const`](Assembler::ldr_const) for arbitrary constants).
    ///
    /// # Errors
    ///
    /// [`ArmError::UnencodableImmediate`] if `imm` has no rotated-imm8 form.
    pub fn mov_imm(&mut self, rd: Reg, imm: u32) -> Result<(), ArmError> {
        if Op2::encode_imm(imm).is_some() {
            self.dp_imm(DpOp::Mov, false, rd, Reg::R0, imm, "mov")
        } else if Op2::encode_imm(!imm).is_some() {
            self.dp_imm(DpOp::Mvn, false, rd, Reg::R0, !imm, "mvn")
        } else {
            Err(ArmError::UnencodableImmediate {
                value: imm,
                context: "mov",
            })
        }
    }

    /// `MOV rd, rm`
    pub fn mov(&mut self, rd: Reg, rm: Reg) {
        self.dp(DpOp::Mov, false, rd, Reg::R0, Op2::reg(rm));
    }

    /// `ADD rd, rn, rm`
    pub fn add(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Add, false, rd, rn, Op2::reg(rm));
    }

    /// `ADD rd, rn, #imm`
    ///
    /// # Errors
    ///
    /// [`ArmError::UnencodableImmediate`] if `imm` has no rotated-imm8 form.
    pub fn add_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> Result<(), ArmError> {
        self.dp_imm(DpOp::Add, false, rd, rn, imm, "add")
    }

    /// `SUB rd, rn, rm`
    pub fn sub(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Sub, false, rd, rn, Op2::reg(rm));
    }

    /// `SUB rd, rn, #imm`
    ///
    /// # Errors
    ///
    /// [`ArmError::UnencodableImmediate`] if `imm` has no rotated-imm8 form.
    pub fn sub_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> Result<(), ArmError> {
        self.dp_imm(DpOp::Sub, false, rd, rn, imm, "sub")
    }

    /// `SUBS rd, rn, #imm` (sets flags; loop counters).
    ///
    /// # Errors
    ///
    /// [`ArmError::UnencodableImmediate`] if `imm` has no rotated-imm8 form.
    pub fn subs_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> Result<(), ArmError> {
        self.dp_imm(DpOp::Sub, true, rd, rn, imm, "subs")
    }

    /// `ADDS rd, rn, rm`
    pub fn adds(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Add, true, rd, rn, Op2::reg(rm));
    }

    /// `AND rd, rn, rm`
    pub fn and(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::And, false, rd, rn, Op2::reg(rm));
    }

    /// `AND rd, rn, #imm`
    ///
    /// # Errors
    ///
    /// [`ArmError::UnencodableImmediate`] if `imm` has no rotated-imm8 form.
    pub fn and_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> Result<(), ArmError> {
        self.dp_imm(DpOp::And, false, rd, rn, imm, "and")
    }

    /// `ORR rd, rn, rm`
    pub fn orr(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Orr, false, rd, rn, Op2::reg(rm));
    }

    /// `EOR rd, rn, rm`
    pub fn eor(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Eor, false, rd, rn, Op2::reg(rm));
    }

    /// `EOR rd, rn, #imm`
    ///
    /// # Errors
    ///
    /// [`ArmError::UnencodableImmediate`] if `imm` has no rotated-imm8 form.
    pub fn eor_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> Result<(), ArmError> {
        self.dp_imm(DpOp::Eor, false, rd, rn, imm, "eor")
    }

    /// `CMP rn, #imm`
    ///
    /// # Errors
    ///
    /// [`ArmError::UnencodableImmediate`] if `imm` has no rotated-imm8 form.
    pub fn cmp_imm(&mut self, rn: Reg, imm: u32) -> Result<(), ArmError> {
        self.dp_imm(DpOp::Cmp, true, Reg::R0, rn, imm, "cmp")
    }

    /// `CMP rn, rm`
    pub fn cmp(&mut self, rn: Reg, rm: Reg) {
        self.dp(DpOp::Cmp, true, Reg::R0, rn, Op2::reg(rm));
    }

    /// `LSL rd, rm, #amount`
    pub fn lsl_imm(&mut self, rd: Reg, rm: Reg, amount: u8) {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R0,
            Op2::RegShiftImm {
                rm,
                kind: crate::insn::ShiftKind::Lsl,
                amount,
            },
        );
    }

    /// `LSR rd, rm, #amount`
    pub fn lsr_imm(&mut self, rd: Reg, rm: Reg, amount: u8) {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R0,
            Op2::RegShiftImm {
                rm,
                kind: crate::insn::ShiftKind::Lsr,
                amount,
            },
        );
    }

    /// `MUL rd, rm, rs`
    pub fn mul(&mut self, rd: Reg, rm: Reg, rs: Reg) {
        self.emit(Instr::Mul {
            cond: Cond::Al,
            s: false,
            rd,
            rm,
            rs,
            acc: None,
        });
    }

    /// `MLA rd, rm, rs, ra`
    pub fn mla(&mut self, rd: Reg, rm: Reg, rs: Reg, ra: Reg) {
        self.emit(Instr::Mul {
            cond: Cond::Al,
            s: false,
            rd,
            rm,
            rs,
            acc: Some(ra),
        });
    }

    // --- memory -----------------------------------------------------------

    fn mem(&mut self, load: bool, size: MemSize, rd: Reg, rn: Reg, imm: u16) {
        self.emit(Instr::Mem {
            cond: Cond::Al,
            load,
            size,
            rd,
            rn,
            offset: MemOffset::Imm(imm),
            pre: true,
            up: true,
            writeback: false,
        });
    }

    /// `LDR rd, [rn, #imm]`
    pub fn ldr(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.mem(true, MemSize::Word, rd, rn, imm);
    }

    /// `STR rd, [rn, #imm]`
    pub fn str(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.mem(false, MemSize::Word, rd, rn, imm);
    }

    /// `LDRB rd, [rn, #imm]`
    pub fn ldrb(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.mem(true, MemSize::Byte, rd, rn, imm);
    }

    /// `STRB rd, [rn, #imm]`
    pub fn strb(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.mem(false, MemSize::Byte, rd, rn, imm);
    }

    /// `LDRH rd, [rn, #imm]`
    pub fn ldrh(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.mem(true, MemSize::Half, rd, rn, imm);
    }

    /// `STRH rd, [rn, #imm]`
    pub fn strh(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.mem(false, MemSize::Half, rd, rn, imm);
    }

    /// `LDR rd, [rn, rm]`
    pub fn ldr_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd,
            rn,
            offset: MemOffset::Reg {
                rm,
                kind: crate::insn::ShiftKind::Lsl,
                amount: 0,
            },
            pre: true,
            up: true,
            writeback: false,
        });
    }

    /// `LDRB rd, [rn, rm]`
    pub fn ldrb_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Byte,
            rd,
            rn,
            offset: MemOffset::Reg {
                rm,
                kind: crate::insn::ShiftKind::Lsl,
                amount: 0,
            },
            pre: true,
            up: true,
            writeback: false,
        });
    }

    /// `STRB rd, [rn, rm]`
    pub fn strb_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::Byte,
            rd,
            rn,
            offset: MemOffset::Reg {
                rm,
                kind: crate::insn::ShiftKind::Lsl,
                amount: 0,
            },
            pre: true,
            up: true,
            writeback: false,
        });
    }

    /// `PUSH {regs}`
    pub fn push(&mut self, regs: RegList) {
        self.emit(Instr::MemMulti {
            cond: Cond::Al,
            load: false,
            rn: Reg::SP,
            mode: AddrMode4::Db,
            writeback: true,
            regs,
        });
    }

    /// `POP {regs}`
    pub fn pop(&mut self, regs: RegList) {
        self.emit(Instr::MemMulti {
            cond: Cond::Al,
            load: true,
            rn: Reg::SP,
            mode: AddrMode4::Ia,
            writeback: true,
            regs,
        });
    }

    // --- control flow -----------------------------------------------------

    /// `B label`
    pub fn b(&mut self, label: Label) {
        self.items.push(Item::BranchTo {
            cond: Cond::Al,
            link: false,
            label,
        });
    }

    /// `B<cond> label`
    pub fn b_cond(&mut self, cond: Cond, label: Label) {
        self.items.push(Item::BranchTo {
            cond,
            link: false,
            label,
        });
    }

    /// `BL label`
    pub fn bl(&mut self, label: Label) {
        self.items.push(Item::BranchTo {
            cond: Cond::Al,
            link: true,
            label,
        });
    }

    /// `BX rm`
    pub fn bx(&mut self, rm: Reg) {
        self.emit(Instr::BranchExchange {
            cond: Cond::Al,
            link: false,
            rm,
        });
    }

    /// `BLX rm`
    pub fn blx(&mut self, rm: Reg) {
        self.emit(Instr::BranchExchange {
            cond: Cond::Al,
            link: true,
            rm,
        });
    }

    /// `SVC #imm`
    pub fn svc(&mut self, imm: u32) {
        self.emit(Instr::Svc {
            cond: Cond::Al,
            imm,
        });
    }

    /// Loads an arbitrary 32-bit constant via the literal pool
    /// (`LDR rd, [pc, #off]`).
    pub fn ldr_const(&mut self, rd: Reg, value: u32) {
        let pool_index = match self.literals.iter().position(|v| *v == value) {
            Some(i) => i,
            None => {
                self.literals.push(value);
                self.literals.len() - 1
            }
        };
        self.items.push(Item::LoadLiteral {
            cond: Cond::Al,
            rd,
            pool_index,
        });
    }

    /// Calls an absolute address: `LDR r12, =addr ; BLX r12`.
    ///
    /// This is the idiom third-party native code uses to call JNI and
    /// libc functions through their table addresses.
    pub fn call_abs(&mut self, addr: u32) {
        self.ldr_const(Reg::R12, addr);
        self.blx(Reg::R12);
    }

    /// Interworking call: `BLX r12` to `addr`, selecting the target
    /// instruction set via bit 0 (`thumb = true` forces Thumb). This is
    /// the ARM side of a Thumb↔ARM trampoline pair.
    pub fn call_interwork(&mut self, addr: u32, thumb: bool) {
        self.call_abs(if thumb { addr | 1 } else { addr & !1 });
    }

    // --- VFP ----------------------------------------------------------------

    /// `VLDR dd, [rn, #imm]`
    pub fn vldr_d(&mut self, dd: u8, rn: Reg, imm: u16) {
        self.emit(Instr::VfpMem {
            cond: Cond::Al,
            load: true,
            prec: VfpPrec::F64,
            fd: dd,
            rn,
            offset: imm,
            up: true,
        });
    }

    /// `VSTR dd, [rn, #imm]`
    pub fn vstr_d(&mut self, dd: u8, rn: Reg, imm: u16) {
        self.emit(Instr::VfpMem {
            cond: Cond::Al,
            load: false,
            prec: VfpPrec::F64,
            fd: dd,
            rn,
            offset: imm,
            up: true,
        });
    }

    /// `VLDR ss, [rn, #imm]`
    pub fn vldr_s(&mut self, ss: u8, rn: Reg, imm: u16) {
        self.emit(Instr::VfpMem {
            cond: Cond::Al,
            load: true,
            prec: VfpPrec::F32,
            fd: ss,
            rn,
            offset: imm,
            up: true,
        });
    }

    /// `VSTR ss, [rn, #imm]`
    pub fn vstr_s(&mut self, ss: u8, rn: Reg, imm: u16) {
        self.emit(Instr::VfpMem {
            cond: Cond::Al,
            load: false,
            prec: VfpPrec::F32,
            fd: ss,
            rn,
            offset: imm,
            up: true,
        });
    }

    fn vfp3(&mut self, op: VfpOp, prec: VfpPrec, fd: u8, fn_: u8, fm: u8) {
        self.emit(Instr::Vfp {
            cond: Cond::Al,
            op,
            prec,
            fd,
            fn_,
            fm,
        });
    }

    /// `VADD.F64 dd, dn, dm`
    pub fn vadd_d(&mut self, dd: u8, dn: u8, dm: u8) {
        self.vfp3(VfpOp::Add, VfpPrec::F64, dd, dn, dm);
    }

    /// `VSUB.F64 dd, dn, dm`
    pub fn vsub_d(&mut self, dd: u8, dn: u8, dm: u8) {
        self.vfp3(VfpOp::Sub, VfpPrec::F64, dd, dn, dm);
    }

    /// `VMUL.F64 dd, dn, dm`
    pub fn vmul_d(&mut self, dd: u8, dn: u8, dm: u8) {
        self.vfp3(VfpOp::Mul, VfpPrec::F64, dd, dn, dm);
    }

    /// `VDIV.F64 dd, dn, dm`
    pub fn vdiv_d(&mut self, dd: u8, dn: u8, dm: u8) {
        self.vfp3(VfpOp::Div, VfpPrec::F64, dd, dn, dm);
    }

    /// `VADD.F32 sd, sn, sm`
    pub fn vadd_s(&mut self, sd: u8, sn: u8, sm: u8) {
        self.vfp3(VfpOp::Add, VfpPrec::F32, sd, sn, sm);
    }

    /// `VMUL.F32 sd, sn, sm`
    pub fn vmul_s(&mut self, sd: u8, sn: u8, sm: u8) {
        self.vfp3(VfpOp::Mul, VfpPrec::F32, sd, sn, sm);
    }

    /// `VSUB.F32 sd, sn, sm`
    pub fn vsub_s(&mut self, sd: u8, sn: u8, sm: u8) {
        self.vfp3(VfpOp::Sub, VfpPrec::F32, sd, sn, sm);
    }

    /// `VDIV.F32 sd, sn, sm`
    pub fn vdiv_s(&mut self, sd: u8, sn: u8, sm: u8) {
        self.vfp3(VfpOp::Div, VfpPrec::F32, sd, sn, sm);
    }

    // --- finish -------------------------------------------------------------

    /// Resolves labels, lays out the literal pool and returns the machine
    /// code.
    ///
    /// # Errors
    ///
    /// [`ArmError::UnboundLabel`] if any referenced label was never
    /// bound, or [`ArmError::BranchOutOfRange`] for unreachable targets.
    pub fn assemble(self) -> Result<CodeBlock, ArmError> {
        let code_words = self.items.len();
        let pool_base = self.base + 4 * code_words as u32;

        // Resolve label item-indices to addresses.
        let mut label_addrs: Vec<Option<u32>> = Vec::with_capacity(self.labels.len());
        for l in &self.labels {
            label_addrs.push(l.map(|idx| self.base + 4 * idx as u32));
        }

        let mut bytes = Vec::with_capacity(4 * (code_words + self.literals.len()));
        for (idx, item) in self.items.iter().enumerate() {
            let addr = self.base + 4 * idx as u32;
            let word = match item {
                Item::Word(w) | Item::Data(w) => *w,
                Item::BranchTo { cond, link, label } => {
                    let target =
                        label_addrs[label.0].ok_or(ArmError::UnboundLabel(label.0))?;
                    let offset = target.wrapping_sub(addr.wrapping_add(8)) as i32;
                    encode(&Instr::Branch {
                        cond: *cond,
                        link: *link,
                        offset,
                    })
                    .map_err(|_| ArmError::BranchOutOfRange {
                        from: addr,
                        to: target,
                    })?
                }
                Item::LoadLiteral {
                    cond,
                    rd,
                    pool_index,
                } => {
                    let lit_addr = pool_base + 4 * *pool_index as u32;
                    let offset = lit_addr.wrapping_sub(addr.wrapping_add(8)) as i32;
                    let (up, mag) = if offset >= 0 {
                        (true, offset as u32)
                    } else {
                        (false, (-offset) as u32)
                    };
                    if mag > 0xFFF {
                        return Err(ArmError::BranchOutOfRange {
                            from: addr,
                            to: lit_addr,
                        });
                    }
                    encode(&Instr::Mem {
                        cond: *cond,
                        load: true,
                        size: MemSize::Word,
                        rd: *rd,
                        rn: Reg::PC,
                        offset: MemOffset::Imm(mag as u16),
                        pre: true,
                        up,
                        writeback: false,
                    })?
                }
            };
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        for lit in &self.literals {
            bytes.extend_from_slice(&lit.to_le_bytes());
        }
        Ok(CodeBlock {
            base: self.base,
            bytes,
            labels: label_addrs,
        })
    }
}

/// A Thumb (T16) assembler covering the subset the reproduction's
/// Thumb-mode native libraries need.
#[derive(Debug)]
pub struct ThumbAssembler {
    base: u32,
    halfwords: Vec<u16>,
    fixups: Vec<ThumbFixup>,
    labels: Vec<Option<u32>>, // resolved addresses
    literals: Vec<u32>,
}

#[derive(Debug)]
enum ThumbFixup {
    BCond {
        at: usize,
        cond: Cond,
        label: usize,
    },
    B {
        at: usize,
        label: usize,
    },
    Bl {
        at: usize,
        label: usize,
    },
    /// `LDR rd, [pc, #off]` against literal-pool entry `pool_index`.
    Literal {
        at: usize,
        rd: Reg,
        pool_index: usize,
    },
}

impl ThumbAssembler {
    /// Starts assembling Thumb code at `base` (must be halfword aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is odd.
    pub fn new(base: u32) -> ThumbAssembler {
        assert_eq!(base % 2, 0, "Thumb code must be halfword aligned");
        ThumbAssembler {
            base,
            halfwords: Vec::new(),
            fixups: Vec::new(),
            labels: Vec::new(),
            literals: Vec::new(),
        }
    }

    /// Address of the next halfword to be emitted.
    pub fn here(&self) -> u32 {
        self.base + 2 * self.halfwords.len() as u32
    }

    /// Creates a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// [`ArmError::RebindLabel`] if already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), ArmError> {
        if self.labels[label.0].is_some() {
            return Err(ArmError::RebindLabel(label.0));
        }
        self.labels[label.0] = Some(self.here());
        Ok(())
    }

    /// Emits a raw halfword.
    pub fn raw(&mut self, hw: u16) {
        self.halfwords.push(hw);
    }

    /// `B<cond> label`
    pub fn b_cond(&mut self, cond: Cond, label: Label) {
        self.fixups.push(ThumbFixup::BCond {
            at: self.halfwords.len(),
            cond,
            label: label.0,
        });
        self.halfwords.push(0);
    }

    /// `B label`
    pub fn b(&mut self, label: Label) {
        self.fixups.push(ThumbFixup::B {
            at: self.halfwords.len(),
            label: label.0,
        });
        self.halfwords.push(0);
    }

    /// `BL label`
    pub fn bl(&mut self, label: Label) {
        self.fixups.push(ThumbFixup::Bl {
            at: self.halfwords.len(),
            label: label.0,
        });
        self.halfwords.push(0);
        self.halfwords.push(0);
    }

    /// Loads an arbitrary 32-bit constant from the literal pool
    /// (`LDR rd, [pc, #off]`; `rd` must be R0–R7).
    pub fn ldr_const(&mut self, rd: Reg, value: u32) {
        let pool_index = match self.literals.iter().position(|v| *v == value) {
            Some(i) => i,
            None => {
                self.literals.push(value);
                self.literals.len() - 1
            }
        };
        self.fixups.push(ThumbFixup::Literal {
            at: self.halfwords.len(),
            rd,
            pool_index,
        });
        self.halfwords.push(0);
    }

    /// Calls an absolute address: `LDR r7, =addr ; BLX r7` — the idiom
    /// Thumb-mode libraries use for JNI/libc calls.
    pub fn call_abs(&mut self, addr: u32) {
        self.ldr_const(Reg::R7, addr);
        self.raw(crate::thumb::enc::blx(Reg::R7));
    }

    /// Interworking call from Thumb: `BLX r7` to `addr`, selecting the
    /// target instruction set via bit 0 (`thumb = false` drops back to
    /// ARM) — the Thumb side of a Thumb↔ARM trampoline pair.
    pub fn call_interwork(&mut self, addr: u32, thumb: bool) {
        self.call_abs(if thumb { addr | 1 } else { addr & !1 });
    }

    /// Resolves fixups and returns the machine code.
    ///
    /// # Errors
    ///
    /// [`ArmError::UnboundLabel`] for dangling references.
    pub fn assemble(self) -> Result<CodeBlock, ArmError> {
        use crate::thumb::enc;
        let ThumbAssembler {
            base,
            mut halfwords,
            fixups,
            labels,
            literals,
        } = self;
        // Literal pool starts after the code, 4-byte aligned.
        let code_end = base + 2 * halfwords.len() as u32;
        let pool_base = (code_end + 3) & !3;
        let pool_pad = ((pool_base - code_end) / 2) as usize;
        for fixup in fixups {
            match fixup {
                ThumbFixup::BCond { at, cond, label } => {
                    let target = labels[label].ok_or(ArmError::UnboundLabel(label))?;
                    let pc = base + 2 * at as u32 + 4;
                    let off = target.wrapping_sub(pc) as i32;
                    if !(-256..256).contains(&off) {
                        return Err(ArmError::BranchOutOfRange {
                            from: pc,
                            to: target,
                        });
                    }
                    halfwords[at] = enc::b_cond(cond, off);
                }
                ThumbFixup::B { at, label } => {
                    let target = labels[label].ok_or(ArmError::UnboundLabel(label))?;
                    let pc = base + 2 * at as u32 + 4;
                    let off = target.wrapping_sub(pc) as i32;
                    if !(-2048..2048).contains(&off) {
                        return Err(ArmError::BranchOutOfRange {
                            from: pc,
                            to: target,
                        });
                    }
                    halfwords[at] = enc::b(off);
                }
                ThumbFixup::Bl { at, label } => {
                    let target = labels[label].ok_or(ArmError::UnboundLabel(label))?;
                    let pc = base + 2 * at as u32 + 4;
                    let off = target.wrapping_sub(pc) as i32;
                    let (p, s) = enc::bl(off);
                    halfwords[at] = p;
                    halfwords[at + 1] = s;
                }
                ThumbFixup::Literal { at, rd, pool_index } => {
                    let lit_addr = pool_base + 4 * pool_index as u32;
                    // LDR rd, [pc, #imm8*4]: base = (insn_addr + 4) & !3.
                    let insn_addr = base + 2 * at as u32;
                    let pc_base = (insn_addr + 4) & !3;
                    let delta = lit_addr.wrapping_sub(pc_base);
                    if !delta.is_multiple_of(4) || delta / 4 > 0xFF {
                        return Err(ArmError::BranchOutOfRange {
                            from: insn_addr,
                            to: lit_addr,
                        });
                    }
                    // Format 6: 01001 rd imm8.
                    halfwords[at] =
                        0x4800 | ((rd.bits() as u16 & 7) << 8) | (delta / 4) as u16;
                }
            }
        }
        let mut bytes = Vec::with_capacity(2 * halfwords.len() + 4 * literals.len());
        for hw in &halfwords {
            bytes.extend_from_slice(&hw.to_le_bytes());
        }
        for _ in 0..pool_pad {
            bytes.extend_from_slice(&0u16.to_le_bytes());
        }
        for lit in &literals {
            bytes.extend_from_slice(&lit.to_le_bytes());
        }
        Ok(CodeBlock {
            base,
            bytes,
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_pool_loads_arbitrary_constant() {
        use crate::cpu::Cpu;
        use crate::exec::step;
        use crate::mem::Memory;
        let mut asm = Assembler::new(0x1000);
        asm.ldr_const(Reg::R0, 0xDEAD_BEEF);
        asm.ldr_const(Reg::R1, 0x1234_5678);
        asm.ldr_const(Reg::R2, 0xDEAD_BEEF); // deduplicated
        asm.bx(Reg::LR);
        let code = asm.assemble().unwrap();
        // 4 instruction words + 2 pool entries.
        assert_eq!(code.bytes.len(), 4 * 6);
        let mut mem = Memory::new();
        mem.write_bytes(0x1000, &code.bytes);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x1000);
        cpu.regs[14] = 0xFFFF_FF00;
        while cpu.pc() != 0xFFFF_FF00 {
            step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(cpu.regs[0], 0xDEAD_BEEF);
        assert_eq!(cpu.regs[1], 0x1234_5678);
        assert_eq!(cpu.regs[2], 0xDEAD_BEEF);
    }

    #[test]
    fn encoding_of_yields_the_instruction_word() {
        let word = encoding_of(|a| a.mov_imm(Reg::R0, 7).unwrap());
        // MOV r0, #7: cond=AL, opcode MOV, imm form.
        assert_eq!(word, 0xE3A0_0007);
    }

    #[test]
    fn branch_word_matches_assembled_branch() {
        // `B` from 0x1000 to 0x1020 assembled normally vs computed.
        let mut asm = Assembler::new(0x1000);
        let l = asm.label();
        for _ in 0..8 {
            asm.mov(Reg::R0, Reg::R0);
        }
        // Rebuild: first item is the branch.
        let mut asm2 = Assembler::new(0x1000);
        let l2 = asm2.label();
        asm2.b(l2);
        drop((asm, l));
        for _ in 0..7 {
            asm2.mov(Reg::R0, Reg::R0);
        }
        asm2.bind(l2).unwrap();
        let code = asm2.assemble().unwrap();
        let assembled = u32::from_le_bytes(code.bytes[..4].try_into().unwrap());
        assert_eq!(branch_word(0x1000, code.addr_of(l2)).unwrap(), assembled);
    }

    #[test]
    fn branch_word_executes_as_a_detour() {
        use crate::cpu::Cpu;
        use crate::exec::step;
        use crate::mem::Memory;
        // Patch word stored over a MOV: execution lands at the target.
        let mut asm = Assembler::new(0x3000);
        asm.mov_imm(Reg::R0, 1).unwrap(); // will be overwritten
        asm.bx(Reg::LR);
        asm.mov_imm(Reg::R0, 2).unwrap(); // detour target (0x3008)
        asm.bx(Reg::LR);
        let code = asm.assemble().unwrap();
        let mut mem = Memory::new();
        mem.write_bytes(0x3000, &code.bytes);
        mem.write_u32(0x3000, branch_word(0x3000, 0x3008).unwrap());
        let mut cpu = Cpu::new();
        cpu.set_pc(0x3000);
        cpu.regs[14] = 0xFFFF_FF00;
        while cpu.pc() != 0xFFFF_FF00 {
            step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(cpu.regs[0], 2, "detoured past the original body");
    }

    #[test]
    fn branch_word_rejects_out_of_range() {
        assert!(matches!(
            branch_word(0, 0x0400_0000),
            Err(ArmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn unbound_label_fails() {
        let mut asm = Assembler::new(0x1000);
        let l = asm.label();
        asm.b(l);
        assert_eq!(asm.assemble().unwrap_err(), ArmError::UnboundLabel(0));
    }

    #[test]
    fn rebind_fails() {
        let mut asm = Assembler::new(0x1000);
        let l = asm.label();
        asm.bind(l).unwrap();
        assert_eq!(asm.bind(l).unwrap_err(), ArmError::RebindLabel(0));
    }

    #[test]
    fn label_addresses_resolve() {
        let mut asm = Assembler::new(0x2000);
        asm.mov(Reg::R0, Reg::R1);
        let f = asm.here_label();
        asm.mov(Reg::R2, Reg::R3);
        asm.bx(Reg::LR);
        let code = asm.assemble().unwrap();
        assert_eq!(code.addr_of(f), 0x2004);
        assert_eq!(code.end(), 0x2000 + 12);
    }

    #[test]
    fn mov_imm_falls_back_to_mvn() {
        use crate::cpu::Cpu;
        use crate::exec::step;
        use crate::mem::Memory;
        let mut asm = Assembler::new(0x1000);
        // 0xFFFFFFFE is not a rotated imm8, but its complement 1 is.
        asm.mov_imm(Reg::R0, 0xFFFF_FFFE).unwrap();
        asm.bx(Reg::LR);
        let code = asm.assemble().unwrap();
        let mut mem = Memory::new();
        mem.write_bytes(0x1000, &code.bytes);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x1000);
        cpu.regs[14] = 0xFFFF_FF00;
        while cpu.pc() != 0xFFFF_FF00 {
            step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(cpu.regs[0], 0xFFFF_FFFE);
    }

    #[test]
    fn thumb_assembler_branches() {
        use crate::cpu::Cpu;
        use crate::exec::step;
        use crate::mem::Memory;
        use crate::thumb::enc;
        // Count down from 3, incrementing r1 each iteration.
        let mut asm = ThumbAssembler::new(0x100);
        asm.raw(enc::mov_imm(Reg::R0, 3));
        asm.raw(enc::mov_imm(Reg::R1, 0));
        let top = asm.label();
        asm.bind(top).unwrap();
        asm.raw(enc::add_imm8(Reg::R1, 1));
        asm.raw(enc::sub_imm8(Reg::R0, 1));
        asm.b_cond(Cond::Ne, top);
        asm.raw(enc::bx(Reg::LR));
        let code = asm.assemble().unwrap();
        let mut mem = Memory::new();
        mem.write_bytes(0x100, &code.bytes);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x101);
        cpu.regs[14] = 0xFFFF_FF00;
        while cpu.pc() != 0xFFFF_FF00 {
            step(&mut cpu, &mut mem).unwrap();
        }
        assert_eq!(cpu.regs[1], 3);
    }

    #[test]
    fn thumb_bl_roundtrip() {
        use crate::cpu::Cpu;
        use crate::exec::step;
        use crate::mem::Memory;
        use crate::thumb::enc;
        let mut asm = ThumbAssembler::new(0x200);
        let func = asm.label();
        asm.raw(enc::mov_imm(Reg::R0, 1));
        asm.bl(func);
        asm.raw(enc::bx(Reg::LR)); // final return (LR restored by callee? no: clobbered)
        asm.bind(func).unwrap();
        asm.raw(enc::add_imm8(Reg::R0, 41));
        asm.raw(enc::bx(Reg::LR));
        let code = asm.assemble().unwrap();
        let mut mem = Memory::new();
        mem.write_bytes(0x200, &code.bytes);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x201);
        // Run until we come back from the BL (bx lr at 0x206).
        let mut steps = 0;
        while cpu.regs[0] != 42 && steps < 100 {
            step(&mut cpu, &mut mem).unwrap();
            steps += 1;
        }
        assert_eq!(cpu.regs[0], 42);
        assert!(cpu.thumb);
    }
}
