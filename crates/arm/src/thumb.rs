//! Thumb (T16) instruction support.
//!
//! [`decode_thumb`] maps classic Thumb encodings onto the same [`Instr`]
//! model as ARM, so the executor and NDroid's taint tracer handle both
//! instruction sets with one code path — mirroring how the paper's
//! instruction tracer covers "101 ARM and 55 Thumb instructions" with a
//! shared propagation table (Table V). The [`enc`] module provides raw
//! encoders used by [`crate::asm::ThumbAssembler`].

use crate::cond::Cond;
use crate::error::ArmError;
use crate::insn::{DpOp, Instr, MemOffset, MemSize, Op2, ShiftKind};
use crate::mem::Memory;
use crate::reg::{Reg, RegList};

/// Decodes the Thumb instruction at `addr` (reads one halfword, or two
/// for `BL`). Returns the decoded instruction and its size in bytes.
///
/// # Errors
///
/// [`ArmError::UndefinedInstruction`] for encodings outside the
/// supported subset.
pub fn decode_thumb(mem: &Memory, addr: u32) -> Result<(Instr, u8), ArmError> {
    let h = mem.read_u16(addr);
    let hw = h as u32;
    let undef = || ArmError::UndefinedInstruction {
        addr,
        word: hw,
    };
    let r3 = |shift: u32| Reg::from_bits((hw >> shift) & 0x7);

    match hw >> 13 {
        0b000 => {
            let op = (hw >> 11) & 0b11;
            if op != 0b11 {
                // Format 1: shift by immediate.
                let kind = ShiftKind::from_bits(op);
                Ok((
                    Instr::Dp {
                        cond: Cond::Al,
                        op: DpOp::Mov,
                        s: true,
                        rd: r3(0),
                        rn: Reg::R0,
                        op2: Op2::RegShiftImm {
                            rm: r3(3),
                            kind,
                            amount: ((hw >> 6) & 0x1F) as u8,
                        },
                    },
                    2,
                ))
            } else {
                // Format 2: add/subtract register or 3-bit immediate.
                let op = if hw & (1 << 9) != 0 { DpOp::Sub } else { DpOp::Add };
                let op2 = if hw & (1 << 10) != 0 {
                    Op2::Imm {
                        imm8: ((hw >> 6) & 0x7) as u8,
                        rot4: 0,
                    }
                } else {
                    Op2::reg(r3(6))
                };
                Ok((
                    Instr::Dp {
                        cond: Cond::Al,
                        op,
                        s: true,
                        rd: r3(0),
                        rn: r3(3),
                        op2,
                    },
                    2,
                ))
            }
        }
        0b001 => {
            // Format 3: move/compare/add/subtract 8-bit immediate.
            let rd = r3(8);
            let imm = Op2::Imm {
                imm8: (hw & 0xFF) as u8,
                rot4: 0,
            };
            let op = match (hw >> 11) & 0b11 {
                0b00 => DpOp::Mov,
                0b01 => DpOp::Cmp,
                0b10 => DpOp::Add,
                _ => DpOp::Sub,
            };
            Ok((
                Instr::Dp {
                    cond: Cond::Al,
                    op,
                    s: true,
                    rd,
                    rn: rd,
                    op2: imm,
                },
                2,
            ))
        }
        0b010 => {
            if hw >> 10 == 0b010000 {
                return decode_alu(hw, addr);
            }
            if hw >> 10 == 0b010001 {
                return decode_hireg(hw, addr);
            }
            if hw >> 11 == 0b01001 {
                // Format 6: PC-relative load.
                return Ok((
                    Instr::Mem {
                        cond: Cond::Al,
                        load: true,
                        size: MemSize::Word,
                        rd: r3(8),
                        rn: Reg::PC,
                        offset: MemOffset::Imm(((hw & 0xFF) * 4) as u16),
                        pre: true,
                        up: true,
                        writeback: false,
                    },
                    2,
                ));
            }
            // Format 7/8: load/store with register offset.
            let op3 = (hw >> 9) & 0x7;
            let (load, size) = match op3 {
                0b000 => (false, MemSize::Word),
                0b001 => (false, MemSize::Half),
                0b010 => (false, MemSize::Byte),
                0b011 => (true, MemSize::SignedByte),
                0b100 => (true, MemSize::Word),
                0b101 => (true, MemSize::Half),
                0b110 => (true, MemSize::Byte),
                0b111 => (true, MemSize::SignedHalf),
                _ => return Err(undef()),
            };
            Ok((
                Instr::Mem {
                    cond: Cond::Al,
                    load,
                    size,
                    rd: r3(0),
                    rn: r3(3),
                    offset: MemOffset::Reg {
                        rm: r3(6),
                        kind: ShiftKind::Lsl,
                        amount: 0,
                    },
                    pre: true,
                    up: true,
                    writeback: false,
                },
                2,
            ))
        }
        0b011 => {
            // Format 9: load/store word/byte with 5-bit immediate.
            let byte = hw & (1 << 12) != 0;
            let load = hw & (1 << 11) != 0;
            let imm5 = (hw >> 6) & 0x1F;
            let (size, off) = if byte {
                (MemSize::Byte, imm5)
            } else {
                (MemSize::Word, imm5 * 4)
            };
            Ok((
                Instr::Mem {
                    cond: Cond::Al,
                    load,
                    size,
                    rd: r3(0),
                    rn: r3(3),
                    offset: MemOffset::Imm(off as u16),
                    pre: true,
                    up: true,
                    writeback: false,
                },
                2,
            ))
        }
        0b100 => {
            if hw & (1 << 12) == 0 {
                // Format 10: load/store halfword immediate.
                let load = hw & (1 << 11) != 0;
                Ok((
                    Instr::Mem {
                        cond: Cond::Al,
                        load,
                        size: MemSize::Half,
                        rd: r3(0),
                        rn: r3(3),
                        offset: MemOffset::Imm((((hw >> 6) & 0x1F) * 2) as u16),
                        pre: true,
                        up: true,
                        writeback: false,
                    },
                    2,
                ))
            } else {
                // Format 11: SP-relative load/store.
                let load = hw & (1 << 11) != 0;
                Ok((
                    Instr::Mem {
                        cond: Cond::Al,
                        load,
                        size: MemSize::Word,
                        rd: r3(8),
                        rn: Reg::SP,
                        offset: MemOffset::Imm(((hw & 0xFF) * 4) as u16),
                        pre: true,
                        up: true,
                        writeback: false,
                    },
                    2,
                ))
            }
        }
        0b101 => {
            if hw & (1 << 12) == 0 {
                // Format 12: load address (ADR / ADD rd, sp, #imm).
                let sp = hw & (1 << 11) != 0;
                let rn = if sp { Reg::SP } else { Reg::PC };
                return Ok((
                    Instr::Dp {
                        cond: Cond::Al,
                        op: DpOp::Add,
                        s: false,
                        rd: r3(8),
                        rn,
                        op2: Op2::encode_imm((hw & 0xFF) * 4).ok_or_else(undef)?,
                    },
                    2,
                ));
            }
            if hw >> 8 == 0b1011_0000 {
                // Format 13: add offset to stack pointer.
                let sub = hw & (1 << 7) != 0;
                let imm = (hw & 0x7F) * 4;
                return Ok((
                    Instr::Dp {
                        cond: Cond::Al,
                        op: if sub { DpOp::Sub } else { DpOp::Add },
                        s: false,
                        rd: Reg::SP,
                        rn: Reg::SP,
                        op2: Op2::encode_imm(imm).ok_or_else(undef)?,
                    },
                    2,
                ));
            }
            if (hw >> 9) & 0b11 == 0b10 && (hw >> 12) & 1 == 1 {
                // Format 14: push/pop registers.
                let load = hw & (1 << 11) != 0;
                let mut regs = RegList((hw & 0xFF) as u16);
                if hw & (1 << 8) != 0 {
                    if load {
                        regs = RegList(regs.0 | 1 << 15); // POP … pc
                    } else {
                        regs = RegList(regs.0 | 1 << 14); // PUSH … lr
                    }
                }
                return Ok((
                    Instr::MemMulti {
                        cond: Cond::Al,
                        load,
                        rn: Reg::SP,
                        mode: if load {
                            crate::insn::AddrMode4::Ia
                        } else {
                            crate::insn::AddrMode4::Db
                        },
                        writeback: true,
                        regs,
                    },
                    2,
                ));
            }
            Err(undef())
        }
        0b110 => {
            if hw >> 12 == 0b1101 {
                let cond_bits = (hw >> 8) & 0xF;
                if cond_bits == 0xF {
                    // Format 17: SVC.
                    return Ok((
                        Instr::Svc {
                            cond: Cond::Al,
                            imm: hw & 0xFF,
                        },
                        2,
                    ));
                }
                if cond_bits == 0xE {
                    return Err(undef()); // UDF
                }
                // Format 16: conditional branch, offset = sext(imm8) * 2.
                let mut off = (hw & 0xFF) as i32;
                if off & 0x80 != 0 {
                    off |= !0xFF;
                }
                return Ok((
                    Instr::Branch {
                        cond: Cond::from_bits(cond_bits),
                        link: false,
                        offset: off * 2,
                    },
                    2,
                ));
            }
            // Format 15 (LDMIA/STMIA) lives at 1100; supported.
            if hw >> 12 == 0b1100 {
                let load = hw & (1 << 11) != 0;
                return Ok((
                    Instr::MemMulti {
                        cond: Cond::Al,
                        load,
                        rn: r3(8),
                        mode: crate::insn::AddrMode4::Ia,
                        writeback: true,
                        regs: RegList((hw & 0xFF) as u16),
                    },
                    2,
                ));
            }
            Err(undef())
        }
        0b111 => {
            if hw >> 11 == 0b11100 {
                // Format 18: unconditional branch.
                let mut off = (hw & 0x7FF) as i32;
                if off & 0x400 != 0 {
                    off |= !0x7FF;
                }
                return Ok((
                    Instr::Branch {
                        cond: Cond::Al,
                        link: false,
                        offset: off * 2,
                    },
                    2,
                ));
            }
            if hw >> 11 == 0b11110 {
                // Format 19: BL prefix + suffix pair (4-byte instruction).
                let h2 = mem.read_u16(addr.wrapping_add(2)) as u32;
                if h2 >> 11 != 0b11111 {
                    return Err(undef());
                }
                let mut hi = (hw & 0x7FF) as i32;
                if hi & 0x400 != 0 {
                    hi |= !0x7FF;
                }
                let lo = (h2 & 0x7FF) as i32;
                return Ok((
                    Instr::Branch {
                        cond: Cond::Al,
                        link: true,
                        offset: (hi << 12) | (lo << 1),
                    },
                    4,
                ));
            }
            Err(undef())
        }
        _ => unreachable!(),
    }
}

fn decode_alu(hw: u32, addr: u32) -> Result<(Instr, u8), ArmError> {
    let rd = Reg::from_bits(hw & 0x7);
    let rm = Reg::from_bits((hw >> 3) & 0x7);
    let dp = |op: DpOp, rd: Reg, rn: Reg, op2: Op2| {
        Ok((
            Instr::Dp {
                cond: Cond::Al,
                op,
                s: true,
                rd,
                rn,
                op2,
            },
            2,
        ))
    };
    match (hw >> 6) & 0xF {
        0x0 => dp(DpOp::And, rd, rd, Op2::reg(rm)),
        0x1 => dp(DpOp::Eor, rd, rd, Op2::reg(rm)),
        0x2 => dp(
            DpOp::Mov,
            rd,
            Reg::R0,
            Op2::RegShiftReg {
                rm: rd,
                kind: ShiftKind::Lsl,
                rs: rm,
            },
        ),
        0x3 => dp(
            DpOp::Mov,
            rd,
            Reg::R0,
            Op2::RegShiftReg {
                rm: rd,
                kind: ShiftKind::Lsr,
                rs: rm,
            },
        ),
        0x4 => dp(
            DpOp::Mov,
            rd,
            Reg::R0,
            Op2::RegShiftReg {
                rm: rd,
                kind: ShiftKind::Asr,
                rs: rm,
            },
        ),
        0x5 => dp(DpOp::Adc, rd, rd, Op2::reg(rm)),
        0x6 => dp(DpOp::Sbc, rd, rd, Op2::reg(rm)),
        0x7 => dp(
            DpOp::Mov,
            rd,
            Reg::R0,
            Op2::RegShiftReg {
                rm: rd,
                kind: ShiftKind::Ror,
                rs: rm,
            },
        ),
        0x8 => dp(DpOp::Tst, Reg::R0, rd, Op2::reg(rm)),
        0x9 => dp(DpOp::Rsb, rd, rm, Op2::Imm { imm8: 0, rot4: 0 }),
        0xA => dp(DpOp::Cmp, Reg::R0, rd, Op2::reg(rm)),
        0xB => dp(DpOp::Cmn, Reg::R0, rd, Op2::reg(rm)),
        0xC => dp(DpOp::Orr, rd, rd, Op2::reg(rm)),
        0xD => Ok((
            Instr::Mul {
                cond: Cond::Al,
                s: true,
                rd,
                rm,
                rs: rd,
                acc: None,
            },
            2,
        )),
        0xE => dp(DpOp::Bic, rd, rd, Op2::reg(rm)),
        0xF => dp(DpOp::Mvn, rd, Reg::R0, Op2::reg(rm)),
        _ => Err(ArmError::UndefinedInstruction { addr, word: hw }),
    }
}

fn decode_hireg(hw: u32, _addr: u32) -> Result<(Instr, u8), ArmError> {
    let h1 = (hw >> 7) & 1;
    let h2 = (hw >> 6) & 1;
    let rd = Reg::from_bits((h1 << 3) | (hw & 0x7));
    let rm = Reg::from_bits((h2 << 3) | ((hw >> 3) & 0x7));
    match (hw >> 8) & 0b11 {
        0b00 => Ok((
            Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Add,
                s: false,
                rd,
                rn: rd,
                op2: Op2::reg(rm),
            },
            2,
        )),
        0b01 => Ok((
            Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Cmp,
                s: true,
                rd: Reg::R0,
                rn: rd,
                op2: Op2::reg(rm),
            },
            2,
        )),
        0b10 => Ok((
            Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rd,
                rn: Reg::R0,
                op2: Op2::reg(rm),
            },
            2,
        )),
        _ => {
            // BX / BLX: the link bit is H1.
            Ok((
                Instr::BranchExchange {
                    cond: Cond::Al,
                    link: h1 == 1,
                    rm,
                },
                2,
            ))
        }
    }
}

/// Raw Thumb encoders. Register arguments must be R0–R7 unless noted.
pub mod enc {
    use crate::reg::Reg;

    fn lo(r: Reg) -> u16 {
        debug_assert!(r.index() < 8, "low register required, got {r}");
        r.bits() as u16
    }

    /// `MOVS rd, #imm8`
    pub fn mov_imm(rd: Reg, imm8: u8) -> u16 {
        0x2000 | (lo(rd) << 8) | imm8 as u16
    }

    /// `CMP rd, #imm8`
    pub fn cmp_imm(rd: Reg, imm8: u8) -> u16 {
        0x2800 | (lo(rd) << 8) | imm8 as u16
    }

    /// `ADDS rd, #imm8`
    pub fn add_imm8(rd: Reg, imm8: u8) -> u16 {
        0x3000 | (lo(rd) << 8) | imm8 as u16
    }

    /// `SUBS rd, #imm8`
    pub fn sub_imm8(rd: Reg, imm8: u8) -> u16 {
        0x3800 | (lo(rd) << 8) | imm8 as u16
    }

    /// `ADDS rd, rn, rm`
    pub fn add_reg(rd: Reg, rn: Reg, rm: Reg) -> u16 {
        0x1800 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rd)
    }

    /// `SUBS rd, rn, rm`
    pub fn sub_reg(rd: Reg, rn: Reg, rm: Reg) -> u16 {
        0x1A00 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rd)
    }

    /// `LSLS rd, rm, #imm5`
    pub fn lsl_imm(rd: Reg, rm: Reg, imm5: u8) -> u16 {
        ((imm5 as u16 & 0x1F) << 6) | (lo(rm) << 3) | lo(rd)
    }

    /// Data-processing register op from format 4 (AND=0 … MVN=15).
    pub fn alu(op4: u16, rd: Reg, rm: Reg) -> u16 {
        0x4000 | ((op4 & 0xF) << 6) | (lo(rm) << 3) | lo(rd)
    }

    /// `MOV rd, rm` (high-register form, any registers).
    pub fn mov_hi(rd: Reg, rm: Reg) -> u16 {
        let d = rd.bits() as u16;
        let m = rm.bits() as u16;
        0x4600 | ((d >> 3) << 7) | (m << 3) | (d & 7)
    }

    /// `BX rm` (any register).
    pub fn bx(rm: Reg) -> u16 {
        0x4700 | ((rm.bits() as u16) << 3)
    }

    /// `BLX rm` (any register).
    pub fn blx(rm: Reg) -> u16 {
        0x4780 | ((rm.bits() as u16) << 3)
    }

    /// `LDR rd, [rn, #imm5*4]`
    pub fn ldr_imm(rd: Reg, rn: Reg, imm5: u8) -> u16 {
        0x6800 | ((imm5 as u16 & 0x1F) << 6) | (lo(rn) << 3) | lo(rd)
    }

    /// `STR rd, [rn, #imm5*4]`
    pub fn str_imm(rd: Reg, rn: Reg, imm5: u8) -> u16 {
        0x6000 | ((imm5 as u16 & 0x1F) << 6) | (lo(rn) << 3) | lo(rd)
    }

    /// `LDRB rd, [rn, #imm5]`
    pub fn ldrb_imm(rd: Reg, rn: Reg, imm5: u8) -> u16 {
        0x7800 | ((imm5 as u16 & 0x1F) << 6) | (lo(rn) << 3) | lo(rd)
    }

    /// `STRB rd, [rn, #imm5]`
    pub fn strb_imm(rd: Reg, rn: Reg, imm5: u8) -> u16 {
        0x7000 | ((imm5 as u16 & 0x1F) << 6) | (lo(rn) << 3) | lo(rd)
    }

    /// `LDR rd, [rn, rm]`
    pub fn ldr_reg(rd: Reg, rn: Reg, rm: Reg) -> u16 {
        0x5800 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rd)
    }

    /// `STR rd, [rn, rm]`
    pub fn str_reg(rd: Reg, rn: Reg, rm: Reg) -> u16 {
        0x5000 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rd)
    }

    /// `PUSH {regs8, lr?}` — `regs8` is a bitmask of R0–R7.
    pub fn push(regs8: u8, lr: bool) -> u16 {
        0xB400 | ((lr as u16) << 8) | regs8 as u16
    }

    /// `POP {regs8, pc?}` — `regs8` is a bitmask of R0–R7.
    pub fn pop(regs8: u8, pc: bool) -> u16 {
        0xBC00 | ((pc as u16) << 8) | regs8 as u16
    }

    /// `B<cond> .+offset` — `offset` is bytes from PC+4, even, ±256.
    pub fn b_cond(cond: crate::cond::Cond, offset: i32) -> u16 {
        debug_assert!(offset % 2 == 0 && (-256..256).contains(&offset));
        0xD000 | ((cond.bits() as u16) << 8) | (((offset / 2) as u16) & 0xFF)
    }

    /// `B .+offset` — bytes from PC+4, even, ±2 KiB.
    pub fn b(offset: i32) -> u16 {
        debug_assert!(offset % 2 == 0 && (-2048..2048).contains(&offset));
        0xE000 | (((offset / 2) as u16) & 0x7FF)
    }

    /// `BL .+offset` — returns the (prefix, suffix) halfword pair.
    pub fn bl(offset: i32) -> (u16, u16) {
        debug_assert!(offset % 2 == 0);
        let hi = (offset >> 12) & 0x7FF;
        let lo = (offset >> 1) & 0x7FF;
        (0xF000 | hi as u16, 0xF800 | lo as u16)
    }

    /// `SVC #imm8`
    pub fn svc(imm8: u8) -> u16 {
        0xDF00 | imm8 as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::exec::step;

    fn decode_one(hw: u16) -> Instr {
        let mut mem = Memory::new();
        mem.write_u16(0x100, hw);
        decode_thumb(&mem, 0x100).expect("decode").0
    }

    #[test]
    fn movs_imm() {
        let i = decode_one(enc::mov_imm(Reg::R3, 42));
        match i {
            Instr::Dp {
                op: DpOp::Mov,
                s: true,
                rd: Reg::R3,
                op2: Op2::Imm { imm8: 42, rot4: 0 },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn add_sub_forms() {
        match decode_one(enc::add_reg(Reg::R0, Reg::R1, Reg::R2)) {
            Instr::Dp {
                op: DpOp::Add,
                s: true,
                rd: Reg::R0,
                rn: Reg::R1,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match decode_one(enc::sub_imm8(Reg::R5, 9)) {
            Instr::Dp {
                op: DpOp::Sub,
                rd: Reg::R5,
                rn: Reg::R5,
                op2: Op2::Imm { imm8: 9, rot4: 0 },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alu_neg_and_mul() {
        match decode_one(enc::alu(0x9, Reg::R0, Reg::R1)) {
            Instr::Dp {
                op: DpOp::Rsb,
                rd: Reg::R0,
                rn: Reg::R1,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match decode_one(enc::alu(0xD, Reg::R2, Reg::R3)) {
            Instr::Mul {
                rd: Reg::R2,
                rm: Reg::R3,
                rs: Reg::R2,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_forms() {
        match decode_one(enc::ldr_imm(Reg::R1, Reg::R2, 3)) {
            Instr::Mem {
                load: true,
                size: MemSize::Word,
                rd: Reg::R1,
                rn: Reg::R2,
                offset: MemOffset::Imm(12),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match decode_one(enc::strb_imm(Reg::R1, Reg::R2, 5)) {
            Instr::Mem {
                load: false,
                size: MemSize::Byte,
                offset: MemOffset::Imm(5),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match decode_one(enc::str_reg(Reg::R0, Reg::R1, Reg::R2)) {
            Instr::Mem {
                load: false,
                offset: MemOffset::Reg { rm: Reg::R2, .. },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn push_pop_lists() {
        match decode_one(enc::push(0b0001_0000, true)) {
            Instr::MemMulti {
                load: false, regs, ..
            } => {
                assert!(regs.contains(Reg::R4));
                assert!(regs.contains(Reg::LR));
            }
            other => panic!("{other:?}"),
        }
        match decode_one(enc::pop(0b0001_0000, true)) {
            Instr::MemMulti {
                load: true, regs, ..
            } => {
                assert!(regs.contains(Reg::R4));
                assert!(regs.contains(Reg::PC));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branches() {
        match decode_one(enc::b(-4)) {
            Instr::Branch {
                cond: Cond::Al,
                link: false,
                offset: -4,
            } => {}
            other => panic!("{other:?}"),
        }
        match decode_one(enc::b_cond(Cond::Ne, 10)) {
            Instr::Branch {
                cond: Cond::Ne,
                link: false,
                offset: 10,
            } => {}
            other => panic!("{other:?}"),
        }
        // BL pair.
        let (p, s) = enc::bl(0x1234 & !1);
        let mut mem = Memory::new();
        mem.write_u16(0x100, p);
        mem.write_u16(0x102, s);
        let (i, size) = decode_thumb(&mem, 0x100).unwrap();
        assert_eq!(size, 4);
        match i {
            Instr::Branch {
                link: true, offset, ..
            } => assert_eq!(offset, 0x1234),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn thumb_program_executes() {
        // MOVS r0, #20 ; MOVS r1, #22 ; ADDS r0, r0, r1 ; BX lr
        let mut mem = Memory::new();
        let code = [
            enc::mov_imm(Reg::R0, 20),
            enc::mov_imm(Reg::R1, 22),
            enc::add_reg(Reg::R0, Reg::R0, Reg::R1),
            enc::bx(Reg::LR),
        ];
        for (i, hw) in code.iter().enumerate() {
            mem.write_u16(0x100 + 2 * i as u32, *hw);
        }
        let mut cpu = Cpu::new();
        cpu.set_pc(0x101); // bit 0 selects Thumb
        assert!(cpu.thumb);
        cpu.regs[14] = 0xFFFF_FF00; // sentinel, ARM state
        while cpu.pc() != 0xFFFF_FF00 {
            step(&mut cpu, &mut mem).unwrap();
        }
        assert!(!cpu.thumb); // BX to an even address switched to ARM
        assert_eq!(cpu.regs[0], 42);
    }

    #[test]
    fn thumb_bl_links_with_thumb_bit() {
        // BL .+4 then the callee does BX LR.
        let mut mem = Memory::new();
        let (p, s) = enc::bl(4);
        mem.write_u16(0x100, p);
        mem.write_u16(0x102, s);
        mem.write_u16(0x104, enc::mov_imm(Reg::R0, 9)); // skipped
        mem.write_u16(0x108, enc::mov_imm(Reg::R1, 7)); // BL target: 0x100+4+4
        mem.write_u16(0x10A, enc::bx(Reg::LR));
        let mut cpu = Cpu::new();
        cpu.set_pc(0x101);
        let eff = step(&mut cpu, &mut mem).unwrap();
        assert_eq!(
            eff.branch.unwrap().to,
            0x108,
            "BL target = pc + 4 + offset"
        );
        assert_eq!(cpu.regs[14], 0x104 | 1, "LR holds return address | thumb");
        step(&mut cpu, &mut mem).unwrap(); // movs r1, #7
        let eff = step(&mut cpu, &mut mem).unwrap(); // bx lr
        assert!(eff.branch.unwrap().to == 0x104);
        assert!(cpu.thumb);
        assert_eq!(cpu.regs[1], 7);
    }

    #[test]
    fn pc_relative_load_is_aligned() {
        // LDR r0, [pc, #0] at 0x102: base = (0x102 + 4) & !3 = 0x104.
        let mut mem = Memory::new();
        mem.write_u16(0x100, enc::mov_imm(Reg::R7, 0));
        mem.write_u16(0x102, 0x4800); // LDR r0, [pc, #0]
        mem.write_u32(0x108, 0xCAFE_F00D); // literal pool at (0x106&!3)+...
        mem.write_u32(0x104, 0xCAFE_F00D);
        let mut cpu = Cpu::new();
        cpu.set_pc(0x101);
        step(&mut cpu, &mut mem).unwrap();
        let eff = step(&mut cpu, &mut mem).unwrap();
        assert_eq!(eff.addr, Some(0x104));
        assert_eq!(cpu.regs[0], 0xCAFE_F00D);
    }
}
