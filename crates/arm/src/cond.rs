//! ARM condition codes.

use std::fmt;

/// The 4-bit condition field present on (almost) every ARM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (Z set).
    Eq = 0x0,
    /// Not equal (Z clear).
    Ne = 0x1,
    /// Carry set / unsigned higher or same.
    Cs = 0x2,
    /// Carry clear / unsigned lower.
    Cc = 0x3,
    /// Minus / negative (N set).
    Mi = 0x4,
    /// Plus / positive or zero (N clear).
    Pl = 0x5,
    /// Overflow (V set).
    Vs = 0x6,
    /// No overflow (V clear).
    Vc = 0x7,
    /// Unsigned higher (C set and Z clear).
    Hi = 0x8,
    /// Unsigned lower or same (C clear or Z set).
    Ls = 0x9,
    /// Signed greater than or equal (N == V).
    Ge = 0xA,
    /// Signed less than (N != V).
    Lt = 0xB,
    /// Signed greater than (Z clear and N == V).
    Gt = 0xC,
    /// Signed less than or equal (Z set or N != V).
    Le = 0xD,
    /// Always.
    Al = 0xE,
}

impl Cond {
    /// Decodes a 4-bit condition field.
    ///
    /// The `0b1111` encoding (unconditional space) is mapped to [`Cond::Al`];
    /// the decoder handles that space separately.
    pub fn from_bits(bits: u32) -> Cond {
        match bits & 0xF {
            0x0 => Cond::Eq,
            0x1 => Cond::Ne,
            0x2 => Cond::Cs,
            0x3 => Cond::Cc,
            0x4 => Cond::Mi,
            0x5 => Cond::Pl,
            0x6 => Cond::Vs,
            0x7 => Cond::Vc,
            0x8 => Cond::Hi,
            0x9 => Cond::Ls,
            0xA => Cond::Ge,
            0xB => Cond::Lt,
            0xC => Cond::Gt,
            0xD => Cond::Le,
            _ => Cond::Al,
        }
    }

    /// The 4-bit encoding of this condition.
    #[inline]
    pub const fn bits(self) -> u32 {
        self as u32
    }

    /// Evaluates the condition against the given CPSR flags.
    pub fn passes(self, n: bool, z: bool, c: bool, v: bool) -> bool {
        match self {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Cs => c,
            Cond::Cc => !c,
            Cond::Mi => n,
            Cond::Pl => !n,
            Cond::Vs => v,
            Cond::Vc => !v,
            Cond::Hi => c && !z,
            Cond::Ls => !c || z,
            Cond::Ge => n == v,
            Cond::Lt => n != v,
            Cond::Gt => !z && n == v,
            Cond::Le => z || n != v,
            Cond::Al => true,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for bits in 0..15u32 {
            assert_eq!(Cond::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    fn flag_semantics() {
        // (n, z, c, v)
        assert!(Cond::Eq.passes(false, true, false, false));
        assert!(!Cond::Eq.passes(false, false, false, false));
        assert!(Cond::Ne.passes(false, false, false, false));
        assert!(Cond::Hi.passes(false, false, true, false));
        assert!(!Cond::Hi.passes(false, true, true, false));
        assert!(Cond::Ls.passes(false, true, true, false));
        assert!(Cond::Ge.passes(true, false, false, true));
        assert!(Cond::Lt.passes(true, false, false, false));
        assert!(Cond::Gt.passes(false, false, false, false));
        assert!(!Cond::Gt.passes(false, true, false, false));
        assert!(Cond::Le.passes(false, true, false, false));
        assert!(Cond::Al.passes(false, false, false, false));
    }

    #[test]
    fn signed_comparison_table() {
        // After CMP a, b: N != V  <=>  a < b (signed). Spot-check the table.
        let cases = [(1i32, 2i32), (-1, 1), (5, 5), (7, -3), (i32::MIN, 1)];
        for (a, b) in cases {
            let (res, overflow) = a.overflowing_sub(b);
            let n = res < 0;
            let z = res == 0;
            let v = overflow;
            let c = (a as u32) >= (b as u32); // borrow-free
            assert_eq!(Cond::Lt.passes(n, z, c, v), a < b, "lt {a} {b}");
            assert_eq!(Cond::Ge.passes(n, z, c, v), a >= b, "ge {a} {b}");
            assert_eq!(Cond::Gt.passes(n, z, c, v), a > b, "gt {a} {b}");
            assert_eq!(Cond::Le.passes(n, z, c, v), a <= b, "le {a} {b}");
            assert_eq!(Cond::Eq.passes(n, z, c, v), a == b, "eq {a} {b}");
        }
    }
}
