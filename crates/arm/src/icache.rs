//! The decoded-instruction cache.
//!
//! "It takes time to decide each instruction because there are 148 ARM
//! instructions and 73 Thumb instructions and each instruction does not
//! have fixed bits to denote the opcode. To speed up the identification
//! of the instruction type and the search of the handler, NDroid caches
//! hot instructions and the corresponding handlers" (§V-C). This module
//! is that cache at the fetch/decode layer: a two-level, page-organized
//! store of already-decoded [`Instr`]s keyed by `(pc, thumb-bit)`,
//! consulted by [`crate::exec::step_cached`].
//!
//! Invalidation is page-wise and lazy: each cache page records the
//! [`Memory::page_version`] write generation it was filled under, and a
//! lookup whose generation no longer matches drops the whole page
//! before answering. Guest writes therefore never have to notify the
//! cache — self-modifying code is re-decoded on its next fetch, which
//! is exactly QEMU's translation-block invalidation protocol collapsed
//! onto an interpreter.
//!
//! Instructions that straddle a page boundary (a 32-bit Thumb pair at
//! offset `0xFFE`) are never cached: a write to the *second* page could
//! not be detected by the first page's generation.
//!
//! The store itself mirrors [`Memory`]'s layout — a `Vec` of pages, a
//! `HashMap` page index consulted only on TLB miss, and a one-entry
//! TLB — because the hit path runs once per *guest instruction*: a
//! hashed lookup per step costs more than this interpreter's decode.
//! For the same reason each cache page pins the `Memory` slot backing
//! its guest page (slots are append-only, hence stable), turning the
//! per-hit generation check into a single indexed load.

use crate::insn::Instr;
use crate::mem::{Memory, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
use std::collections::HashMap;

/// One decode slot per possible instruction start (2-byte granularity:
/// Thumb instructions are half-word aligned, ARM slots use every other
/// entry).
const SLOTS: usize = PAGE_SIZE / 2;

#[derive(Debug, Clone, Copy)]
struct CachedInsn {
    instr: Instr,
    size: u8,
    thumb: bool,
}

#[derive(Clone)]
struct CachePage {
    /// The [`Memory::page_version`] this page's entries were decoded
    /// under; a mismatch on lookup invalidates every slot.
    mem_version: u64,
    /// The `Memory` page slot backing this guest page, pinned on first
    /// resolution (`None` while the guest page is still unmapped).
    mem_slot: Option<u32>,
    slots: Box<[Option<CachedInsn>; SLOTS]>,
}

fn empty_slots() -> Box<[Option<CachedInsn>; SLOTS]> {
    vec![None; SLOTS]
        .into_boxed_slice()
        .try_into()
        .unwrap_or_else(|_| unreachable!("length is SLOTS by construction"))
}

impl CachePage {
    fn new(mem_version: u64, mem_slot: Option<u32>) -> CachePage {
        CachePage {
            mem_version,
            mem_slot,
            slots: empty_slots(),
        }
    }

    /// The current write generation of the guest page behind this cache
    /// page, pinning the backing `Memory` slot on first success.
    #[inline]
    fn live_version(&mut self, mem: &Memory, pageno: u32) -> u64 {
        match self.mem_slot {
            Some(slot) => mem.version_by_slot(slot),
            None => {
                self.mem_slot = mem.slot_of_page(pageno);
                self.mem_slot.map_or(0, |slot| mem.version_by_slot(slot))
            }
        }
    }
}

impl std::fmt::Debug for CachePage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachePage")
            .field("mem_version", &self.mem_version)
            .finish()
    }
}

/// Page-organized cache of decoded instructions with generation-based
/// self-modifying-code invalidation. See the module docs for the
/// protocol.
///
/// Every pinned slot and generation is only meaningful against the one
/// slot lineage ([`Memory::epoch`]) the cache was warmed under, so the
/// cache records that epoch and drops everything when handed a
/// `Memory` from a different lineage — without this, a fork that
/// diverged from the warming parent could map a *different* guest page
/// into a pinned slot and the version compare alone would validate
/// stale decodes. A snapshot fork that clones cache and memory together
/// calls [`rebind_epoch`](DecodeCache::rebind_epoch) instead, keeping
/// the carried entries warm (the fork preserves slots verbatim).
#[derive(Debug, Default, Clone)]
pub struct DecodeCache {
    pages: Vec<CachePage>,
    index: HashMap<u32, u32>,
    tlb: Option<(u32, u32)>, // (guest page number, pages[] slot)
    /// The [`Memory::epoch`] this cache's slots/generations are valid
    /// against (0 = not yet bound to any memory).
    epoch: u64,
    /// When `false`, [`crate::exec::step_cached`] bypasses the cache
    /// entirely (the A/B knob the `BENCH_taint` suite measures).
    pub enabled: bool,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh decode.
    pub misses: u64,
    /// Page-wise invalidations triggered by a stale write generation.
    pub invalidations: u64,
}

impl DecodeCache {
    /// An empty, enabled cache.
    pub fn new() -> DecodeCache {
        DecodeCache {
            pages: Vec::new(),
            index: HashMap::new(),
            tlb: None,
            epoch: 0,
            enabled: true,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Number of cache pages currently held (live or stale).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Drops every cached decode (stats are kept).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.index.clear();
        self.tlb = None;
    }

    /// Declares the cache's contents valid against the slot lineage
    /// `epoch` **without** dropping them. Only a snapshot fork may call
    /// this: it clones memory and cache as one unit, so the fork's
    /// slot numbering is identical to what the entries were pinned
    /// under and the carried decodes stay warm (and the hit/miss
    /// counters stay replay-identical to a fresh run).
    pub fn rebind_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Lineage guard: a `Memory` from a different slot lineage than the
    /// cache was warmed under invalidates everything (same-numbered
    /// slots may back different guest pages there, which the per-page
    /// version compare cannot detect).
    #[inline]
    fn check_epoch(&mut self, mem: &Memory) {
        if self.epoch != mem.epoch() {
            self.clear();
            self.epoch = mem.epoch();
        }
    }

    /// The cache-page slot covering `pageno`, via TLB then index.
    #[inline]
    fn slot_of(&mut self, pageno: u32) -> Option<u32> {
        if let Some((p, slot)) = self.tlb {
            if p == pageno {
                return Some(slot);
            }
        }
        let slot = *self.index.get(&pageno)?;
        self.tlb = Some((pageno, slot));
        Some(slot)
    }

    /// The cached decode of the instruction at `pc` in the given
    /// execution state, if still valid against `mem`'s current write
    /// generation. Stale pages are invalidated (and counted) here.
    #[inline]
    pub fn lookup(&mut self, mem: &Memory, pc: u32, thumb: bool) -> Option<(Instr, u8)> {
        self.check_epoch(mem);
        let pageno = pc >> PAGE_SHIFT;
        let Some(slot) = self.slot_of(pageno) else {
            self.misses += 1;
            return None;
        };
        let page = &mut self.pages[slot as usize];
        let version = page.live_version(mem, pageno);
        if page.mem_version != version {
            page.slots.fill(None);
            page.mem_version = version;
            self.invalidations += 1;
            self.misses += 1;
            return None;
        }
        match page.slots[((pc & PAGE_MASK) >> 1) as usize] {
            Some(e) if e.thumb == thumb => {
                self.hits += 1;
                Some((e.instr, e.size))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a fresh decode of `(pc, thumb)` under `mem`'s current
    /// write generation. Page-straddling instructions are skipped (see
    /// the module docs).
    #[inline]
    pub fn insert(&mut self, mem: &Memory, pc: u32, thumb: bool, instr: Instr, size: u8) {
        self.check_epoch(mem);
        let off = (pc & PAGE_MASK) as usize;
        if off + size as usize > PAGE_SIZE {
            return;
        }
        let pageno = pc >> PAGE_SHIFT;
        let slot = match self.slot_of(pageno) {
            Some(slot) => slot,
            None => {
                let slot = self.pages.len() as u32;
                let mem_slot = mem.slot_of_page(pageno);
                let version = mem_slot.map_or(0, |s| mem.version_by_slot(s));
                self.pages.push(CachePage::new(version, mem_slot));
                self.index.insert(pageno, slot);
                self.tlb = Some((pageno, slot));
                slot
            }
        };
        let page = &mut self.pages[slot as usize];
        let version = page.live_version(mem, pageno);
        if page.mem_version != version {
            page.slots.fill(None);
            page.mem_version = version;
        }
        page.slots[off >> 1] = Some(CachedInsn { instr, size, thumb });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::insn::Instr;

    fn bx_lr() -> Instr {
        Instr::BranchExchange {
            cond: Cond::Al,
            link: false,
            rm: crate::reg::Reg::LR,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut mem = Memory::new();
        mem.write_u32(0x8000, 0xE12F_FF1E);
        let mut c = DecodeCache::new();
        assert!(c.lookup(&mem, 0x8000, false).is_none());
        c.insert(&mem, 0x8000, false, bx_lr(), 4);
        let (i, sz) = c.lookup(&mem, 0x8000, false).expect("hit");
        assert_eq!((i, sz), (bx_lr(), 4));
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn write_to_page_invalidates_lookup() {
        let mut mem = Memory::new();
        mem.write_u32(0x8000, 0xE12F_FF1E);
        let mut c = DecodeCache::new();
        c.insert(&mem, 0x8000, false, bx_lr(), 4);
        mem.write_u8(0x8FFF, 0x42); // anywhere on the page
        assert!(c.lookup(&mem, 0x8000, false).is_none(), "stale entry dropped");
        assert_eq!(c.invalidations, 1);
    }

    #[test]
    fn thumb_and_arm_do_not_alias() {
        let mut mem = Memory::new();
        mem.write_u32(0x8000, 0xE12F_FF1E);
        let mut c = DecodeCache::new();
        c.insert(&mem, 0x8000, false, bx_lr(), 4);
        assert!(c.lookup(&mem, 0x8000, true).is_none(), "mode is part of the key");
    }

    #[test]
    fn different_lineage_memory_never_served_stale_decodes() {
        // The cross-lineage aliasing bug the epoch guard fixes: two
        // unrelated memories can map the same guest page into the same
        // pages[] slot with the same write generation, so the pinned
        // slot+version compare alone would validate a decode of the
        // OTHER memory's bytes.
        let mut mem1 = Memory::new();
        mem1.write_u32(0x8000, 0xE12F_FF1E); // bx lr
        let mut c = DecodeCache::new();
        c.insert(&mem1, 0x8000, false, bx_lr(), 4);
        assert!(c.lookup(&mem1, 0x8000, false).is_some());

        let mut mem2 = Memory::new();
        mem2.write_u32(0x8000, 0xE080_0001); // different bytes, same slot+version shape
        assert!(
            c.lookup(&mem2, 0x8000, false).is_none(),
            "decode of mem1's bytes must not validate against mem2"
        );
        assert_eq!(c.page_count(), 0, "lineage switch drops everything");
    }

    #[test]
    fn fork_without_rebind_drops_cache() {
        let mut mem = Memory::new();
        mem.write_u32(0x8000, 0xE12F_FF1E);
        let mut c = DecodeCache::new();
        c.insert(&mem, 0x8000, false, bx_lr(), 4);
        assert!(c.lookup(&mem, 0x8000, false).is_some());
        let child = mem.fork();
        assert!(c.lookup(&child, 0x8000, false).is_none(), "fork is a new lineage");
    }

    #[test]
    fn fork_with_rebind_keeps_entries_warm_and_smc_aware() {
        let mut mem = Memory::new();
        mem.write_u32(0x8000, 0xE12F_FF1E);
        let mut c = DecodeCache::new();
        c.insert(&mem, 0x8000, false, bx_lr(), 4);
        let mut child = mem.fork();
        let mut forked = c.clone();
        forked.rebind_epoch(child.epoch());
        assert!(
            forked.lookup(&child, 0x8000, false).is_some(),
            "snapshot fork carries the warm decode"
        );
        // Self-modifying code in the child still invalidates the
        // carried page (generations were carried verbatim and the
        // child's write bumps its own copy).
        child.write_u8(0x8001, 0x42);
        assert!(forked.lookup(&child, 0x8000, false).is_none());
        assert_eq!(forked.invalidations, 1);
        // The parent-side cache still validates against the parent.
        assert!(c.lookup(&mem, 0x8000, false).is_some());
    }

    #[test]
    fn page_straddling_instruction_is_not_cached() {
        let mut mem = Memory::new();
        mem.write_u32(0x8FFC, 0);
        let mut c = DecodeCache::new();
        c.insert(&mem, 0x8FFE, true, bx_lr(), 4); // 32-bit Thumb at page edge
        assert!(c.lookup(&mem, 0x8FFE, true).is_none());
    }
}
