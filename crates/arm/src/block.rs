//! Superblock discovery and pre-compiled taint "effect programs".
//!
//! The stepper pays per-instruction overhead three times over: a decode
//! (or icache probe), a dynamic-dispatch `on_insn` that re-classifies
//! the instruction, and a full `match` over [`Instr`] to propagate
//! taint. This module lifts all three to basic-block granularity, the
//! interpreter-shaped analogue of QEMU's translation blocks: starting
//! from a block entry we decode forward *once*, bake each instruction's
//! taint semantics into a straight-line [`TaintOp`], and cache the
//! resulting [`Block`] per page so a hot loop re-dispatches a single
//! block instead of N instructions.
//!
//! **Correctness is carried by the executor, not the builder.** A block
//! is only a *prediction* of straight-line execution: any instruction
//! that actually redirects control flow at runtime (a conditional
//! branch taken mid-block, an ALU write to PC, a load into PC, even a
//! store with PC writeback) produces an [`crate::Effect::branch`] and
//! the executor exits the block there. The builder's terminator
//! detection (`is_branch` + unconditional condition) is purely a
//! sizing heuristic.
//!
//! Invalidation reuses the exact protocol of [`crate::icache`]: each
//! cache page pins its [`Memory`] slot and records the
//! [`Memory::page_version`] write generation it was built under; a
//! lookup under a newer generation drops every block on the page.
//! Blocks never span a page (discovery stops at the boundary, and
//! page-straddling instructions are excluded like the icache does), so
//! one generation word covers all of a block's code bytes. Stores *by*
//! a block into its own page are the one case lazy invalidation cannot
//! see mid-flight; [`Block::store_hits_code`] gives executors the
//! arithmetic check they use to bail out of the block after such a
//! store and re-enter through the (now stale, hence rebuilt) cache.

use crate::cond::Cond;
use crate::exec::decode_at;
use crate::insn::{Instr, MemOffset, Op2, VfpOp, VfpPrec};
use crate::mem::{Memory, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
use crate::reg::{Reg, RegList};
use std::collections::HashMap;

/// Upper bound on instructions per block. Long straight-line runs are
/// split; the tail re-enters through the cache as its own block.
pub const MAX_BLOCK_STEPS: usize = 64;

/// Sentinel register index meaning "no index register" in memory ops.
pub const NO_REG: u8 = 16;

/// One instruction's taint semantics, pre-compiled from [`Instr`] by
/// [`lower_taint`]. The encoding is taint-representation-agnostic — it
/// names shadow registers/slots and widths, and the tracer crate
/// interprets it against its own taint type, mirroring its per-`Instr`
/// `propagate` arm bit for bit.
///
/// An op is only applied when the instruction's condition passed
/// (`Effect::executed`); the addressing data (`Effect::addr`) still
/// comes from the executed [`crate::Effect`], so no address arithmetic
/// is re-derived here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintOp {
    /// No shadow-state change: compares (`CMP`/`TST`/VFP `Cmp`),
    /// `VMRS`, ALU/multiply writes to PC (the tracer never writes the
    /// PC's shadow register), branches and `SVC`. Still counts as a
    /// propagation step when traced.
    Nop,
    /// `regs[rd] := union of regs in srcs` (bitmask over R0–R15; an
    /// empty mask clears `rd`). Covers data-processing and multiplies.
    SetReg {
        /// Destination register index (never 15).
        rd: u8,
        /// Bitmask of source register indices unioned into `rd`.
        srcs: u16,
    },
    /// Single load: `rd := mem[addr..addr+width] | regs[rn] (| regs[rm])`,
    /// preceded by the register-offset writeback union when `wb`.
    Load {
        /// Destination (15 = PC: writeback still applies, write skipped).
        rd: u8,
        /// Base register index.
        rn: u8,
        /// Index register, [`NO_REG`] for immediate offsets.
        rm: u8,
        /// Access width in bytes.
        width: u8,
        /// Register-offset writeback taints the base first.
        wb: bool,
    },
    /// Single store: `mem[addr..addr+width] := regs[rd]` (a taint
    /// *set*, not a union), preceded by the writeback union when `wb`.
    Store {
        /// Source register index.
        rd: u8,
        /// Base register index.
        rn: u8,
        /// Index register, [`NO_REG`] for immediate offsets.
        rm: u8,
        /// Access width in bytes.
        width: u8,
        /// Register-offset writeback taints the base first.
        wb: bool,
    },
    /// `LDM`: each listed register gets `mem[slot] | regs[rn]` (base
    /// taint captured before any load lands; PC skipped).
    LoadMulti {
        /// Base register index.
        rn: u8,
        /// Registers loaded, in ascending order.
        regs: RegList,
    },
    /// `STM`: each 4-byte slot is *set* to the listed register's taint.
    StoreMulti {
        /// Registers stored, in ascending order.
        regs: RegList,
    },
    /// VFP data-processing: `fd := fm (| fn_)` over 1 (`F32`) or 2
    /// (`F64`) shadow slots.
    VfpAlu {
        /// Precision (slot aliasing: `Dn` covers `S2n`/`S2n+1`).
        prec: VfpPrec,
        /// Destination register number.
        fd: u8,
        /// First operand register number.
        fn_: u8,
        /// Second operand register number.
        fm: u8,
        /// `VMOV` (unary): only `fm` feeds the result.
        mov: bool,
    },
    /// VFP load: slots of `fd` get `mem[addr..] | regs[rn]`.
    VfpLoad {
        /// Precision.
        prec: VfpPrec,
        /// Destination VFP register number.
        fd: u8,
        /// Base core register index.
        rn: u8,
    },
    /// VFP store: memory is *set* to the union of `fd`'s slots.
    VfpStore {
        /// Precision.
        prec: VfpPrec,
        /// Source VFP register number.
        fd: u8,
    },
}

/// Whether an instruction touches taint state at all. This is the
/// block-compiled twin of the tracer's handler classification: control
/// transfers and `SVC` carry no Table V handler, everything else is
/// traced.
#[inline]
pub fn is_taint_relevant(instr: &Instr) -> bool {
    !matches!(
        instr,
        Instr::Branch { .. } | Instr::BranchExchange { .. } | Instr::Svc { .. }
    )
}

/// Register-index bit for source masks.
#[inline]
fn bit(r: Reg) -> u16 {
    1 << r.index()
}

/// Pre-compiles one instruction's Table V taint semantics. Mirrors the
/// tracer's `propagate` match arm for arm; the differential test in the
/// tracer crate holds the two implementations bit-identical.
pub fn lower_taint(instr: &Instr) -> TaintOp {
    match *instr {
        Instr::Dp {
            op, rd, rn, op2, ..
        } => {
            if op.is_compare() || rd == Reg::PC {
                return TaintOp::Nop;
            }
            let mut srcs = 0u16;
            if op.uses_rn() {
                srcs |= bit(rn);
            }
            match op2 {
                Op2::Imm { .. } => {}
                Op2::RegShiftImm { rm, .. } => srcs |= bit(rm),
                Op2::RegShiftReg { rm, rs, .. } => srcs |= bit(rm) | bit(rs),
            }
            TaintOp::SetReg {
                rd: rd.index() as u8,
                srcs,
            }
        }
        Instr::Mul {
            rd, rm, rs, acc, ..
        } => {
            if rd == Reg::PC {
                return TaintOp::Nop;
            }
            let mut srcs = bit(rm) | bit(rs);
            if let Some(ra) = acc {
                srcs |= bit(ra);
            }
            TaintOp::SetReg {
                rd: rd.index() as u8,
                srcs,
            }
        }
        Instr::Mem {
            load,
            size,
            rd,
            rn,
            offset,
            pre,
            writeback,
            ..
        } => {
            let rm = match offset {
                MemOffset::Imm(_) => NO_REG,
                MemOffset::Reg { rm, .. } => rm.index() as u8,
            };
            let wb = (writeback || !pre) && rm != NO_REG && rn != Reg::PC;
            let rd = rd.index() as u8;
            let rn = rn.index() as u8;
            let width = size.bytes() as u8;
            if load {
                TaintOp::Load {
                    rd,
                    rn,
                    rm,
                    width,
                    wb,
                }
            } else {
                TaintOp::Store {
                    rd,
                    rn,
                    rm,
                    width,
                    wb,
                }
            }
        }
        Instr::MemMulti { load, rn, regs, .. } => {
            if load {
                TaintOp::LoadMulti {
                    rn: rn.index() as u8,
                    regs,
                }
            } else {
                TaintOp::StoreMulti { regs }
            }
        }
        Instr::Branch { .. } | Instr::BranchExchange { .. } | Instr::Svc { .. } => TaintOp::Nop,
        Instr::Vfp {
            op, prec, fd, fn_, fm, ..
        } => {
            if op == VfpOp::Cmp {
                return TaintOp::Nop;
            }
            TaintOp::VfpAlu {
                prec,
                fd,
                fn_,
                fm,
                mov: op == VfpOp::Mov,
            }
        }
        Instr::VfpMem {
            load, prec, fd, rn, ..
        } => {
            if load {
                TaintOp::VfpLoad {
                    prec,
                    fd,
                    rn: rn.index() as u8,
                }
            } else {
                TaintOp::VfpStore { prec, fd }
            }
        }
        Instr::VfpMrs { .. } => TaintOp::Nop,
    }
}

/// Byte span a store instruction writes (0 for non-stores and for an
/// empty-list `STM`). Used for the own-page self-modifying-code check.
fn store_bytes(instr: &Instr) -> u8 {
    match *instr {
        Instr::Mem {
            load: false, size, ..
        } => size.bytes() as u8,
        Instr::MemMulti {
            load: false, regs, ..
        } => (4 * regs.len()) as u8,
        Instr::VfpMem {
            load: false, prec, ..
        } => match prec {
            VfpPrec::F32 => 4,
            VfpPrec::F64 => 8,
        },
        _ => 0,
    }
}

/// One pre-decoded, pre-lowered instruction inside a [`Block`].
#[derive(Debug, Clone, Copy)]
pub struct BlockStep {
    /// The decoded instruction, executed via [`crate::step_decoded`].
    pub instr: Instr,
    /// Instruction size in bytes.
    pub size: u8,
    /// Baked taint-relevance classification (see [`is_taint_relevant`]).
    pub relevant: bool,
    /// Whether this is a store-class instruction (matters even for an
    /// empty-list `STM`, whose effective address is still checked
    /// against protected regions).
    pub is_store: bool,
    /// Bytes a store writes (0 when none) — the self-modification span.
    pub store_bytes: u8,
    /// The pre-compiled taint semantics.
    pub taint: TaintOp,
}

impl BlockStep {
    fn new(instr: Instr, size: u8) -> BlockStep {
        BlockStep {
            instr,
            size,
            relevant: is_taint_relevant(&instr),
            is_store: matches!(
                instr,
                Instr::Mem { load: false, .. }
                    | Instr::MemMulti { load: false, .. }
                    | Instr::VfpMem { load: false, .. }
            ),
            store_bytes: store_bytes(&instr),
            taint: lower_taint(&instr),
        }
    }
}

/// A decoded superblock: a straight-line run of instructions starting
/// at `entry`, confined to one guest page, ending at the first
/// unconditional control transfer (or page edge / size cap / decode
/// failure). Conditional branches may sit mid-block — executors exit
/// the block on *any* runtime branch effect.
#[derive(Debug, Clone)]
pub struct Block {
    steps: Vec<BlockStep>,
    /// Entry program counter.
    pub entry: u32,
    /// Instruction set the block was decoded in.
    pub thumb: bool,
    pageno: u32,
}

impl Block {
    /// The block's pre-compiled steps, in execution order.
    #[inline]
    pub fn steps(&self) -> &[BlockStep] {
        &self.steps
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the block holds no instructions (never true for a block
    /// returned by [`build_block`]).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether a store of `span` bytes at `addr` touches this block's
    /// code page. A span is at most 64 bytes, so it can never strictly
    /// contain a 4 KiB page: checking both endpoints suffices.
    #[inline]
    pub fn store_hits_code(&self, addr: u32, span: u8) -> bool {
        debug_assert!(span >= 1);
        addr >> PAGE_SHIFT == self.pageno
            || addr.wrapping_add(span as u32 - 1) >> PAGE_SHIFT == self.pageno
    }
}

/// Discovers and pre-compiles the superblock entered at `pc`.
///
/// Decoding stops (exclusively — the offending address is *not* part of
/// the block) at: an address where `stop` answers `true` (host-table
/// trap addresses the run loop must dispatch itself), the page
/// boundary, a page-straddling instruction, a decode failure (the
/// stepper fallback raises the identical error), or [`MAX_BLOCK_STEPS`].
/// It stops *inclusively* after an unconditionally-executed
/// control-transfer instruction. Returns `None` when no instruction
/// could be included (the caller falls back to single-stepping, and
/// nothing is cached, so a decode error at `pc` is re-raised verbatim).
pub fn build_block(
    mem: &Memory,
    entry: u32,
    thumb: bool,
    stop: impl Fn(u32) -> bool,
) -> Option<Block> {
    if stop(entry) {
        return None;
    }
    let pageno = entry >> PAGE_SHIFT;
    let mut steps = Vec::new();
    let mut pc = entry;
    while steps.len() < MAX_BLOCK_STEPS {
        if pc >> PAGE_SHIFT != pageno || (!steps.is_empty() && stop(pc)) {
            break;
        }
        let Ok((instr, size)) = decode_at(mem, pc, thumb) else {
            break;
        };
        if (pc & PAGE_MASK) as usize + size as usize > PAGE_SIZE {
            break;
        }
        steps.push(BlockStep::new(instr, size));
        if instr.is_branch() && instr.cond() == Cond::Al {
            break;
        }
        pc = pc.wrapping_add(size as u32);
    }
    if steps.is_empty() {
        return None;
    }
    Some(Block {
        steps,
        entry,
        thumb,
        pageno,
    })
}

/// Block key within a page: offset bits 0–11, thumb bit 12.
#[inline]
fn block_key(pc: u32, thumb: bool) -> u16 {
    (pc & PAGE_MASK) as u16 | ((thumb as u16) << 12)
}

/// Multiplicative hasher for the cache's small-integer keys (guest
/// page numbers and in-page block keys). The default SipHash shows up
/// per block dispatch on hot loops; a Fibonacci multiply spreads
/// sequential keys across the table's control bits at the cost of one
/// `mul`.
#[derive(Default)]
struct IntHasher(u64);

impl std::hash::Hasher for IntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(8) ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.0 = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type IntMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<IntHasher>>;

#[derive(Clone)]
struct BlockPage {
    /// The [`Memory::page_version`] the page's blocks were built under.
    mem_version: u64,
    /// Pinned `Memory` slot backing the guest page (append-only, hence
    /// stable; `None` while unmapped).
    mem_slot: Option<u32>,
    blocks: IntMap<u16, Block>,
}

impl BlockPage {
    fn new(mem_version: u64, mem_slot: Option<u32>) -> BlockPage {
        BlockPage {
            mem_version,
            mem_slot,
            blocks: IntMap::default(),
        }
    }

    /// Current write generation of the backing guest page, pinning the
    /// slot on first success — same protocol as the icache.
    #[inline]
    fn live_version(&mut self, mem: &Memory, pageno: u32) -> u64 {
        match self.mem_slot {
            Some(slot) => mem.version_by_slot(slot),
            None => {
                self.mem_slot = mem.slot_of_page(pageno);
                self.mem_slot.map_or(0, |slot| mem.version_by_slot(slot))
            }
        }
    }
}

impl std::fmt::Debug for BlockPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockPage")
            .field("mem_version", &self.mem_version)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

/// Page-organized cache of compiled [`Block`]s, invalidated by the same
/// [`Memory::page_version`] write generations as the decoded-instruction
/// cache. See the module docs for the protocol.
///
/// Like [`DecodeCache`](crate::icache::DecodeCache), the cache is bound
/// to one [`Memory::epoch`] slot lineage: a lookup against a memory
/// from another lineage drops everything (pinned slots could alias
/// different guest pages there), while a snapshot fork that carries
/// memory and cache together re-binds via
/// [`rebind_epoch`](BlockCache::rebind_epoch) and keeps its compiled
/// blocks warm.
#[derive(Debug, Default, Clone)]
pub struct BlockCache {
    pages: Vec<BlockPage>,
    index: IntMap<u32, u32>,
    tlb: Option<(u32, u32)>, // (guest page number, pages[] slot)
    /// The [`Memory::epoch`] the pinned slots/generations are valid
    /// against (0 = not yet bound).
    epoch: u64,
    /// When `false`, the run loop never consults or fills the cache and
    /// degrades to per-instruction stepping (the `blocks` A/B knob).
    pub enabled: bool,
    /// Block dispatches answered from the cache.
    pub hits: u64,
    /// Lookups that required building (or re-building) a block.
    pub misses: u64,
    /// Page-wise invalidations triggered by a stale write generation.
    pub invalidations: u64,
    /// Blocks compiled over the cache's lifetime.
    pub built: u64,
}

impl BlockCache {
    /// An empty, enabled cache.
    pub fn new() -> BlockCache {
        BlockCache {
            pages: Vec::new(),
            index: IntMap::default(),
            tlb: None,
            epoch: 0,
            enabled: true,
            hits: 0,
            misses: 0,
            invalidations: 0,
            built: 0,
        }
    }

    /// Number of cache pages currently held (live or stale).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Drops every cached block (stats are kept).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.index.clear();
        self.tlb = None;
    }

    /// Declares the cached blocks valid against the slot lineage
    /// `epoch` without dropping them — for snapshot forks only, which
    /// clone memory and cache as a unit so every pinned slot still
    /// means the same guest page (see
    /// [`DecodeCache::rebind_epoch`](crate::icache::DecodeCache::rebind_epoch)).
    pub fn rebind_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Lineage guard shared with the icache: everything is dropped when
    /// handed a `Memory` whose epoch differs from the one the entries
    /// were pinned under.
    #[inline]
    fn check_epoch(&mut self, mem: &Memory) {
        if self.epoch != mem.epoch() {
            self.clear();
            self.epoch = mem.epoch();
        }
    }

    /// The cache-page slot covering `pageno`, via TLB then index.
    #[inline]
    fn slot_of(&mut self, pageno: u32) -> Option<u32> {
        if let Some((p, slot)) = self.tlb {
            if p == pageno {
                return Some(slot);
            }
        }
        let slot = *self.index.get(&pageno)?;
        self.tlb = Some((pageno, slot));
        Some(slot)
    }

    /// The cached block entered at `(pc, thumb)`, if still valid
    /// against `mem`'s current write generation. Stale pages drop all
    /// their blocks (and are counted) here.
    #[inline]
    pub fn lookup(&mut self, mem: &Memory, pc: u32, thumb: bool) -> Option<&Block> {
        self.check_epoch(mem);
        let pageno = pc >> PAGE_SHIFT;
        let Some(slot) = self.slot_of(pageno) else {
            self.misses += 1;
            return None;
        };
        let page = &mut self.pages[slot as usize];
        let version = page.live_version(mem, pageno);
        if page.mem_version != version {
            page.blocks.clear();
            page.mem_version = version;
            self.invalidations += 1;
            self.misses += 1;
            return None;
        }
        match page.blocks.get(&block_key(pc, thumb)) {
            Some(block) => {
                self.hits += 1;
                Some(block)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a freshly built block under `mem`'s current write
    /// generation and returns a reference to the cached copy (so the
    /// caller can dispatch it without a second probe).
    pub fn insert(&mut self, mem: &Memory, block: Block) -> &Block {
        self.check_epoch(mem);
        let pageno = block.pageno;
        let key = block_key(block.entry, block.thumb);
        let slot = match self.slot_of(pageno) {
            Some(slot) => slot,
            None => {
                let slot = self.pages.len() as u32;
                let mem_slot = mem.slot_of_page(pageno);
                let version = mem_slot.map_or(0, |s| mem.version_by_slot(s));
                self.pages.push(BlockPage::new(version, mem_slot));
                self.index.insert(pageno, slot);
                self.tlb = Some((pageno, slot));
                slot
            }
        };
        let page = &mut self.pages[slot as usize];
        let version = page.live_version(mem, pageno);
        if page.mem_version != version {
            page.blocks.clear();
            page.mem_version = version;
        }
        self.built += 1;
        page.blocks.insert(key, block);
        &page.blocks[&key]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MOV_R0_7: u32 = 0xE3A0_0007; // mov r0, #7
    const ADD_R0_1: u32 = 0xE280_0001; // add r0, r0, #1
    const BX_LR: u32 = 0xE12F_FF1E; // bx lr
    const BNE_BACK2: u32 = 0x1AFF_FFFC; // bne .-8
    const STR_R0_R1: u32 = 0xE581_0000; // str r0, [r1]

    fn code(words: &[u32], base: u32) -> Memory {
        let mut mem = Memory::new();
        for (i, w) in words.iter().enumerate() {
            mem.write_u32(base + 4 * i as u32, *w);
        }
        mem
    }

    #[test]
    fn block_ends_at_unconditional_branch() {
        let mem = code(&[MOV_R0_7, ADD_R0_1, BX_LR, ADD_R0_1], 0x8000);
        let b = build_block(&mem, 0x8000, false, |_| false).expect("block");
        assert_eq!(b.len(), 3, "bx lr terminates the block inclusively");
        assert!(b.steps()[2].instr.is_branch());
        assert!(!b.steps()[2].relevant, "branches carry no taint handler");
        assert_eq!(b.steps()[0].taint, TaintOp::SetReg { rd: 0, srcs: 0 });
        assert_eq!(b.steps()[1].taint, TaintOp::SetReg { rd: 0, srcs: 1 });
    }

    #[test]
    fn conditional_branch_sits_mid_block() {
        let mem = code(&[ADD_R0_1, ADD_R0_1, BNE_BACK2, MOV_R0_7, BX_LR], 0x8000);
        let b = build_block(&mem, 0x8000, false, |_| false).expect("block");
        assert_eq!(
            b.len(),
            5,
            "the superblock runs through the conditional branch"
        );
    }

    #[test]
    fn decode_failure_truncates_block() {
        let mut mem = code(&[ADD_R0_1, ADD_R0_1], 0x8000);
        mem.write_u32(0x8008, 0xFFFF_FFFF); // undefined
        let b = build_block(&mem, 0x8000, false, |_| false).expect("block");
        assert_eq!(b.len(), 2, "undefined word excluded; stepper re-raises it");
        assert!(build_block(&mem, 0x8008, false, |_| false).is_none());
    }

    #[test]
    fn stop_predicate_excludes_host_addresses() {
        let mem = code(&[ADD_R0_1, ADD_R0_1, ADD_R0_1], 0x8000);
        let b = build_block(&mem, 0x8000, false, |pc| pc == 0x8008).expect("block");
        assert_eq!(b.len(), 2, "host trap address never joins a block");
        assert!(
            build_block(&mem, 0x8008, false, |pc| pc == 0x8008).is_none(),
            "building at a host trap address is refused"
        );
    }

    #[test]
    fn block_never_crosses_a_page() {
        let mut mem = Memory::new();
        for i in 0..8u32 {
            mem.write_u32(0x8FF0 + 4 * i, ADD_R0_1);
        }
        let b = build_block(&mem, 0x8FF0, false, |_| false).expect("block");
        assert_eq!(b.len(), 4, "discovery stops at the page edge");
    }

    #[test]
    fn store_steps_carry_span_metadata() {
        let mem = code(&[STR_R0_R1, BX_LR], 0x8000);
        let b = build_block(&mem, 0x8000, false, |_| false).expect("block");
        let s = &b.steps()[0];
        assert!(s.is_store);
        assert_eq!(s.store_bytes, 4);
        assert!(b.store_hits_code(0x8FFC, 4));
        assert!(b.store_hits_code(0x7FFD, 4), "tail overlaps the code page");
        assert!(!b.store_hits_code(0x9000, 4));
    }

    #[test]
    fn cache_hits_and_page_write_invalidates() {
        let mem = code(&[ADD_R0_1, BX_LR], 0x8000);
        let mut c = BlockCache::new();
        assert!(c.lookup(&mem, 0x8000, false).is_none());
        let b = build_block(&mem, 0x8000, false, |_| false).unwrap();
        c.insert(&mem, b);
        assert_eq!(c.lookup(&mem, 0x8000, false).expect("hit").len(), 2);
        assert_eq!((c.hits, c.misses, c.built), (1, 1, 1));

        let mut mem = mem;
        mem.write_u8(0x8FFF, 0x42); // anywhere on the page
        assert!(c.lookup(&mem, 0x8000, false).is_none(), "stale page drops");
        assert_eq!(c.invalidations, 1);
    }

    #[test]
    fn thumb_and_arm_entries_do_not_alias() {
        let mem = code(&[ADD_R0_1, BX_LR], 0x8000);
        let mut c = BlockCache::new();
        let b = build_block(&mem, 0x8000, false, |_| false).unwrap();
        c.insert(&mem, b);
        assert!(c.lookup(&mem, 0x8000, true).is_none());
    }

    #[test]
    fn different_lineage_memory_drops_cached_blocks() {
        // Same cross-lineage aliasing hazard as the icache: an
        // unrelated memory can reproduce the pinned slot+version shape
        // while holding different bytes, so lineage is part of validity.
        let mem = code(&[ADD_R0_1, BX_LR], 0x8000);
        let mut c = BlockCache::new();
        let b = build_block(&mem, 0x8000, false, |_| false).unwrap();
        c.insert(&mem, b);
        assert!(c.lookup(&mem, 0x8000, false).is_some());

        let other = code(&[MOV_R0_7, MOV_R0_7], 0x8000);
        assert!(
            c.lookup(&other, 0x8000, false).is_none(),
            "blocks built from mem's bytes must not validate against another lineage"
        );
        assert_eq!(c.page_count(), 0);
    }

    #[test]
    fn fork_rebind_keeps_blocks_warm_and_smc_aware() {
        let mem = code(&[ADD_R0_1, BX_LR], 0x8000);
        let mut c = BlockCache::new();
        let b = build_block(&mem, 0x8000, false, |_| false).unwrap();
        c.insert(&mem, b);

        let mut child = mem.fork();
        let mut forked = c.clone();
        // Without a rebind the fork counts as a foreign lineage...
        assert!(forked.lookup(&child, 0x8000, false).is_none());
        // ...so re-warm a fresh clone the way a snapshot fork does.
        let mut forked = c.clone();
        forked.rebind_epoch(child.epoch());
        assert!(
            forked.lookup(&child, 0x8000, false).is_some(),
            "snapshot fork carries warm compiled blocks"
        );
        // SMC after fork: the child patching its own code must drop the
        // carried block.
        child.write_u32(0x8000, MOV_R0_7);
        assert!(forked.lookup(&child, 0x8000, false).is_none());
        assert_eq!(forked.invalidations, 1);
        // The parent-bound cache still serves the parent.
        assert!(c.lookup(&mem, 0x8000, false).is_some());
    }
}
