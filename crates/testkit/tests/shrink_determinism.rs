//! Replay determinism for the shrinker: a failing property's report
//! carries a `TESTKIT_SEED`, and re-running under that seed must not
//! just regenerate the failing input — it must re-shrink it through
//! the same greedy loop and land on the *same minimal case*. One known
//! shrink is pinned (the `v >= 777` boundary property minimizes to
//! exactly 777) so the loop itself cannot silently change shape.
//!
//! Everything lives in one test function: `TESTKIT_SEED` is a
//! process-global environment variable, and integration tests run on
//! parallel threads.

use ndroid_testkit::runner::{run_property, Config, SEED_ENV};
use std::panic::{self, AssertUnwindSafe};

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        panic!("non-string panic payload");
    }
}

/// The property under test: fails on the upper ~92% of the range, so
/// the first generated case almost certainly fails and the greedy
/// shrinker must walk down to the 777 boundary.
fn boundary_property(cfg: &Config) {
    run_property(cfg, "shrink_determinism::boundary", &(0u32..10_000), |v| {
        assert!(v < 777, "too big: {v}")
    });
}

/// Pulls the `minimal input:` line out of a testkit failure report.
fn minimal_input(report: &str) -> &str {
    report
        .lines()
        .find_map(|l| l.trim().strip_prefix("minimal input: "))
        .unwrap_or_else(|| panic!("no minimal-input line in: {report}"))
}

#[test]
fn seed_replay_shrinks_to_the_same_minimal_case() {
    assert!(
        std::env::var(SEED_ENV).is_err(),
        "{SEED_ENV} must not leak into the test environment"
    );
    let cfg = Config::with_cases(64);

    // Fresh run: fails, shrinks, reports seed + minimal input.
    let fresh = panic_text(
        panic::catch_unwind(AssertUnwindSafe(|| boundary_property(&cfg)))
            .expect_err("boundary property must fail"),
    );
    assert_eq!(minimal_input(&fresh), "777", "pinned shrink: {fresh}");
    let seed = fresh
        .split("TESTKIT_SEED=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no seed in report: {fresh}"));
    assert!(seed.starts_with("0x"), "hex seed: {seed}");

    // Replay run: same seed, same property — must fail again and
    // re-shrink to the identical minimal case with the same assertion.
    std::env::set_var(SEED_ENV, seed);
    let replayed = panic::catch_unwind(AssertUnwindSafe(|| boundary_property(&cfg)));
    std::env::remove_var(SEED_ENV);
    let replayed = panic_text(replayed.expect_err("replay must reproduce the failure"));

    assert!(
        replayed.contains(&format!("replay of TESTKIT_SEED={seed}")),
        "replay banner: {replayed}"
    );
    assert_eq!(
        minimal_input(&replayed),
        minimal_input(&fresh),
        "replay shrank to a different minimum:\nfresh: {fresh}\nreplay: {replayed}"
    );
    assert!(
        replayed.contains("too big: 777"),
        "assertion message pinned to the minimum: {replayed}"
    );

    // And a passing property under the same seed is a no-op, not a
    // panic (the seed belongs to the case stream, not the property).
    std::env::set_var(SEED_ENV, seed);
    let benign = panic::catch_unwind(AssertUnwindSafe(|| {
        run_property(&cfg, "shrink_determinism::all_pass", &(0u32..10_000), |v| {
            assert!(v < 10_000)
        });
    }));
    std::env::remove_var(SEED_ENV);
    benign.expect("passing property under a replay seed must not panic");
}
