//! Micro-benchmark timer replacing criterion: warmup, median-of-N
//! sampling, a throughput line per benchmark, and a machine-readable
//! JSON report written to `BENCH_<suite>.json`.
//!
//! Environment knobs:
//! * `TESTKIT_BENCH_SMOKE=1` — minimal warmup and sampling, for CI
//!   smoke passes where only "runs and reports" matters.
//! * `TESTKIT_BENCH_DIR=<dir>` — where the JSON report lands
//!   (defaults to the current directory).

use std::time::{Duration, Instant};

/// Re-export so benches don't need to import `std::hint`.
pub use std::hint::black_box;

/// One benchmark's measurements.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id, e.g. `"cfbench/crc32/NDroid"`.
    pub name: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// All per-iteration samples (ns), sorted.
    pub samples_ns: Vec<f64>,
    /// Iterations timed per sample.
    pub iters_per_sample: u64,
    /// Iterations per second implied by the median.
    pub throughput: f64,
}

/// One derived scalar recorded alongside the timings — a size, a
/// ratio, a throughput computed from a measured median — so gates can
/// check quantities the timer itself doesn't produce.
#[derive(Debug, Clone)]
pub struct BenchMetric {
    /// Metric id, e.g. `"store/bytes_per_event"`.
    pub name: String,
    /// The value.
    pub value: f64,
    /// Unit label, e.g. `"bytes"` or `"events/s"`.
    pub unit: String,
}

/// A named collection of benchmarks; writes `BENCH_<name>.json` on
/// [`Suite::finish`].
pub struct Suite {
    name: String,
    results: Vec<BenchResult>,
    metrics: Vec<BenchMetric>,
    smoke: bool,
    warmup: Duration,
    target_sample: Duration,
    samples: usize,
}

impl Suite {
    /// Creates a suite (reads the smoke-mode env var once).
    pub fn new(name: &str) -> Suite {
        let smoke = std::env::var("TESTKIT_BENCH_SMOKE").map_or(false, |v| v != "0");
        Suite {
            name: name.to_string(),
            results: Vec::new(),
            metrics: Vec::new(),
            smoke,
            warmup: if smoke {
                Duration::ZERO
            } else {
                Duration::from_millis(150)
            },
            target_sample: Duration::from_millis(25),
            samples: if smoke { 3 } else { 9 },
        }
    }

    /// Times `f`, recording a result under `name`.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        // Warmup until the clock budget is spent (at least one call).
        let start = Instant::now();
        loop {
            f();
            if start.elapsed() >= self.warmup {
                break;
            }
        }

        // Calibrate iterations per sample from a single timed call.
        let t0 = Instant::now();
        f();
        let one = t0.elapsed().max(Duration::from_nanos(50));
        let iters = if self.smoke {
            1
        } else {
            (self.target_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_ns = samples[samples.len() / 2];
        let throughput = if median_ns > 0.0 {
            1e9 / median_ns
        } else {
            f64::INFINITY
        };

        println!(
            "bench {:<48} {:>14} /iter   {:>14}/s{}",
            format!("{}/{}", self.name, name),
            fmt_ns(median_ns),
            fmt_count(throughput),
            if self.smoke { "   [smoke]" } else { "" },
        );

        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns,
            samples_ns: samples,
            iters_per_sample: iters,
            throughput,
        });
    }

    /// Records a derived scalar metric, printed immediately and
    /// emitted under `"metrics"` in the JSON report.
    pub fn metric(&mut self, name: &str, value: f64, unit: &str) {
        println!(
            "metric {:<47} {:>14.2} {}",
            format!("{}/{}", self.name, name),
            value,
            unit
        );
        self.metrics.push(BenchMetric {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        });
    }

    /// Prints the summary and writes `BENCH_<suite>.json`. Returns the
    /// path written.
    pub fn finish(self) -> std::path::PathBuf {
        let dir = std::env::var("TESTKIT_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        let json = self.to_json();
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("[testkit] could not write {}: {e}", path.display());
        } else {
            println!(
                "bench suite '{}': {} benchmarks -> {}",
                self.name,
                self.results.len(),
                path.display()
            );
        }
        path
    }

    /// The JSON report (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"suite\": {},\n", json_str(&self.name)));
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&r.name)));
            out.push_str(&format!("\"median_ns\": {:.1}, ", r.median_ns));
            out.push_str(&format!("\"iters_per_sample\": {}, ", r.iters_per_sample));
            out.push_str(&format!("\"samples\": {}, ", r.samples_ns.len()));
            out.push_str(&format!("\"throughput_per_sec\": {:.1}", r.throughput));
            out.push_str(if i + 1 == self.results.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&m.name)));
            out.push_str(&format!("\"value\": {:.3}, ", m.value));
            out.push_str(&format!("\"unit\": {}", json_str(&m.unit)));
            out.push_str(if i + 1 == self.metrics.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Results measured so far (mainly for tests).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Metrics recorded so far (mainly for tests).
    pub fn metrics(&self) -> &[BenchMetric] {
        &self.metrics
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_count(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.2}G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.2}k", n / 1e3)
    } else {
        format!("{n:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_suite(name: &str) -> Suite {
        // Force smoke parameters without relying on the env var (tests
        // run in parallel; the var is read at construction only).
        let mut s = Suite::new(name);
        s.smoke = true;
        s.warmup = Duration::ZERO;
        s.samples = 3;
        s
    }

    #[test]
    fn measures_and_reports() {
        let mut suite = smoke_suite("unit");
        let mut acc = 0u64;
        suite.bench("spin", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
        });
        assert_eq!(suite.results().len(), 1);
        let r = &suite.results()[0];
        assert!(r.median_ns > 0.0);
        assert!(r.throughput > 0.0);
        assert_eq!(r.samples_ns.len(), 3);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut suite = smoke_suite("jsonshape");
        suite.bench("noop", || {
            black_box(1 + 1);
        });
        suite.metric("bytes_per_event", 12.5, "bytes");
        let json = suite.to_json();
        assert!(json.contains("\"suite\": \"jsonshape\""));
        assert!(json.contains("\"name\": \"noop\""));
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"throughput_per_sec\""));
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"name\": \"bytes_per_event\""));
        assert!(json.contains("\"value\": 12.500"));
        assert!(json.contains("\"unit\": \"bytes\""));
        assert_eq!(suite.metrics().len(), 1);
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn finish_writes_file() {
        let dir = std::env::temp_dir().join("testkit-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("TESTKIT_BENCH_DIR", &dir);
        let mut suite = smoke_suite("filewrite");
        suite.bench("noop", || {
            black_box(0u8);
        });
        let path = suite.finish();
        std::env::remove_var("TESTKIT_BENCH_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"suite\": \"filewrite\""));
        std::fs::remove_file(path).ok();
    }
}
