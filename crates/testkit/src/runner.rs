//! The property-test runner: drives a strategy for N cases, catches
//! assertion panics, shrinks failing inputs greedily, and prints a
//! seed that reproduces the failure via the `TESTKIT_SEED` env var.

use crate::rng::{splitmix64, Pcg32};
use crate::strategy::{Strategy, ValueTree};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Runner configuration (proptest's `ProptestConfig` analog).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Cap on shrink iterations once a failure is found.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_shrink_iters: 4_096,
        }
    }
}

impl Config {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

thread_local! {
    /// Set while the runner probes a case: panics are expected there
    /// (they mean "property failed") and must not spam stderr.
    static PROBING: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !PROBING.with(|p| p.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one case, reporting a panic as `Err(message)`.
fn probe<V, F: FnMut(V)>(test: &mut F, value: V) -> Result<(), String> {
    PROBING.with(|p| p.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| test(value)));
    PROBING.with(|p| p.set(false));
    result.map_err(panic_message)
}

/// Environment-variable names the runner honors.
pub const SEED_ENV: &str = "TESTKIT_SEED";
/// Override for `Config::cases` (applies to every property).
pub const CASES_ENV: &str = "TESTKIT_CASES";

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("could not parse {name}={raw:?} as a u64"),
    }
}

/// FNV-1a hash, used to give every property its own seed stream so
/// adding a test never perturbs its neighbors' cases.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Greedy shrink: simplify while the property keeps failing; when a
/// candidate passes, complicate back toward the failure. Returns the
/// minimal failing input and its assertion message. Purely a function
/// of the value tree and the property, so a fresh run and a
/// `TESTKIT_SEED` replay of the same case shrink to the same minimum.
fn shrink_failure<V: Clone, F: FnMut(V)>(
    cfg: &Config,
    tree: &mut Box<dyn ValueTree<Value = V>>,
    first: String,
    test: &mut F,
) -> (V, String) {
    let mut last_msg = first;
    let mut failing = tree.current();
    for _ in 0..cfg.max_shrink_iters {
        if !tree.simplify() {
            break;
        }
        match probe(test, tree.current()) {
            Err(msg) => {
                last_msg = msg;
                failing = tree.current();
            }
            Ok(()) => {
                if !tree.complicate() {
                    break;
                }
            }
        }
    }
    (failing, last_msg)
}

/// Runs `test` against `cfg.cases` values drawn from `strategy`.
///
/// On failure the input is shrunk greedily (simplify / complicate on
/// the value tree) and the final report carries the per-case seed;
/// re-running with `TESTKIT_SEED=<seed>` regenerates exactly the same
/// initial input for any property, so `TESTKIT_SEED=0x… cargo test
/// <name>` reproduces the failure — *and* re-shrinks it through the
/// same greedy loop, so the replayed report pins the same minimal
/// input as the original run.
pub fn run_property<S, F>(cfg: &Config, name: &str, strategy: &S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value),
{
    install_quiet_hook();

    if let Some(seed) = env_u64(SEED_ENV) {
        // Reproduction mode: regenerate the one seeded case, and if it
        // still fails, shrink it exactly as the original run did.
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut tree = strategy.new_tree(&mut rng);
        eprintln!(
            "[testkit] {name}: replaying {SEED_ENV}={seed:#x} with input {:?}",
            tree.current()
        );
        match probe(&mut test, tree.current()) {
            Ok(()) => {
                eprintln!("[testkit] {name}: replayed case passes ({SEED_ENV} does not reproduce a failure here)");
            }
            Err(first) => {
                let (failing, last_msg) = shrink_failure(cfg, &mut tree, first, &mut test);
                panic!(
                    "[testkit] property '{name}' failed (replay of {SEED_ENV}={seed:#x}).\n\
                     minimal input: {failing:?}\n\
                     assertion: {last_msg}\n\
                     reproduce with: {SEED_ENV}={seed:#x} cargo test {short}",
                    short = name.rsplit("::").next().unwrap_or(name),
                );
            }
        }
        return;
    }

    let cases = env_u64(CASES_ENV).map(|n| n as u32).unwrap_or(cfg.cases);
    let mut stream = fnv1a(name);
    for case in 0..cases {
        let case_seed = splitmix64(&mut stream);
        let mut rng = Pcg32::seed_from_u64(case_seed);
        let mut tree = strategy.new_tree(&mut rng);
        let first = match probe(&mut test, tree.current()) {
            Ok(()) => continue,
            Err(msg) => msg,
        };

        let (failing, last_msg) = shrink_failure(cfg, &mut tree, first, &mut test);
        panic!(
            "[testkit] property '{name}' failed (case {case_no} of {cases}).\n\
             minimal input: {failing:?}\n\
             assertion: {last_msg}\n\
             reproduce with: {SEED_ENV}={case_seed:#x} cargo test {short}",
            case_no = case + 1,
            short = name.rsplit("::").next().unwrap_or(name),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run_property(
            &Config::with_cases(50),
            "tests::count",
            &(0u32..10),
            |v| {
                count += 1;
                assert!(v < 10);
            },
        );
        assert_eq!(count, 50);
    }

    #[test]
    fn failing_property_shrinks_and_reports_seed() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            run_property(
                &Config::with_cases(256),
                "tests::shrinker",
                &(0u32..10_000),
                |v| assert!(v < 777, "too big"),
            );
        }));
        let msg = panic_message(result.unwrap_err());
        assert!(msg.contains("TESTKIT_SEED=0x"), "seed in report: {msg}");
        assert!(
            msg.contains("minimal input: 777"),
            "shrunk to boundary: {msg}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            run_property(
                &Config::with_cases(20),
                "tests::det",
                &any::<u64>(),
                |v| out.push(v),
            );
        }
        assert_eq!(a, b, "same property name → same case stream");
    }

    #[test]
    fn distinct_names_get_distinct_streams() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        run_property(&Config::with_cases(8), "tests::s1", &any::<u64>(), |v| {
            a.push(v)
        });
        run_property(&Config::with_cases(8), "tests::s2", &any::<u64>(), |v| {
            b.push(v)
        });
        assert_ne!(a, b);
    }

    #[test]
    fn vector_failure_shrinks_small() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            run_property(
                &Config::with_cases(64),
                "tests::vecshrink",
                &crate::collection::vec(0u32..100, 0..20),
                |v: Vec<u32>| assert!(v.len() < 5),
            );
        }));
        let msg = panic_message(result.unwrap_err());
        // Greedy shrinking: length cut to the boundary (5), every
        // element simplified to 0.
        assert!(
            msg.contains("minimal input: [0, 0, 0, 0, 0]"),
            "fully shrunk: {msg}"
        );
    }
}
