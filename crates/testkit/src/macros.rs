//! The `proptest!`-compatible macro layer: property definitions,
//! in-property assertions, and `prop_oneof!` unions.

/// Defines property tests. Drop-in for the `proptest!` subset this
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in any::<u32>(), b in 0u32..100) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
///
/// Each property becomes a normal `#[test]` that draws `cases` inputs,
/// panics on the first failure after greedy shrinking, and prints a
/// `TESTKIT_SEED` value that replays the failing input.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__testkit_properties! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__testkit_properties! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion target of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __testkit_properties {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strategy = ( $($strat,)+ );
                $crate::runner::run_property(
                    &__cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    &__strategy,
                    |( $($arg,)+ )| $body,
                );
            }
        )*
    };
}

/// Asserts a condition inside a property; on failure the runner
/// shrinks the input and reports it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property (shrinking counterpart of
/// `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    panic!(
                        "prop_assert_eq! failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    panic!(
                        "prop_assert_eq! failed: {}\n  left: {:?}\n right: {:?}",
                        format_args!($($fmt)+), l, r
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    panic!(
                        "prop_assert_ne! failed: `{}` == `{}`\n  both: {:?}",
                        stringify!($left), stringify!($right), l
                    );
                }
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn macro_single_arg(v in 0u32..100) {
            prop_assert!(v < 100);
        }

        #[test]
        fn macro_multiple_args(a in any::<u8>(), b in 1u16..=5, flag in any::<bool>()) {
            prop_assert!(u16::from(a) <= 255);
            prop_assert!((1..=5).contains(&b));
            prop_assert_eq!(flag || !flag, true);
        }

        /// Doc comments on properties must be accepted.
        #[test]
        fn macro_oneof_and_map(v in prop_oneof![Just(1u32), Just(5u32), (10u32..20)]) {
            prop_assert!(v == 1 || v == 5 || (10..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn macro_config_applies(_v in any::<u64>()) {
            // Cases counted via the deterministic stream: just verify
            // the block compiles and runs with an explicit config.
            prop_assert!(true);
        }
    }
}
