#![warn(missing_docs)]

//! # ndroid-testkit
//!
//! A hermetic, zero-dependency replacement for the three crates.io
//! test dependencies the workspace used to pull (`rand`, `proptest`,
//! `criterion`), so `cargo build --offline && cargo test --offline`
//! work with no registry access at all:
//!
//! * [`rng`] — deterministic [`Pcg32`]/SplitMix64 PRNG with the
//!   `rand::Rng`-shaped surface the corpus generator needs
//!   (`gen_range`, `gen_bool`, `shuffle`, `choose`).
//! * [`strategy`] / [`collection`] / [`macros`](crate::proptest!) — a
//!   minimal property-test harness compatible with the `proptest`
//!   subset used by the seven property suites: integer ranges,
//!   `any::<T>()`, `Just`, tuples, `prop_map` / `prop_flat_map`,
//!   `prop_oneof!`, `collection::vec`, and greedy integer/vector
//!   shrinking.
//! * [`runner`] — the case loop. Every failure report includes a
//!   `TESTKIT_SEED=0x…` line; re-running the named test with that
//!   variable set replays the exact failing input.
//! * [`bench`] — a micro-bench timer (warmup + median-of-N +
//!   throughput) replacing criterion, writing `BENCH_<suite>.json`.
//!
//! ## Porting note
//!
//! Test files swap one import line and keep everything else:
//!
//! ```ignore
//! use ndroid_testkit::prelude::*;   // proptest!, prop_assert!, any, Just,
//!                                   // collection::vec, ProptestConfig…
//! ```
//!
//! (An `use ndroid_testkit as proptest;` alias does **not** work — the
//! crate alias collides with the glob-imported `proptest!` macro and
//! rustc's import resolution gets stuck.)

pub mod bench;
pub mod collection;
pub mod macros;
pub mod rng;
pub mod runner;
pub mod strategy;

pub use rng::Pcg32;
pub use runner::Config;

/// Name-compatible alias so `#![proptest_config(...)]` blocks read the
/// same as under proptest.
pub type ProptestConfig = runner::Config;

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::rng::Pcg32;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union, ValueTree};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
