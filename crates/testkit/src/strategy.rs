//! A minimal property-testing strategy layer, API-compatible with the
//! subset of `proptest` this workspace uses: range and `any::<T>()`
//! strategies, `Just`, tuples, `prop_map` / `prop_flat_map`,
//! `prop_oneof!` unions, and `collection::vec`.
//!
//! Generation follows proptest's value-tree design: a [`Strategy`]
//! produces a [`ValueTree`] from an RNG; the tree yields the current
//! value and supports greedy shrinking via `simplify` (make the value
//! simpler) and `complicate` (step back after over-shrinking).

use crate::rng::Pcg32;
use std::fmt::Debug;
use std::rc::Rc;

/// A generated value plus its shrink state.
pub trait ValueTree {
    /// The value type produced.
    type Value;

    /// The current value (owned; trees clone internally).
    fn current(&self) -> Self::Value;

    /// Attempts to make the current value simpler. Returns `false`
    /// when no simpler candidate exists.
    fn simplify(&mut self) -> bool;

    /// Undoes the most recent `simplify` after the simpler value
    /// passed the property (i.e. shrank too far). Returns `false` when
    /// there is nothing to restore.
    fn complicate(&mut self) -> bool;
}

impl<V> ValueTree for Box<dyn ValueTree<Value = V>> {
    type Value = V;
    fn current(&self) -> V {
        (**self).current()
    }
    fn simplify(&mut self) -> bool {
        (**self).simplify()
    }
    fn complicate(&mut self) -> bool {
        (**self).complicate()
    }
}

/// A recipe for generating values of one shape.
pub trait Strategy {
    /// The value type produced.
    type Value: Clone + Debug + 'static;

    /// Draws a fresh value tree from the RNG.
    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = Self::Value>>;

    /// Maps generated values through `f` (shrinking still happens on
    /// the pre-map value).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            source: self,
            f: Rc::new(f),
        }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation). Shrinking is confined to the
    /// second stage.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        FlatMap {
            source: self,
            f: Rc::new(f),
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`, whose arms
    /// have distinct concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Clone + Debug + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = V>> {
        self.0.new_tree(rng)
    }
}

// --- Just ------------------------------------------------------------

/// Always produces a clone of the wrapped value; never shrinks.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

struct JustTree<T>(T);

impl<T: Clone> ValueTree for JustTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
    fn simplify(&mut self) -> bool {
        false
    }
    fn complicate(&mut self) -> bool {
        false
    }
}

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn new_tree(&self, _rng: &mut Pcg32) -> Box<dyn ValueTree<Value = T>> {
        Box::new(JustTree(self.0.clone()))
    }
}

// --- integers --------------------------------------------------------

/// Integer types usable as range strategies.
pub trait IntValue: Copy + Clone + Debug + PartialOrd + 'static {
    /// Lossless widening for shrink arithmetic.
    fn to_i128(self) -> i128;
    /// Narrowing back (values stay in the original range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! int_value {
    ($($t:ty),*) => {$(
        impl IntValue for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> $t { v as $t }
        }
    )*};
}
int_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Tree for an integer constrained to `[lo, hi]`: a binary search
/// toward the simplest in-range value (0 when the range contains it,
/// else the bound nearest zero).
struct RangeTree<T: IntValue> {
    curr: i128,
    /// Last value known to fail (shrinking retreats here).
    hi: i128,
    /// Simplest candidate still worth trying.
    target: i128,
    _marker: std::marker::PhantomData<T>,
}

impl<T: IntValue> ValueTree for RangeTree<T> {
    type Value = T;

    fn current(&self) -> T {
        T::from_i128(self.curr)
    }

    fn simplify(&mut self) -> bool {
        if self.curr == self.target {
            return false;
        }
        self.hi = self.curr;
        self.curr = self.target + (self.curr - self.target) / 2;
        true
    }

    fn complicate(&mut self) -> bool {
        if self.curr == self.hi {
            return false;
        }
        // The value at `curr` passed; anything at least one step back
        // toward the last failure may still fail.
        self.target = if self.curr < self.hi {
            self.curr + 1
        } else {
            self.curr - 1
        };
        self.curr = self.hi;
        true
    }
}

fn tree_with_value<T: IntValue>(lo: i128, hi: i128, curr: i128) -> Box<dyn ValueTree<Value = T>> {
    let target = if lo <= 0 && 0 <= hi {
        0
    } else if lo > 0 {
        lo
    } else {
        hi
    };
    Box::new(RangeTree::<T> {
        curr,
        hi: curr,
        target,
        _marker: std::marker::PhantomData,
    })
}

fn range_tree<T: IntValue>(rng: &mut Pcg32, lo: i128, hi: i128) -> Box<dyn ValueTree<Value = T>> {
    assert!(lo <= hi, "empty strategy range");
    let span = (hi - lo + 1) as u128;
    let curr = lo + (rng.next_u64() as u128 % span) as i128;
    tree_with_value(lo, hi, curr)
}

impl<T: IntValue> Strategy for std::ops::Range<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = T>> {
        range_tree(rng, self.start.to_i128(), self.end.to_i128() - 1)
    }
}

impl<T: IntValue> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = T>> {
        range_tree(rng, self.start().to_i128(), self.end().to_i128())
    }
}

// --- any::<T>() ------------------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Clone + Debug + 'static {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The whole-domain strategy for `T` (proptest's `any`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Whole-domain integer strategy with edge-case bias: a slice of draws
/// lands on 0 / ±1 / MIN / MAX, the rest are uniform.
#[derive(Debug, Clone)]
pub struct IntAny<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for IntAny<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = $t>> {
                let specials: [$t; 4] = [0 as $t, 1 as $t, <$t>::MIN, <$t>::MAX];
                let v: $t = if rng.gen_bool(0.10) {
                    *rng.choose(&specials).unwrap()
                } else {
                    rng.next_u64() as $t
                };
                tree_with_value(<$t>::MIN.to_i128(), <$t>::MAX.to_i128(), v.to_i128())
            }
        }
        impl Arbitrary for $t {
            type Strategy = IntAny<$t>;
            fn arbitrary() -> IntAny<$t> {
                IntAny { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<bool>()`: uniform, shrinks `true → false`.
#[derive(Debug, Clone)]
pub struct BoolAny;

struct BoolTree {
    curr: bool,
    orig: bool,
}

impl ValueTree for BoolTree {
    type Value = bool;
    fn current(&self) -> bool {
        self.curr
    }
    fn simplify(&mut self) -> bool {
        if self.curr {
            self.curr = false;
            true
        } else {
            false
        }
    }
    fn complicate(&mut self) -> bool {
        if self.curr != self.orig {
            self.curr = self.orig;
            true
        } else {
            false
        }
    }
}

impl Strategy for BoolAny {
    type Value = bool;
    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = bool>> {
        let v = rng.gen_bool(0.5);
        Box::new(BoolTree { curr: v, orig: v })
    }
}

impl Arbitrary for bool {
    type Strategy = BoolAny;
    fn arbitrary() -> BoolAny {
        BoolAny
    }
}

/// `any::<String>()`: 0–32 chars mixing ASCII with a few multi-byte
/// code points; shrinks by dropping characters from the end.
#[derive(Debug, Clone)]
pub struct StringAny;

struct StringTree {
    chars: Vec<char>,
    removed: Vec<char>,
}

impl ValueTree for StringTree {
    type Value = String;
    fn current(&self) -> String {
        self.chars.iter().collect()
    }
    fn simplify(&mut self) -> bool {
        match self.chars.pop() {
            Some(c) => {
                self.removed.push(c);
                true
            }
            None => false,
        }
    }
    fn complicate(&mut self) -> bool {
        match self.removed.pop() {
            Some(c) => {
                self.chars.push(c);
                true
            }
            None => false,
        }
    }
}

impl Strategy for StringAny {
    type Value = String;
    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = String>> {
        let len = rng.gen_range(0usize..32);
        let chars = (0..len)
            .map(|_| match rng.gen_range(0u32..10) {
                0 => char::from_u32(rng.gen_range(0x80u32..0x2000)).unwrap_or('¤'),
                1 => '\u{1F980}', // astral-plane crab, 4 UTF-8 bytes
                _ => rng.gen_range(0x20u8..0x7F) as char,
            })
            .collect();
        Box::new(StringTree {
            chars,
            removed: Vec::new(),
        })
    }
}

impl Arbitrary for String {
    type Strategy = StringAny;
    fn arbitrary() -> StringAny {
        StringAny
    }
}

// --- map / flat_map --------------------------------------------------

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F: ?Sized> {
    source: S,
    f: Rc<F>,
}

struct MapTree<V, O> {
    inner: Box<dyn ValueTree<Value = V>>,
    f: Rc<dyn Fn(V) -> O>,
}

impl<V, O> ValueTree for MapTree<V, O> {
    type Value = O;
    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }
    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }
    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug + 'static,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;
    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = O>> {
        Box::new(MapTree {
            inner: self.source.new_tree(rng),
            f: self.f.clone() as Rc<dyn Fn(S::Value) -> O>,
        })
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F: ?Sized> {
    source: S,
    f: Rc<F>,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + 'static,
{
    type Value = S2::Value;
    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = S2::Value>> {
        let source_value = self.source.new_tree(rng).current();
        let second = (self.f)(source_value);
        second.new_tree(rng)
    }
}

// --- unions (prop_oneof!) --------------------------------------------

/// Uniform choice between same-valued strategies; shrinking stays
/// within the chosen arm (and retries earlier arms once exhausted).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Clone + Debug + 'static> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Clone + Debug + 'static> Strategy for Union<V> {
    type Value = V;
    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = V>> {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].new_tree(rng)
    }
}

// --- tuples ----------------------------------------------------------

macro_rules! tuple_strategy {
    ($name:ident : $(($S:ident, $idx:tt)),+) => {
        /// Shrink state for one tuple arity: components simplify
        /// left-to-right, greedily.
        pub struct $name<$($S: ValueTree),+> {
            trees: ($($S,)+),
            pos: usize,
            last: usize,
        }

        impl<$($S: ValueTree),+> ValueTree for $name<$($S),+> {
            type Value = ($($S::Value,)+);

            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }

            fn simplify(&mut self) -> bool {
                let n = [$($idx,)+].len();
                while self.pos < n {
                    let stepped = match self.pos {
                        $($idx => self.trees.$idx.simplify(),)+
                        _ => false,
                    };
                    if stepped {
                        self.last = self.pos;
                        return true;
                    }
                    self.pos += 1;
                }
                false
            }

            fn complicate(&mut self) -> bool {
                match self.last {
                    $($idx => self.trees.$idx.complicate(),)+
                    _ => false,
                }
            }
        }

        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = Self::Value>> {
                Box::new($name {
                    trees: ($(self.$idx.new_tree(rng),)+),
                    pos: 0,
                    last: 0,
                })
            }
        }
    };
}

tuple_strategy!(TupleTree1: (A, 0));
tuple_strategy!(TupleTree2: (A, 0), (B, 1));
tuple_strategy!(TupleTree3: (A, 0), (B, 1), (C, 2));
tuple_strategy!(TupleTree4: (A, 0), (B, 1), (C, 2), (D, 3));
tuple_strategy!(TupleTree5: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
tuple_strategy!(TupleTree6: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
tuple_strategy!(TupleTree7: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
tuple_strategy!(TupleTree8: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7));
tuple_strategy!(TupleTree9: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7), (I, 8));
tuple_strategy!(TupleTree10: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7), (I, 8), (J, 9));

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Pcg32 {
        Pcg32::seed_from_u64(0xDEAD_BEEF)
    }

    #[test]
    fn range_strategy_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let t = (5u32..10).new_tree(&mut r);
            assert!((5..10).contains(&t.current()));
            let t = (-8i32..=8).new_tree(&mut r);
            assert!((-8..=8).contains(&t.current()));
        }
    }

    #[test]
    fn integer_shrinks_toward_zero_in_range() {
        let mut r = rng();
        let mut t = (0u32..1000).new_tree(&mut r);
        // Simplify all the way: must terminate at the target.
        while t.simplify() {}
        assert_eq!(t.current(), 0);
        let mut t = (10u32..1000).new_tree(&mut r);
        while t.simplify() {}
        assert_eq!(t.current(), 10, "target is the low bound when 0 excluded");
        let mut t = (-100i32..=-50).new_tree(&mut r);
        while t.simplify() {}
        assert_eq!(t.current(), -50, "negative range shrinks toward 0 side");
    }

    #[test]
    fn shrink_complicate_binary_search_converges() {
        // Property: value >= 573 fails. The shrinker should find a
        // small counterexample at or near 573.
        let mut r = rng();
        let failing = |v: u32| v >= 573;
        let mut t = loop {
            let t = (0u32..10_000).new_tree(&mut r);
            if failing(t.current()) {
                break t;
            }
        };
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 200, "shrink loop must converge");
            if !t.simplify() {
                break;
            }
            if !failing(t.current()) && !t.complicate() {
                break;
            }
        }
        assert_eq!(t.current(), 573, "binary search finds the boundary");
    }

    #[test]
    fn map_shrinks_source() {
        let mut r = rng();
        let s = (0u32..100).prop_map(|v| v * 2);
        let mut t = s.new_tree(&mut r);
        assert_eq!(t.current() % 2, 0);
        while t.simplify() {}
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn flat_map_dependent_generation() {
        let mut r = rng();
        let s = (1u32..10).prop_flat_map(|n| (Just(n), 0u32..n));
        for _ in 0..200 {
            let (n, v) = s.new_tree(&mut r).current();
            assert!(v < n, "{v} < {n}");
        }
    }

    #[test]
    fn union_picks_all_arms() {
        let mut r = rng();
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed(), Just(3u32).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.new_tree(&mut r).current());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn tuple_components_shrink_independently() {
        let mut r = rng();
        let mut t = ((0u32..50), (0u32..50)).new_tree(&mut r);
        while t.simplify() {}
        assert_eq!(t.current(), (0, 0));
    }

    #[test]
    fn bool_and_string_arbitrary() {
        let mut r = rng();
        let mut t = any::<bool>().new_tree(&mut r);
        while t.simplify() {}
        assert!(!t.current());
        let mut t = any::<String>().new_tree(&mut r);
        let orig_len = t.current().chars().count();
        while t.simplify() {}
        assert!(t.current().is_empty());
        // complicate restores one char at a time
        if orig_len > 0 {
            assert!(t.complicate());
            assert_eq!(t.current().chars().count(), 1);
        }
    }

    #[test]
    fn any_int_hits_edges_sometimes() {
        let mut r = rng();
        let mut zero_or_max = 0;
        for _ in 0..2_000 {
            let v = any::<u32>().new_tree(&mut r).current();
            if v == 0 || v == u32::MAX || v == 1 {
                zero_or_max += 1;
            }
        }
        assert!(zero_or_max > 20, "edge bias present ({zero_or_max})");
    }
}
