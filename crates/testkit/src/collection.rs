//! Collection strategies — `collection::vec`, mirroring
//! `proptest::collection::vec`.

use crate::rng::Pcg32;
use crate::strategy::{Strategy, ValueTree};
use std::fmt::Debug;
use std::ops::{Bound, RangeBounds};

/// Length bounds for a generated vector (built from any usize range).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl<R: RangeBounds<usize>> From<R> for SizeRange {
    fn from(r: R) -> SizeRange {
        let min = match r.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let max = match r.end_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n.saturating_sub(1),
            Bound::Unbounded => 64,
        };
        assert!(min <= max, "empty vec size range");
        SizeRange { min, max }
    }
}

/// `vec(element_strategy, 0..64)` — a vector whose length is drawn
/// from the size range and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_tree(&self, rng: &mut Pcg32) -> Box<dyn ValueTree<Value = Vec<S::Value>>> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        let elems = (0..len).map(|_| self.element.new_tree(rng)).collect();
        Box::new(VecTree {
            elems,
            min_len: self.size.min,
            phase: Phase::Remove,
            elem_pos: 0,
            last: LastOp::None,
            backup: None,
        })
    }
}

enum Phase {
    /// Dropping elements from the end (greedy length reduction).
    Remove,
    /// Shrinking surviving elements left-to-right.
    Elements,
}

enum LastOp {
    None,
    Removed,
    Elem(usize),
}

struct VecTree<V> {
    elems: Vec<Box<dyn ValueTree<Value = V>>>,
    min_len: usize,
    phase: Phase,
    elem_pos: usize,
    last: LastOp,
    backup: Option<Box<dyn ValueTree<Value = V>>>,
}

impl<V: Clone> ValueTree for VecTree<V> {
    type Value = Vec<V>;

    fn current(&self) -> Vec<V> {
        self.elems.iter().map(|t| t.current()).collect()
    }

    fn simplify(&mut self) -> bool {
        if let Phase::Remove = self.phase {
            if self.elems.len() > self.min_len {
                self.backup = self.elems.pop();
                self.last = LastOp::Removed;
                return true;
            }
            self.phase = Phase::Elements;
        }
        while self.elem_pos < self.elems.len() {
            if self.elems[self.elem_pos].simplify() {
                self.last = LastOp::Elem(self.elem_pos);
                return true;
            }
            self.elem_pos += 1;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        match self.last {
            LastOp::None => false,
            LastOp::Removed => {
                // The shorter vector passed — that element mattered.
                // Restore it and move on to element-wise shrinking.
                if let Some(t) = self.backup.take() {
                    self.elems.push(t);
                }
                self.phase = Phase::Elements;
                self.last = LastOp::None;
                true
            }
            LastOp::Elem(i) => self.elems[i].complicate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn length_respects_bounds() {
        let mut rng = Pcg32::seed_from_u64(3);
        let s = vec(any::<u8>(), 2..7);
        for _ in 0..200 {
            let v = s.new_tree(&mut rng).current();
            assert!((2..7).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn shrinks_to_min_len_and_simple_elements() {
        let mut rng = Pcg32::seed_from_u64(5);
        let s = vec(0u32..100, 1..8);
        let mut t = s.new_tree(&mut rng);
        while t.simplify() {}
        let v = t.current();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0], 0);
    }

    #[test]
    fn complicate_restores_removed_element() {
        let mut rng = Pcg32::seed_from_u64(8);
        let s = vec(0u32..10, 3..6);
        let mut t = s.new_tree(&mut rng);
        let before = t.current();
        if t.simplify() {
            assert_eq!(t.current().len(), before.len() - 1);
            assert!(t.complicate());
            assert_eq!(t.current().len(), before.len());
        }
    }

    #[test]
    fn nested_vecs_work() {
        let mut rng = Pcg32::seed_from_u64(9);
        let s = vec(vec(any::<u8>(), 0..4), 1..5);
        let v = s.new_tree(&mut rng).current();
        assert!(!v.is_empty());
        for inner in v {
            assert!(inner.len() < 4);
        }
    }

    #[test]
    fn tuple_elements_in_vec() {
        let mut rng = Pcg32::seed_from_u64(10);
        let s = vec((0u16..32, any::<u32>()), 0..16);
        let v = s.new_tree(&mut rng).current();
        for (a, _) in v {
            assert!(a < 32);
        }
    }
}
