//! Deterministic pseudo-random number generation: SplitMix64 for seed
//! expansion and PCG-XSH-RR 64/32 ("Pcg32") as the workhorse stream.
//!
//! The surface mirrors the parts of `rand::Rng` the workspace actually
//! uses — `gen_range`, `gen_bool`, `shuffle`, `choose` — so callers
//! read the same as before the crates.io dependency was dropped.
//! Everything is reproducible from a single `u64` seed, which is what
//! the property-test runner prints on failure (`TESTKIT_SEED`).

use std::ops::{Bound, RangeBounds};

/// SplitMix64 step: the standard seed expander (Steele et al.). Used
/// both to initialize [`Pcg32`] and to derive per-case seeds in the
/// property runner.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A PCG-XSH-RR 64/32 generator: 64-bit LCG state, 32-bit output with
/// a random rotation. Small, fast, and statistically solid for test
/// generation (this is not a cryptographic RNG).
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Seeds the generator from a single `u64` via SplitMix64 (both
    /// the state and the stream-selection increment are derived).
    pub fn seed_from_u64(seed: u64) -> Pcg32 {
        let mut sm = seed;
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1; // must be odd
        let mut rng = Pcg32 { state: 0, inc };
        // Standard PCG init sequence.
        rng.next_u32();
        rng.state = rng.state.wrapping_add(state);
        rng.next_u32();
        rng
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in `range` (half-open or inclusive), like
    /// `rand::Rng::gen_range`. Panics on an empty range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.successor(),
            Bound::Unbounded => T::MIN_VALUE,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.predecessor(),
            Bound::Unbounded => T::MAX_VALUE,
        };
        T::sample_inclusive(self, lo, hi)
    }

    /// Fisher–Yates shuffle, like `rand::seq::SliceRandom::shuffle`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, like `SliceRandom::choose`.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

/// Integer types [`Pcg32::gen_range`] can sample uniformly.
pub trait UniformSample: Copy + PartialOrd {
    /// Smallest representable value.
    const MIN_VALUE: Self;
    /// Largest representable value.
    const MAX_VALUE: Self;
    /// `self + 1` (used to normalize excluded start bounds).
    fn successor(self) -> Self;
    /// `self - 1` (used to normalize excluded end bounds).
    fn predecessor(self) -> Self;
    /// Uniform sample in `[lo, hi]`.
    fn sample_inclusive(rng: &mut Pcg32, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            const MIN_VALUE: $t = <$t>::MIN;
            const MAX_VALUE: $t = <$t>::MAX;
            fn successor(self) -> $t { self + 1 }
            fn predecessor(self) -> $t { self - 1 }
            fn sample_inclusive(rng: &mut Pcg32, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                // Modulo with a 128-bit product keeps bias negligible
                // for test-sized spans.
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

macro_rules! uniform_int {
    ($($t:ty : $u:ty),*) => {$(
        impl UniformSample for $t {
            const MIN_VALUE: $t = <$t>::MIN;
            const MAX_VALUE: $t = <$t>::MAX;
            fn successor(self) -> $t { self + 1 }
            fn predecessor(self) -> $t { self - 1 }
            fn sample_inclusive(rng: &mut Pcg32, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

uniform_uint!(u8, u16, u32, u64, usize);
uniform_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-50..=50);
            assert!((-50..=50).contains(&w));
            let u: usize = rng.gen_range(1..=4);
            assert!((1..=4).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = Pcg32::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = Pcg32::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = Pcg32::seed_from_u64(17);
        let xs = [1, 2, 3];
        for _ in 0..50 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        assert!(rng.choose::<u32>(&[]).is_none());
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the published
        // SplitMix64 algorithm.
        let mut s = 1234567u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        assert_eq!(a, {
            let mut s2 = 1234567u64;
            splitmix64(&mut s2)
        });
    }
}
