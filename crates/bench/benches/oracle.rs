//! Differential-oracle cost benchmarks: what does soundness checking
//! cost? Measures (a) raw per-effect propagation — the optimized
//! `propagate` into the paged map vs the reference `ref_propagate`
//! into the sparse map — on a recorded effect stream, (b) a full
//! dual-run `check_oracle` on a representative generated program, and
//! (c) a gallery app end-to-end under the optimized engine vs the
//! reference engine (`SystemConfig::reference()`). Writes
//! `BENCH_oracle.json`; `TESTKIT_BENCH_SMOKE=1` runs a minimal pass
//! for CI.

use ndroid_arm::cond::Cond;
use ndroid_arm::encode::encode;
use ndroid_arm::exec::{step, Effect};
use ndroid_arm::insn::{DpOp, Instr, MemOffset, MemSize, Op2, ShiftKind};
use ndroid_arm::reg::Reg;
use ndroid_arm::{Cpu, Memory};
use ndroid_apps::{qq_phonebook, App};
use ndroid_core::oracle::{check_oracle, ref_propagate, OracleProgram};
use ndroid_core::tracer::propagate;
use ndroid_core::{EngineKind, SystemConfig};
use ndroid_dvm::Taint;
use ndroid_emu::layout::{NATIVE_CODE_BASE, NATIVE_HEAP_BASE, RETURN_SENTINEL};
use ndroid_emu::shadow::{RefShadowState, ShadowState};
use ndroid_testkit::bench::{black_box, Suite};

const DATA: u32 = NATIVE_HEAP_BASE + 0x0001_0000;
const BX_LR: u32 = 0xE12F_FF1E;

/// A mixed straight-line workload: data-processing, loads and stores
/// with immediate and register-writeback addressing — the shapes the
/// tracer's hot path sees.
fn workload() -> Vec<Instr> {
    let mut body = Vec::new();
    for i in 0..8u8 {
        body.push(Instr::Dp {
            cond: Cond::Al,
            op: [DpOp::Add, DpOp::Eor, DpOp::Orr, DpOp::Sub][i as usize % 4],
            s: false,
            rd: [Reg::R0, Reg::R1, Reg::R5, Reg::R6][i as usize % 4],
            rn: Reg::R0,
            op2: Op2::RegShiftImm {
                rm: Reg::R1,
                kind: ShiftKind::Lsl,
                amount: i % 4,
            },
        });
        body.push(Instr::Mem {
            cond: Cond::Al,
            load: i % 2 == 0,
            size: MemSize::Word,
            rd: Reg::R5,
            rn: Reg::R9,
            offset: if i % 3 == 0 {
                MemOffset::Reg {
                    rm: Reg::R2,
                    kind: ShiftKind::Lsl,
                    amount: 0,
                }
            } else {
                MemOffset::Imm(4 * i as u16)
            },
            pre: i % 3 != 2,
            up: true,
            writeback: i % 3 == 0,
        });
    }
    body
}

fn workload_program() -> OracleProgram {
    let mut words: Vec<u32> = workload()
        .iter()
        .map(|i| encode(i).expect("encodable"))
        .collect();
    words.push(BX_LR);
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let mut p = OracleProgram {
        sections: vec![(NATIVE_CODE_BASE, bytes)],
        entry: NATIVE_CODE_BASE,
        regs: [0; 16],
        reg_taints: [Taint::CLEAR; 16],
        mem_taints: vec![(DATA, 64, Taint::SMS)],
        max_steps: 4096,
    };
    p.regs[2] = 8;
    p.regs[9] = DATA;
    p.reg_taints[1] = Taint::CONTACTS;
    p.reg_taints[2] = Taint::LOCATION;
    p
}

/// Records the effect stream of one run of the workload program.
fn record_effects() -> Vec<Effect> {
    let p = workload_program();
    let mut cpu = Cpu::new();
    let mut mem = Memory::new();
    for (addr, bytes) in &p.sections {
        mem.write_bytes(*addr, bytes);
    }
    cpu.regs = p.regs;
    cpu.regs[14] = RETURN_SENTINEL;
    cpu.set_pc(p.entry);
    let mut effects = Vec::new();
    while cpu.pc() != RETURN_SENTINEL {
        effects.push(step(&mut cpu, &mut mem).expect("workload steps"));
    }
    effects
}

/// Raw propagation cost per engine on an identical effect stream.
fn propagate_benches(suite: &mut Suite) {
    let effects = record_effects();

    let mut shadow = ShadowState::new();
    shadow.regs[1] = Taint::CONTACTS;
    suite.bench("propagate/optimized_paged", || {
        for e in &effects {
            propagate(&mut shadow, e);
        }
        black_box(shadow.regs[5]);
    });

    let mut reference = RefShadowState::new();
    reference.regs[1] = Taint::CONTACTS;
    suite.bench("propagate/reference_sparse", || {
        for e in &effects {
            ref_propagate(
                &mut reference.regs,
                &mut reference.vfp,
                &mut reference.mem,
                e,
            );
        }
        black_box(reference.regs[5]);
    });
}

/// Full dual-run cross-validation cost for one generated program.
fn dual_run_bench(suite: &mut Suite) {
    let p = workload_program();
    suite.bench("check_oracle/workload_program", || {
        black_box(check_oracle(&p).expect("oracle equality"));
    });
}

/// End-to-end gallery app: optimized engine vs reference engine.
fn gallery_ab_benches(suite: &mut Suite) {
    for engine in [EngineKind::Optimized, EngineKind::Reference] {
        suite.bench(&format!("gallery/qq_phonebook/{engine}"), || {
            let app: App = qq_phonebook::qq_phonebook();
            let sys = app
                .run_with(SystemConfig::ndroid().engine(engine))
                .expect("app run");
            black_box(sys.report().leaks().len());
        });
    }
}

fn main() {
    let mut suite = Suite::new("oracle");
    propagate_benches(&mut suite);
    dual_run_bench(&mut suite);
    gallery_ab_benches(&mut suite);
    suite.finish();
}
