//! Provenance recording overhead: the three gallery apps run end to
//! end at every [`ProvenanceLevel`], plus a pure-native Thumb workload
//! (the tracer hot path the `Off` contract protects). Writes
//! `BENCH_provenance.json`; `TESTKIT_BENCH_SMOKE=1` runs a minimal
//! pass.
//!
//! Interpreting the numbers: `gallery/off` must sit within measurement
//! noise of `gallery/baseline` (a config that never mentions
//! provenance) — `Level::Off` leaves the handle's ring unallocated, so
//! the hot path pays exactly one null-check branch per potential
//! emission. `summary` adds boundary/libc/sink events only; `full`
//! additionally aggregates per-basic-block native summaries, so it is
//! the upper bound.

use ndroid_apps::App;
use ndroid_core::{ProvEvent, ProvHandle, ProvQuery, ProvenanceLevel, SystemConfig};
use ndroid_testkit::bench::{black_box, Suite};

const GALLERY: [fn() -> App; 3] = [
    ndroid_apps::qq_phonebook::qq_phonebook,
    ndroid_apps::thumb_spy::thumb_spy,
    ndroid_apps::crypto_hider::crypto_hider,
];

fn run_gallery(config: &SystemConfig) {
    for build in GALLERY {
        let sys = build().run_with(config.clone()).expect("gallery app runs");
        black_box(sys.report());
    }
}

fn main() {
    let mut suite = Suite::new("provenance");
    // A config that never touches the provenance knob: the pre-subsystem
    // behavior, for the zero-cost comparison.
    suite.bench("gallery/baseline", || {
        run_gallery(&SystemConfig::ndroid().quiet(true));
    });
    for (tag, level) in [
        ("off", ProvenanceLevel::Off),
        ("summary", ProvenanceLevel::Summary),
        ("full", ProvenanceLevel::Full),
    ] {
        let config = SystemConfig::ndroid().quiet(true).provenance(level);
        suite.bench(&format!("gallery/{tag}"), || {
            run_gallery(&config);
        });
    }
    // The Full level's flow-graph construction and path query, isolated
    // from the runs themselves.
    let sys = GALLERY[0]()
        .run_with(
            SystemConfig::ndroid()
                .quiet(true)
                .provenance(ProvenanceLevel::Full),
        )
        .expect("gallery app runs");
    let events = sys.prov_events();
    suite.bench("graph/build_and_query", || {
        let graph = ndroid_core::FlowGraph::build(&events);
        black_box(graph.total_leak_paths());
        black_box(graph.fingerprint());
    });

    // Tiered-store costs, isolated: a realistic 4096-event stream
    // (the three gallery streams concatenated and cycled, so string
    // interning sees real name reuse) sealed into 1024-event segments.
    let stream: Vec<ProvEvent> = {
        let mut all = Vec::new();
        for build in GALLERY {
            let sys = build()
                .run_with(
                    SystemConfig::ndroid()
                        .quiet(true)
                        .provenance(ProvenanceLevel::Full),
                )
                .expect("gallery app runs");
            all.extend(sys.prov_events());
        }
        all.iter().cycle().take(4096).cloned().collect()
    };
    suite.bench("store/seal", || {
        let h = ProvHandle::tiered(ProvenanceLevel::Full, 1024);
        for ev in &stream {
            h.emit(ev.clone());
        }
        h.seal_segment();
        black_box(h.segments());
    });
    let seal_median_ns = suite.results().last().expect("just benched").median_ns;

    let handle = ProvHandle::tiered(ProvenanceLevel::Full, 1024);
    for ev in &stream {
        handle.emit(ev.clone());
    }
    handle.seal_segment();
    let frozen = handle.store_snapshot().expect("tiered run has a store");
    suite.bench("store/decode", || {
        black_box(frozen.events_vec());
    });
    suite.bench("store/query_label", || {
        black_box(ProvQuery::new().label(0x202).run(&frozen));
    });

    // The gate's derived scalars: wire bytes per sealed event (must
    // stay at or under 40% of the in-memory ProvEvent size) and seal
    // throughput implied by the measured median.
    let sealed: usize = frozen.segments().iter().map(|s| s.len()).sum();
    let bytes_per_event = frozen.encoded_size() as f64 / sealed as f64;
    let bound = 0.4 * std::mem::size_of::<ProvEvent>() as f64;
    assert!(
        bytes_per_event <= bound,
        "sealed encoding too fat: {bytes_per_event:.1} bytes/event (bound {bound:.1})"
    );
    suite.metric("bytes_per_event", bytes_per_event, "bytes");
    suite.metric(
        "events_per_sec",
        stream.len() as f64 * 1e9 / seal_median_ns,
        "events/s",
    );
    suite.finish();
}
