//! Provenance recording overhead: the three gallery apps run end to
//! end at every [`ProvenanceLevel`], plus a pure-native Thumb workload
//! (the tracer hot path the `Off` contract protects). Writes
//! `BENCH_provenance.json`; `TESTKIT_BENCH_SMOKE=1` runs a minimal
//! pass.
//!
//! Interpreting the numbers: `gallery/off` must sit within measurement
//! noise of `gallery/baseline` (a config that never mentions
//! provenance) — `Level::Off` leaves the handle's ring unallocated, so
//! the hot path pays exactly one null-check branch per potential
//! emission. `summary` adds boundary/libc/sink events only; `full`
//! additionally aggregates per-basic-block native summaries, so it is
//! the upper bound.

use ndroid_apps::App;
use ndroid_core::{ProvenanceLevel, SystemConfig};
use ndroid_testkit::bench::{black_box, Suite};

const GALLERY: [fn() -> App; 3] = [
    ndroid_apps::qq_phonebook::qq_phonebook,
    ndroid_apps::thumb_spy::thumb_spy,
    ndroid_apps::crypto_hider::crypto_hider,
];

fn run_gallery(config: &SystemConfig) {
    for build in GALLERY {
        let sys = build().run_with(config.clone()).expect("gallery app runs");
        black_box(sys.report());
    }
}

fn main() {
    let mut suite = Suite::new("provenance");
    // A config that never touches the provenance knob: the pre-subsystem
    // behavior, for the zero-cost comparison.
    suite.bench("gallery/baseline", || {
        run_gallery(&SystemConfig::ndroid().quiet(true));
    });
    for (tag, level) in [
        ("off", ProvenanceLevel::Off),
        ("summary", ProvenanceLevel::Summary),
        ("full", ProvenanceLevel::Full),
    ] {
        let config = SystemConfig::ndroid().quiet(true).provenance(level);
        suite.bench(&format!("gallery/{tag}"), || {
            run_gallery(&config);
        });
    }
    // The Full level's flow-graph construction and path query, isolated
    // from the runs themselves.
    let sys = GALLERY[0]()
        .run_with(
            SystemConfig::ndroid()
                .quiet(true)
                .provenance(ProvenanceLevel::Full),
        )
        .expect("gallery app runs");
    let events = sys.prov_events();
    suite.bench("graph/build_and_query", || {
        let graph = ndroid_core::FlowGraph::build(&events);
        black_box(graph.total_leak_paths());
        black_box(graph.fingerprint());
    });
    suite.finish();
}
