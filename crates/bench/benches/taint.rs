//! Shadow-taint-memory and decode-cache benchmarks. Each range op is
//! measured on both the paged [`TaintMap`] and the pre-paging sparse
//! [`HashTaintMap`] reference so the speedup is a recorded artifact;
//! the decode cache is A/B'd both as a raw `step` vs `step_cached`
//! microbench and end-to-end on cfbench kernels via the
//! `NDroidSystem::icache.enabled` knob. Writes `BENCH_taint.json`;
//! `TESTKIT_BENCH_SMOKE=1` runs a minimal pass for CI.

use ndroid_arm::exec::{step, step_cached};
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::{Assembler, Cond, Cpu, Memory, Reg};
use ndroid_cfbench::all_kernels;
use ndroid_core::Mode;
use ndroid_dvm::Taint;
use ndroid_emu::shadow::{HashTaintMap, TaintMap};
use ndroid_testkit::bench::{black_box, Suite};

/// Base guest address for the taint-map workloads (page-misaligned on
/// purpose so every range op exercises the chunking paths).
const BASE: u32 = 0x4000_0029;
/// Working-set size for the range workloads.
const RANGE: u32 = 64 * 1024;
/// Kernel iterations for the end-to-end cfbench A/B.
const KERNEL_ITERS: u32 = 500;

/// Benchmarks one taint-map implementation. A macro rather than a
/// trait: `HashTaintMap` is scheduled for removal once the paged map
/// has soaked, so the shared surface stays informal.
macro_rules! range_benches {
    ($suite:expr, $variant:literal, $map:ty) => {{
        let suite: &mut Suite = $suite;

        let mut m = <$map>::new();
        suite.bench(concat!("set_clear_range/64KiB/", $variant), || {
            m.set_range(BASE, RANGE, Taint::IMEI);
            m.clear_range(BASE, RANGE);
        });

        let mut m = <$map>::new();
        m.set_range(BASE, RANGE, Taint::SMS);
        suite.bench(concat!("add_range/64KiB/", $variant), || {
            m.add_range(BASE, RANGE, Taint::IMEI);
        });

        // One tainted byte per page: the common "mostly clean" shape.
        let mut m = <$map>::new();
        let mut off = 0u32;
        while off < RANGE {
            m.set(BASE + off, Taint::MIC);
            off += 4096;
        }
        suite.bench(concat!("range_taint/64KiB/sparse/", $variant), || {
            black_box(m.range_taint(BASE, RANGE));
        });
        suite.bench(concat!("range_taint/64KiB/clean/", $variant), || {
            black_box(m.range_taint(BASE + 0x0100_0000, RANGE));
        });

        let mut m = <$map>::new();
        m.set_range(BASE, RANGE, Taint::CONTACTS);
        suite.bench(concat!("copy_range/64KiB/", $variant), || {
            m.copy_range(BASE + 0x0020_0000, BASE, RANGE);
        });

        suite.bench(concat!("get/4096_probes/", $variant), || {
            let mut acc = Taint::CLEAR;
            for off in (0..RANGE).step_by(16) {
                acc |= m.get(BASE + off);
            }
            black_box(acc);
        });
    }};
}

fn taint_map_benches(suite: &mut Suite) {
    range_benches!(suite, "paged", TaintMap);
    range_benches!(suite, "hashmap", HashTaintMap);
}

/// Raw fetch/decode/execute loop: `step` re-decodes every instruction,
/// `step_cached` replays decodes from the [`DecodeCache`].
fn decode_cache_benches(suite: &mut Suite) {
    const SENTINEL: u32 = 0xFFFF_FF00;
    let base = 0x0001_0000;
    let mut asm = Assembler::new(base);
    asm.mov_imm(Reg::R4, 64).unwrap();
    asm.mov_imm(Reg::R0, 0).unwrap();
    let top = asm.here_label();
    asm.add_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.add_imm(Reg::R1, Reg::R1, 2).unwrap();
    asm.add_imm(Reg::R2, Reg::R2, 3).unwrap();
    asm.subs_imm(Reg::R4, Reg::R4, 1).unwrap();
    asm.b_cond(Cond::Ne, top);
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();
    let mut mem = Memory::new();
    mem.write_bytes(base, &code.bytes);

    let mut cpu = Cpu::new();
    suite.bench("exec/hot_loop/step", || {
        cpu.regs[14] = SENTINEL;
        cpu.set_pc(base);
        while cpu.pc() != SENTINEL {
            step(&mut cpu, &mut mem).expect("step");
        }
        black_box(cpu.regs[0]);
    });

    let mut cpu = Cpu::new();
    let mut cache = DecodeCache::new();
    suite.bench("exec/hot_loop/step_cached", || {
        cpu.regs[14] = SENTINEL;
        cpu.set_pc(base);
        while cpu.pc() != SENTINEL {
            step_cached(&mut cpu, &mut mem, &mut cache).expect("step");
        }
        black_box(cpu.regs[0]);
    });
}

/// End-to-end steps/sec on cfbench kernels with the session decode
/// cache toggled off/on.
fn cfbench_ab_benches(suite: &mut Suite) {
    let kernels = all_kernels();
    for name in ["Native MIPS", "Native Memory Read"] {
        let kernel = kernels
            .iter()
            .find(|k| k.name == name)
            .expect("known kernel");
        for (variant, enabled) in [("icache_off", false), ("icache_on", true)] {
            let mut sys = kernel.boot(Mode::NDroid);
            sys.icache.enabled = enabled;
            // Superblock dispatch would bypass the decode cache
            // entirely; keep it off so this A/B measures the stepper's
            // cache (the block-path A/B lives in BENCH_blocks.json).
            sys.blocks.enabled = false;
            suite.bench(&format!("cfbench/{name}/{variant}"), || {
                black_box(kernel.run(&mut sys, KERNEL_ITERS));
            });
        }
    }
}

fn main() {
    let mut suite = Suite::new("taint");
    taint_map_benches(&mut suite);
    decode_cache_benches(&mut suite);
    cfbench_ab_benches(&mut suite);
    suite.finish();
}
