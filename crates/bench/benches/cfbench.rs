//! Per-kernel wall time under each analysis mode (the statistically
//! rigorous companion to `exp_cfbench`), timed by the hermetic
//! `ndroid_testkit::bench` suite. Writes `BENCH_cfbench.json`;
//! `TESTKIT_BENCH_SMOKE=1` runs a minimal pass for CI.

use ndroid_cfbench::all_kernels;
use ndroid_core::Mode;
use ndroid_testkit::bench::Suite;

const ITERS: u32 = 2_000;

fn main() {
    let mut suite = Suite::new("cfbench");
    for kernel in all_kernels() {
        for mode in [Mode::Vanilla, Mode::TaintDroid, Mode::NDroid, Mode::DroidScopeLike] {
            let mut sys = kernel.boot(mode);
            suite.bench(&format!("{}/{}", kernel.name, mode), || {
                kernel.run(&mut sys, ITERS);
            });
        }
    }
    suite.finish();
}
