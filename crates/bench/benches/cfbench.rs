//! Criterion benches: per-kernel wall time under each analysis mode
//! (the statistically rigorous companion to `exp_cfbench`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndroid_cfbench::all_kernels;
use ndroid_core::Mode;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfbench");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(700));
    const ITERS: u32 = 2_000;
    for kernel in all_kernels() {
        for mode in [Mode::Vanilla, Mode::TaintDroid, Mode::NDroid, Mode::DroidScopeLike] {
            group.bench_with_input(
                BenchmarkId::new(kernel.name, mode),
                &mode,
                |b, &mode| {
                    let mut sys = kernel.boot(mode);
                    b.iter(|| kernel.run(&mut sys, ITERS));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
