//! Ablation benches for the design decisions in DESIGN.md §5, timed by
//! the hermetic `ndroid_testkit::bench` suite (writes
//! `BENCH_ablations.json`; `TESTKIT_BENCH_SMOKE=1` for a CI smoke
//! pass):
//!
//! * **D1 — multilevel hooking**: branch-event processing with gating
//!   vs. unconditional deep hooking.
//! * **D2 — libc modeling vs. tracing**: a modeled `memcpy` host call
//!   vs. an instruction-traced ARM `memcpy` loop.
//! * **D5 — hot-handler cache**: the instruction tracer with and
//!   without the cache.

use ndroid_arm::reg::RegList;
use ndroid_arm::{Assembler, Cond, Reg};
use ndroid_core::NDroidAnalysis;
use ndroid_dvm::framework::install_framework;
use ndroid_dvm::{Program, Taint};
use ndroid_emu::layout::NATIVE_CODE_BASE;
use ndroid_emu::runtime::Analysis;
use ndroid_emu::shadow::ShadowState;
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;
use ndroid_testkit::bench::{black_box, Suite};

const SRC: u32 = 0x2000_0000;
const DST: u32 = 0x2000_4000;
const LEN: u32 = 4096;

/// D2 baseline: `memcpy` as a single modeled host call.
fn modeled_memcpy_app() -> ndroid_core::NDroidSystem {
    let mut asm = Assembler::new(NATIVE_CODE_BASE);
    asm.push(RegList::of(&[Reg::LR]));
    asm.ldr_const(Reg::R0, DST);
    asm.ldr_const(Reg::R1, SRC);
    asm.ldr_const(Reg::R2, LEN);
    asm.call_abs(libc_addr("memcpy"));
    asm.pop(RegList::of(&[Reg::PC]));
    build_sys(asm)
}

/// D2 ablation: a real ARM byte-copy loop traced instruction by
/// instruction (what NDroid would pay without the Table VI models).
fn traced_memcpy_app() -> ndroid_core::NDroidSystem {
    let mut asm = Assembler::new(NATIVE_CODE_BASE);
    asm.ldr_const(Reg::R0, DST);
    asm.ldr_const(Reg::R1, SRC);
    asm.ldr_const(Reg::R2, LEN);
    let top = asm.here_label();
    asm.ldrb(Reg::R3, Reg::R1, 0);
    asm.strb(Reg::R3, Reg::R0, 0);
    asm.add_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.add_imm(Reg::R1, Reg::R1, 1).unwrap();
    asm.subs_imm(Reg::R2, Reg::R2, 1).unwrap();
    asm.b_cond(Cond::Ne, top);
    asm.bx(Reg::LR);
    build_sys(asm)
}

fn build_sys(asm: Assembler) -> ndroid_core::NDroidSystem {
    let mut program = Program::new();
    install_framework(&mut program);
    let mut sys = ndroid_core::NDroidSystem::from_config(
        program,
        ndroid_core::SystemConfig::ndroid().quiet(true),
    );
    let code = asm.assemble().unwrap();
    sys.load_native(&code, "libablate.so");
    sys.shadow.mem.set_range(SRC, LEN, Taint::SMS);
    sys
}

fn ablate_libc_model(suite: &mut Suite) {
    let mut sys = modeled_memcpy_app();
    suite.bench("ablate_libc_model/modeled_memcpy_hostcall", || {
        sys.run_native(NATIVE_CODE_BASE, &[]).unwrap();
    });
    let mut sys = traced_memcpy_app();
    suite.bench("ablate_libc_model/traced_memcpy_arm_loop", || {
        sys.run_native(NATIVE_CODE_BASE, &[]).unwrap();
    });
}

fn ablate_multilevel(suite: &mut Suite) {
    let bridge = dvm_addr("dvmCallMethodA");
    let interp = dvm_addr("dvmInterpret");
    // Framework churn: entries to the shared internals from outside
    // third-party code, which gating ignores.
    let mut a = NDroidAnalysis::new();
    let mut sh = ShadowState::new();
    suite.bench("ablate_multilevel/gated", || {
        for i in 0..1000u32 {
            a.on_branch(&mut sh, 0x6100_0000 + (i % 64), bridge);
            a.on_branch(&mut sh, bridge + 0x20, interp);
        }
        black_box(a.stats.branch_events);
    });
    // Simulate unconditional hooking cost: every inner entry pays a
    // policy lookup + trace-formatting charge (what the paper's naive
    // alternative would do inside dvmInterpret).
    let mut a = NDroidAnalysis::new();
    a.gate_hooks = false;
    let mut sh = ShadowState::new();
    suite.bench("ablate_multilevel/ungated_counterfactual", || {
        let mut work = 0u64;
        for i in 0..1000u32 {
            a.on_branch(&mut sh, 0x6100_0000 + (i % 64), bridge);
            a.on_branch(&mut sh, bridge + 0x20, interp);
            // The instrumentation body that gating avoids: frame
            // inspection + taint slot formatting.
            for r in 0..8u32 {
                work = work.wrapping_add(black_box(r as u64 * 31));
            }
            work = work
                .wrapping_add(black_box(format!("dvmInterpret frame {i}").len() as u64));
        }
        black_box(work);
    });
}

fn ablate_decode_cache(suite: &mut Suite) {
    for (name, use_cache) in [("with_cache", true), ("without_cache", false)] {
        let mut sys = traced_memcpy_app();
        if let Some(a) = sys.ndroid_analysis_mut() {
            a.use_cache = use_cache;
        }
        suite.bench(&format!("ablate_decode_cache/{name}"), || {
            sys.run_native(NATIVE_CODE_BASE, &[]).unwrap();
        });
    }
}

fn main() {
    let mut suite = Suite::new("ablations");
    ablate_libc_model(&mut suite);
    ablate_multilevel(&mut suite);
    ablate_decode_cache(&mut suite);
    suite.finish();
}
