//! Ablation benches for the design decisions in DESIGN.md §5:
//!
//! * **D1 — multilevel hooking**: branch-event processing with gating
//!   vs. unconditional deep hooking.
//! * **D2 — libc modeling vs. tracing**: a modeled `memcpy` host call
//!   vs. an instruction-traced ARM `memcpy` loop.
//! * **D5 — hot-handler cache**: the instruction tracer with and
//!   without the cache.

use criterion::{criterion_group, criterion_main, Criterion};
use ndroid_arm::reg::RegList;
use ndroid_arm::{Assembler, Cond, Reg};
use ndroid_core::{Mode, NDroidAnalysis};
use ndroid_dvm::framework::install_framework;
use ndroid_dvm::{Program, Taint};
use ndroid_emu::layout::NATIVE_CODE_BASE;
use ndroid_emu::runtime::Analysis;
use ndroid_emu::shadow::ShadowState;
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

const SRC: u32 = 0x2000_0000;
const DST: u32 = 0x2000_4000;
const LEN: u32 = 4096;

/// D2 baseline: `memcpy` as a single modeled host call.
fn modeled_memcpy_app() -> ndroid_core::NDroidSystem {
    let mut asm = Assembler::new(NATIVE_CODE_BASE);
    asm.push(RegList::of(&[Reg::LR]));
    asm.ldr_const(Reg::R0, DST);
    asm.ldr_const(Reg::R1, SRC);
    asm.ldr_const(Reg::R2, LEN);
    asm.call_abs(libc_addr("memcpy"));
    asm.pop(RegList::of(&[Reg::PC]));
    build_sys(asm)
}

/// D2 ablation: a real ARM byte-copy loop traced instruction by
/// instruction (what NDroid would pay without the Table VI models).
fn traced_memcpy_app() -> ndroid_core::NDroidSystem {
    let mut asm = Assembler::new(NATIVE_CODE_BASE);
    asm.ldr_const(Reg::R0, DST);
    asm.ldr_const(Reg::R1, SRC);
    asm.ldr_const(Reg::R2, LEN);
    let top = asm.here_label();
    asm.ldrb(Reg::R3, Reg::R1, 0);
    asm.strb(Reg::R3, Reg::R0, 0);
    asm.add_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.add_imm(Reg::R1, Reg::R1, 1).unwrap();
    asm.subs_imm(Reg::R2, Reg::R2, 1).unwrap();
    asm.b_cond(Cond::Ne, top);
    asm.bx(Reg::LR);
    build_sys(asm)
}

fn build_sys(asm: Assembler) -> ndroid_core::NDroidSystem {
    let mut program = Program::new();
    install_framework(&mut program);
    let mut sys = ndroid_core::NDroidSystem::new(program, Mode::NDroid).quiet();
    let code = asm.assemble().unwrap();
    sys.load_native(&code, "libablate.so");
    sys.shadow.mem.set_range(SRC, LEN, Taint::SMS);
    sys
}

fn tune(group: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(700));
}

fn ablate_libc_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_libc_model");
    tune(&mut group);
    group.bench_function("modeled_memcpy_hostcall", |b| {
        let mut sys = modeled_memcpy_app();
        b.iter(|| {
            sys.run_native(NATIVE_CODE_BASE, &[]).unwrap();
        });
    });
    group.bench_function("traced_memcpy_arm_loop", |b| {
        let mut sys = traced_memcpy_app();
        b.iter(|| {
            sys.run_native(NATIVE_CODE_BASE, &[]).unwrap();
        });
    });
    group.finish();
}

fn ablate_multilevel(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_multilevel");
    tune(&mut group);
    let bridge = dvm_addr("dvmCallMethodA");
    let interp = dvm_addr("dvmInterpret");
    // Framework churn: entries to the shared internals from outside
    // third-party code, which gating ignores.
    group.bench_function("gated", |b| {
        let mut a = NDroidAnalysis::new();
        let mut sh = ShadowState::new();
        b.iter(|| {
            for i in 0..1000u32 {
                a.on_branch(&mut sh, 0x6100_0000 + (i % 64), bridge);
                a.on_branch(&mut sh, bridge + 0x20, interp);
            }
            a.stats.branch_events
        });
    });
    group.bench_function("ungated_counterfactual", |b| {
        // Simulate unconditional hooking cost: every inner entry pays a
        // policy lookup + trace-formatting charge (what the paper's
        // naive alternative would do inside dvmInterpret).
        let mut a = NDroidAnalysis::new();
        a.gate_hooks = false;
        let mut sh = ShadowState::new();
        b.iter(|| {
            let mut work = 0u64;
            for i in 0..1000u32 {
                a.on_branch(&mut sh, 0x6100_0000 + (i % 64), bridge);
                a.on_branch(&mut sh, bridge + 0x20, interp);
                // The instrumentation body that gating avoids: frame
                // inspection + taint slot formatting.
                for r in 0..8u32 {
                    work = work.wrapping_add(std::hint::black_box(r as u64 * 31));
                }
                work = work.wrapping_add(std::hint::black_box(
                    format!("dvmInterpret frame {i}").len() as u64,
                ));
            }
            work
        });
    });
    group.finish();
}

fn ablate_decode_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_decode_cache");
    tune(&mut group);
    for (name, use_cache) in [("with_cache", true), ("without_cache", false)] {
        group.bench_function(name, |b| {
            let mut sys = traced_memcpy_app();
            if let Some(a) = sys.ndroid_analysis_mut() {
                a.use_cache = use_cache;
            }
            b.iter(|| {
                sys.run_native(NATIVE_CODE_BASE, &[]).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_libc_model,
    ablate_multilevel,
    ablate_decode_cache
);
criterion_main!(benches);
