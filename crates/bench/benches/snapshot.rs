//! Copy-on-write snapshot benchmarks: the cost of booting the
//! gated-leak app fresh (the pre-snapshot fan-out baseline) vs
//! capturing an image vs forking a runnable system from it — the
//! tentpole claim is that a fork is **orders of magnitude** cheaper
//! than a boot, which is what makes thousand-session monkey fan-out
//! practical. Also measures a full forked monkey session and reports
//! how many pages a driven fork actually privatizes. Writes
//! `BENCH_snapshot.json`; `TESTKIT_BENCH_SMOKE=1` runs a minimal pass
//! for CI.

use ndroid_apps::driver::{drive, gated_leak_app, GATED_ENTRIES};
use ndroid_core::SystemConfig;
use ndroid_testkit::bench::{black_box, Suite};

fn main() {
    let mut suite = Suite::new("snapshot");
    let config = SystemConfig::ndroid().quiet(true);

    // Baseline: the per-session cost snapshotting eliminates.
    let cfg = config.clone();
    suite.bench("snapshot/boot_fresh", || {
        let sys = gated_leak_app().launch_with(cfg.clone());
        black_box(sys.mode);
    });

    // Capturing an image from a booted system.
    let booted = gated_leak_app().launch_with(config.clone());
    suite.bench("snapshot/capture", || {
        black_box(booted.snapshot().mode());
    });

    // The fan-out primitive: image -> runnable system, O(page-table).
    let snap = gated_leak_app().launch_with(config.clone()).snapshot();
    suite.bench("snapshot/fork", || {
        let sys = snap.fork();
        black_box(sys.mode);
    });

    // A whole forked monkey session (fork + 25 driven events), the
    // unit of work `exp_snapshot` fans out by the thousand.
    let mut seed = 0u64;
    suite.bench("snapshot/fork_and_drive_25", || {
        let mut sys = snap.fork();
        seed = seed.wrapping_add(1);
        let d = drive(&mut sys, "Lapp/Sync;", &GATED_ENTRIES, 25, seed);
        black_box(d.report.sink_events.len());
    });

    // How much of the image a driven session actually privatizes:
    // resident (unshared) guest pages after the run, vs the fully
    // resident fresh boot. Printed for the log; the timing rows above
    // are what CI smoke-checks.
    let mut sys = snap.fork();
    drive(&mut sys, "Lapp/Sync;", &GATED_ENTRIES, 25, 1);
    let fresh = gated_leak_app().launch_with(config);
    println!(
        "resident guest pages: fresh boot {} -> driven fork {}",
        fresh.mem.resident_pages(),
        sys.mem.resident_pages(),
    );

    suite.finish();
}
