//! Superblock (block-level taint compilation) benchmarks: the rate at
//! which straight-line runs compile into effect programs, the fused
//! block dispatch vs the per-instruction `step_cached` + `on_insn`
//! tracer on a hot loop, and the end-to-end cfbench A/B behind the
//! `SystemConfig::blocks` knob. Writes `BENCH_blocks.json`;
//! `TESTKIT_BENCH_SMOKE=1` runs a minimal pass for CI.

use ndroid_arm::block::{build_block, BlockCache};
use ndroid_arm::exec::step_cached;
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::{Assembler, Cond, Cpu, Memory, Reg};
use ndroid_cfbench::all_kernels;
use ndroid_core::{Mode, NDroidAnalysis, SystemConfig};
use ndroid_emu::runtime::Analysis;
use ndroid_emu::shadow::ShadowState;
use ndroid_testkit::bench::{black_box, Suite};

const SENTINEL: u32 = 0xFFFF_FF00;
/// Kernel iterations for the end-to-end cfbench A/B.
const KERNEL_ITERS: u32 = 500;

/// A 64-iteration counted loop (the same shape the decode-cache bench
/// uses, so the suites compare like with like).
fn hot_loop(mem: &mut Memory, base: u32) {
    let mut asm = Assembler::new(base);
    asm.mov_imm(Reg::R4, 64).unwrap();
    asm.mov_imm(Reg::R0, 0).unwrap();
    let top = asm.here_label();
    asm.add_imm(Reg::R0, Reg::R0, 1).unwrap();
    asm.add_imm(Reg::R1, Reg::R1, 2).unwrap();
    asm.add_imm(Reg::R2, Reg::R2, 3).unwrap();
    asm.subs_imm(Reg::R4, Reg::R4, 1).unwrap();
    asm.b_cond(Cond::Ne, top);
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();
    mem.write_bytes(base, &code.bytes);
}

/// Block compilation rate: decode + taint-lowering for a maximal
/// 64-step straight-line block, built from scratch each time.
fn build_benches(suite: &mut Suite) {
    let base = 0x0001_0000;
    let mut asm = Assembler::new(base);
    for _ in 0..63 {
        asm.add_imm(Reg::R0, Reg::R0, 1).unwrap();
    }
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();
    let mut mem = Memory::new();
    mem.write_bytes(base, &code.bytes);

    suite.bench("blocks/build/64insn", || {
        let b = build_block(&mem, base, false, |_| false).expect("block");
        black_box(b.len());
    });
}

/// The tentpole A/B at the dispatch level: one hot loop traced by the
/// full NDroid analysis, once through `step_cached` + `on_insn` (the
/// stepper) and once through cached effect programs (`on_block`).
fn exec_benches(suite: &mut Suite) {
    let base = 0x0001_0000;
    let mut mem = Memory::new();
    hot_loop(&mut mem, base);

    let mut cpu = Cpu::new();
    let mut analysis = NDroidAnalysis::new();
    let mut shadow = ShadowState::new();
    let mut icache = DecodeCache::new();
    suite.bench("exec/hot_loop/stepper_traced", || {
        cpu.regs[14] = SENTINEL;
        cpu.set_pc(base);
        while cpu.pc() != SENTINEL {
            let effect = step_cached(&mut cpu, &mut mem, &mut icache).expect("step");
            analysis.on_insn(&mut shadow, &cpu, &mem, &effect);
        }
        black_box(cpu.regs[0]);
    });

    let mut cpu = Cpu::new();
    let mut analysis = NDroidAnalysis::new();
    let mut shadow = ShadowState::new();
    let mut blocks = BlockCache::new();
    suite.bench("exec/hot_loop/block_traced", || {
        cpu.regs[14] = SENTINEL;
        cpu.set_pc(base);
        let mut budget = 1_000_000u64;
        while cpu.pc() != SENTINEL {
            let pc = cpu.pc();
            if let Some(block) = blocks.lookup(&mem, pc, cpu.thumb) {
                analysis
                    .on_block(&mut shadow, &mut cpu, &mut mem, block, &mut budget)
                    .expect("block run");
            } else {
                let block =
                    build_block(&mem, pc, cpu.thumb, |_| false).expect("block");
                let block = blocks.insert(&mem, block);
                analysis
                    .on_block(&mut shadow, &mut cpu, &mut mem, block, &mut budget)
                    .expect("block run");
            }
        }
        black_box(cpu.regs[0]);
    });
}

/// End-to-end cfbench kernels with superblock dispatch toggled via the
/// `SystemConfig::blocks` knob — the headline multiple lives here.
fn cfbench_ab_benches(suite: &mut Suite) {
    let kernels = all_kernels();
    for name in ["Native MIPS", "Native Memory Read"] {
        let kernel = kernels
            .iter()
            .find(|k| k.name == name)
            .expect("known kernel");
        for (variant, enabled) in [("blocks_off", false), ("blocks_on", true)] {
            let mut sys =
                kernel.boot_with(SystemConfig::new(Mode::NDroid).quiet(true).blocks(enabled));
            suite.bench(&format!("cfbench/{name}/{variant}"), || {
                black_box(kernel.run(&mut sys, KERNEL_ITERS));
            });
        }
    }
}

fn main() {
    let mut suite = Suite::new("blocks");
    build_benches(&mut suite);
    exec_benches(&mut suite);
    cfbench_ab_benches(&mut suite);
    suite.finish();
}
