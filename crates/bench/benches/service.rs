//! Resident-service benchmarks: submit→first-result latency on the
//! interactive lane (idle service vs under sustained bulk load) and
//! per-lane throughput of a 16-job wave. Writes `BENCH_service.json`;
//! `TESTKIT_BENCH_SMOKE=1` runs a minimal pass.
//!
//! Interpreting the numbers: `latency/interactive_idle` is the floor —
//! one submission through an empty queue to a warm worker.
//! `latency/interactive_under_bulk` runs the identical probe while a
//! feeder thread keeps the bulk lane saturated against the queue's
//! capacity backpressure; strict-priority dequeue is what keeps the
//! two within the same order of magnitude (the acceptance bar is p50
//! within 2x of idle, checked here as a printed ratio rather than a
//! hard assert — single-core CI hosts schedule the feeder and the
//! probe on the same CPU, so the ratio is honest about the hardware).
//! The throughput pair measures a 16-job wave submitted and drained;
//! jobs/sec = 16 / (median_ns * 1e-9).

use std::sync::atomic::{AtomicBool, Ordering};

use ndroid_apps::farm::Monkey;
use ndroid_core::batch::{AnalysisJob, JobSource, Lane};
use ndroid_core::{AnalysisService, ServiceConfig, SystemConfig};
use ndroid_testkit::bench::{black_box, Suite};

/// One unit of resident-service work: a `steps`-event monkey session
/// forked from the per-worker warm snapshot (the `Monkey { fork: true }`
/// pattern the service keeps hot across submissions). Preemption is
/// between jobs, so the interactive probe waits at most one bulk job
/// per busy worker — bulk granularity (small `steps`) is what bounds
/// the loaded latency, and the bench makes that explicit: the bulk
/// feed uses short sessions, the probe a longer one.
fn session_job(lane: Lane, steps: usize, config: &SystemConfig) -> AnalysisJob {
    let mut job = Monkey::forked(1, steps, 0xBE9C)
        .jobs(config)
        .pop()
        .expect("one session job");
    job.lane = lane;
    job
}

/// Probe session length: long enough that its own runtime, not
/// scheduler noise, dominates the measured round-trip.
const PROBE_STEPS: usize = 32;
/// Bulk-feed session length: the preemption granularity under load.
const FEED_STEPS: usize = 6;

/// Submits one interactive probe and receives results until the
/// probe's own seq comes back — the submit→first-result round-trip.
/// Any bulk results consumed along the way were already finished, so
/// the hunt is the honest delivery path, not extra work.
fn probe_round(service: &AnalysisService, config: &SystemConfig) {
    let ticket = service
        .submit(session_job(Lane::Interactive, PROBE_STEPS, config))
        .expect("service accepts the probe");
    loop {
        let r = service.recv_result().expect("service is open");
        if r.seq == ticket.seq {
            black_box(r.outcome.report().is_some());
            return;
        }
    }
}

fn main() {
    let mut suite = Suite::new("service");
    let config = SystemConfig::ndroid().quiet(true);
    // Workers matched to the hardware: oversubscribing a single-core
    // host would charge the probe for timeslices spent on bulk work
    // and misreport the lane policy as scheduler noise.
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let service = AnalysisService::start(ServiceConfig::new(workers).capacity(8));

    // Floor: submit->first-result on an idle service with warm workers.
    suite.bench("service/latency/interactive_idle", || {
        probe_round(&service, &config);
    });

    // The same probe while a feeder thread keeps the bulk lane
    // saturated (blocking `submit` against the 8-slot capacity is the
    // backpressure path, exercised continuously).
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let feeder = s.spawn(|| {
            let mut fed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if service
                    .submit(session_job(Lane::Bulk, FEED_STEPS, &config))
                    .is_err()
                {
                    break;
                }
                fed += 1;
            }
            fed
        });
        suite.bench("service/latency/interactive_under_bulk", || {
            probe_round(&service, &config);
        });
        stop.store(true, Ordering::Relaxed);
        let fed = feeder.join().expect("feeder thread");
        println!("(bulk feeder kept {fed} jobs flowing during the loaded probe)");
    });
    // Absorb whatever bulk work the feeder left in flight.
    black_box(service.drain().results.len());

    // Throughput: a 16-job wave submitted and drained, per lane.
    for lane in [Lane::Bulk, Lane::Interactive] {
        suite.bench(&format!("service/throughput/{lane}_16"), || {
            for _ in 0..16 {
                service
                    .submit(session_job(lane, PROBE_STEPS, &config))
                    .expect("service accepts the wave");
            }
            let report = service.drain();
            assert_eq!(report.completed(), 16);
            black_box(report);
        });
    }

    // The acceptance bar, printed from the recorded medians: loaded
    // interactive p50 within 2x of idle (advisory on shared hardware).
    let median = |name: &str| {
        suite
            .results()
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .unwrap_or(f64::NAN)
    };
    let idle = median("service/latency/interactive_idle");
    let loaded = median("service/latency/interactive_under_bulk");
    println!(
        "interactive p50: idle {:.0} ns, under bulk {:.0} ns -> ratio {:.2}x (target <= 2x)",
        idle,
        loaded,
        loaded / idle
    );

    suite.finish();
    drop(service);
}
