//! Batch-farm throughput: the canonical job list (gallery apps + a
//! corpus shard) run sequentially and at 2/4/8 workers. Writes
//! `BENCH_batch.json`; `TESTKIT_BENCH_SMOKE=1` runs a minimal pass.
//!
//! Interpreting the numbers: one farm worker runs the whole list on a
//! single spawned thread, so `workers_1` vs `workers_N` isolates the
//! farm's scaling (queue sharding, stealing, merge) from its fixed
//! overhead. On a multi-core host `workers_4` should approach a 4x
//! speedup; on a single-core host (such as a CI container pinned to
//! one CPU) all variants are necessarily within noise of each other —
//! the recorded artifact is honest about the hardware it ran on.

use ndroid_apps::farm::{self, CorpusShard, Gallery};
use ndroid_core::batch::{jobs_from, run_batch, AnalysisJob, BatchConfig};
use ndroid_core::SystemConfig;
use ndroid_testkit::bench::{black_box, Suite};

/// Shard size for the bench job list — smaller than the CI gate's 32
/// so a full sample set stays fast on one core.
const SHARD_SIZE: usize = 8;
const SHARD_SEED: u64 = 0xD514;

fn jobs() -> Vec<AnalysisJob> {
    let config = SystemConfig::ndroid().quiet(true);
    jobs_from(
        &[&Gallery, &CorpusShard { n: SHARD_SIZE, seed: SHARD_SEED }],
        &config,
    )
}

fn main() {
    let mut suite = Suite::new("batch");
    let n_jobs = jobs().len();
    for workers in [1usize, 2, 4, 8] {
        suite.bench(&format!("farm/{n_jobs}_jobs/workers_{workers}"), || {
            let report = run_batch(jobs(), BatchConfig::new(workers));
            assert_eq!(report.completed(), n_jobs);
            black_box(report);
        });
    }
    // The per-job baseline with no farm at all: build and run the same
    // systems inline on the bench thread, so the farm's fixed overhead
    // (thread spawn, queue, channel, merge) is measurable.
    let shard = ndroid_corpus::generate(&farm::shard_corpus_config(SHARD_SIZE, SHARD_SEED));
    let specs: Vec<_> = shard
        .iter()
        .filter(|r| {
            r.jni_type() == ndroid_corpus::JniType::TypeI && !r.native_libs.is_empty()
        })
        .take(SHARD_SIZE)
        .map(farm::spec_for_record)
        .collect();
    suite.bench(&format!("inline/{n_jobs}_jobs"), || {
        let config = SystemConfig::ndroid().quiet(true);
        let apps: [fn() -> ndroid_apps::App; 3] = [
            ndroid_apps::qq_phonebook::qq_phonebook,
            ndroid_apps::thumb_spy::thumb_spy,
            ndroid_apps::crypto_hider::crypto_hider,
        ];
        for build_app in apps {
            black_box(build_app().run_with(config.clone()).unwrap().report());
        }
        for spec in &specs {
            black_box(
                ndroid_apps::synth::build(spec)
                    .run_with(config.clone())
                    .unwrap()
                    .report(),
            );
        }
    });
    suite.finish();
}
