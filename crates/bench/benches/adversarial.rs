//! Adversarial-corpus cost: how much the anti-analysis families
//! (runtime detours, Thumb↔ARM interworking trampolines, rewritten
//! JNI bodies, mutation chains) cost to analyze relative to the
//! cooperative gallery, and what the scoring harness itself adds.
//! Writes `BENCH_adversarial.json`; `TESTKIT_BENCH_SMOKE=1` runs a
//! minimal pass.
//!
//! Interpreting the numbers: the SMC families (`detour`, `rewrite`)
//! pay decode-cache invalidations on top of the plain run, so they
//! bound the handler-cache recovery cost; `corpus/batch` is the whole
//! 15-case corpus through the 4-worker farm — the unit the
//! `exp_adversarial` CI gate re-runs — and `corpus/score` isolates the
//! pure scoring pass over a pre-computed batch report.

use ndroid_apps::adversarial::{self, expected_leak};
use ndroid_apps::farm::Adversarial;
use ndroid_core::batch::{run_batch, BatchConfig, JobSource};
use ndroid_core::{score_batch, SystemConfig};
use ndroid_testkit::bench::{black_box, Suite};

fn main() {
    let mut suite = Suite::new("adversarial");
    let config = SystemConfig::ndroid().quiet(true);

    // One representative per hand-built family, leak variant (the
    // adversarial machinery fires on these; benign twins track within
    // noise).
    for (tag, build) in [
        ("family/detour", adversarial::detour_leak as fn() -> ndroid_apps::App),
        ("family/interwork", adversarial::interwork_leak),
        ("family/rewrite", adversarial::rewrite_leak),
    ] {
        let config = config.clone();
        suite.bench(tag, move || {
            let sys = build().run_with(config.clone()).expect("case runs");
            black_box(sys.report());
        });
    }

    // The full corpus through the farm, exactly as the CI gate runs it.
    suite.bench("corpus/batch", || {
        let batch = run_batch(Adversarial.jobs(&config), BatchConfig::new(4));
        black_box(batch.results.len());
    });

    // Scoring isolated from the runs: re-score one pre-computed batch.
    let batch = run_batch(Adversarial.jobs(&config), BatchConfig::new(4));
    suite.bench("corpus/score", || {
        let score = score_batch(&batch, expected_leak);
        black_box(score.perfect());
    });

    suite.finish();
}
