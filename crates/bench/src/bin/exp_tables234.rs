//! Experiment: Tables II, III and IV — the JNI function inventory the
//! DVM hook engine instruments, checked against what this reproduction
//! actually registers.

use ndroid_jni::calls::call_family_names;
use ndroid_jni::{dvm_addr, jni_names, DVM_INTERNAL_NAMES};
use ndroid_libc::registry::SINK_NAMES;
use ndroid_libc::{LIBC_NAMES, LIBM_NAMES};

fn main() {
    println!("== Table II — JNI methods for invoking Java methods ==");
    let family = call_family_names();
    println!(
        "  Call<Type>Method{{,V,A}} x {{virtual, nonvirtual, static}}: {} functions",
        family.len()
    );
    for kind in ["Call", "CallNonvirtual", "CallStatic"] {
        let n = family
            .iter()
            .filter(|f| {
                f.starts_with(kind)
                    && (kind != "Call"
                        || !(f.starts_with("CallNonvirtual") || f.starts_with("CallStatic")))
            })
            .count();
        println!("    {kind:<16} {n} functions (10 types x 3 forms)");
    }
    println!(
        "  bridge targets: dvmCallMethod @ {:#x}, dvmCallMethodV @ {:#x}, dvmCallMethodA @ {:#x}, dvmInterpret @ {:#x}",
        dvm_addr("dvmCallMethod"),
        dvm_addr("dvmCallMethodV"),
        dvm_addr("dvmCallMethodA"),
        dvm_addr("dvmInterpret"),
    );

    println!("\n== Table III — object creation: NOF -> MAF pairs ==");
    for (nof, maf) in [
        ("NewObject{,V,A}", "dvmAllocObject"),
        ("NewString", "dvmCreateStringFromUnicode"),
        ("NewStringUTF", "dvmCreateStringFromCstr"),
        ("NewObjectArray", "dvmAllocArrayByClass"),
        ("New<Prim>Array (8 widths)", "dvmAllocPrimitiveArray"),
    ] {
        println!("  {nof:<28} -> {maf}");
    }

    println!("\n== Table IV — field access functions ==");
    let fields: Vec<&String> = jni_names()
        .iter()
        .filter(|n| {
            (n.starts_with("Get") || n.starts_with("Set")) && n.ends_with("Field")
        })
        .collect();
    println!("  {} get/set field functions:", fields.len());
    for chunk in fields.chunks(6) {
        println!(
            "    {}",
            chunk.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
        );
    }

    println!("\n== Tables VI/VII — modeled standard methods and hooks ==");
    println!(
        "  libc modeled (Table VI): {} functions; libm: {}",
        32,
        LIBM_NAMES.len()
    );
    println!(
        "  hooked standard library calls (Table VII): {}",
        LIBC_NAMES.len() - 32
    );
    println!("  leak sinks (starred): {SINK_NAMES:?}");

    println!("\n== totals ==");
    println!(
        "  libdvm region: {} functions ({} internal hook targets + {} guest-callable)",
        jni_names().len(),
        DVM_INTERNAL_NAMES.len(),
        jni_names().len() - DVM_INTERNAL_NAMES.len()
    );
    println!(
        "  libc/libm region: {} functions",
        LIBC_NAMES.len() + LIBM_NAMES.len()
    );
}
