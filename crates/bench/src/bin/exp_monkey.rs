//! Experiment: the §VI driving methodology — Monkeyrunner-style random
//! input vs. manual (directed) input.
//!
//! The paper: random driving across the corpus surfaced only
//! QQPhoneBook's leak; manual driving of 8 selected apps found more —
//! and §VII concedes "simple tools like monkeyrunner cannot enumerate
//! all possible paths in an app and thus NDroid may miss information
//! leakage."

use ndroid_apps::driver::{drive, gated_leak_app, GATED_ENTRIES};
use ndroid_apps::qq_phonebook::qq_phonebook;
use ndroid_core::Mode;

fn main() {
    println!("== §VI / §VII — input generation and path coverage ==\n");

    // QQPhoneBook: its leak sits on the main login path, so even random
    // driving that happens to call login() finds it.
    let app = qq_phonebook();
    let mut sys = app.launch(Mode::NDroid);
    let report = drive(&mut sys, "Lcom/tencent/tccsync/LoginUtil;", &["login"], 3, 0xD514);
    println!(
        "QQPhoneBook under random driving ({} events): {} leak(s) found",
        report.invocations.len(),
        sys.leaks().len()
    );

    // The gated app: the leak needs enableSync before doSync.
    println!("\ngated-sync app (leak requires a 2-step sequence):");
    for steps in [1usize, 2, 5, 20, 100] {
        let mut found = 0;
        let trials = 50;
        for seed in 0..trials {
            let mut sys = gated_leak_app().launch(Mode::NDroid).quiet();
            drive(&mut sys, "Lapp/Sync;", &GATED_ENTRIES, steps, 1 + seed);
            if !sys.leaks().is_empty() {
                found += 1;
            }
        }
        println!(
            "  {steps:>3} random events: leak found in {found:>2}/{trials} trials ({:>3.0}%)",
            100.0 * found as f64 / trials as f64
        );
    }

    // Manual (directed) input always finds it.
    let mut sys = gated_leak_app().launch(Mode::NDroid);
    sys.run_java("Lapp/Sync;", "enableSync", &[]).unwrap();
    sys.run_java("Lapp/Sync;", "doSync", &[]).unwrap();
    println!(
        "\nmanual driving (enableSync; doSync): {} leak(s) — the §VI manual phase",
        sys.leaks().len()
    );
    println!(
        "\nconclusion (matches §VII): random input under-covers multi-step\n\
         paths; detection quality is bounded by the input generator, not\n\
         by the taint tracker."
    );
}
