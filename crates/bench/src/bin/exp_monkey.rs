//! Experiment: the §VI driving methodology — Monkeyrunner-style random
//! input vs. manual (directed) input.
//!
//! The paper: random driving across the corpus surfaced only
//! QQPhoneBook's leak; manual driving of 8 selected apps found more —
//! and §VII concedes "simple tools like monkeyrunner cannot enumerate
//! all possible paths in an app and thus NDroid may miss information
//! leakage."
//!
//! The random-driving trials run as batch-farm jobs (`--workers N`,
//! default 1): one monkey session per seed, all reporting through the
//! unified `RunReport`.

use ndroid_apps::driver::drive;
use ndroid_apps::farm::Monkey;
use ndroid_apps::qq_phonebook::qq_phonebook;
use ndroid_core::batch::{run_batch, BatchConfig, JobSource};
use ndroid_core::{Mode, SystemConfig};

fn workers_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    let workers = workers_arg();
    println!("== §VI / §VII — input generation and path coverage ==");
    println!("(farm: {workers} worker(s))\n");

    // QQPhoneBook: its leak sits on the main login path, so even random
    // driving that happens to call login() finds it.
    let app = qq_phonebook();
    let mut sys = app.launch(Mode::NDroid);
    let report = drive(&mut sys, "Lcom/tencent/tccsync/LoginUtil;", &["login"], 3, 0xD514);
    println!(
        "QQPhoneBook under random driving ({} events): {} leak(s) found",
        report.invocations.len(),
        report.report.leaks().len()
    );

    // The gated app: the leak needs enableSync before doSync. Each
    // trial is one farm job.
    println!("\ngated-sync app (leak requires a 2-step sequence):");
    let config = SystemConfig::ndroid().quiet(true);
    for steps in [1usize, 2, 5, 20, 100] {
        let trials = 50;
        let jobs = Monkey::fresh(trials, steps, 1).jobs(&config);
        let batch = run_batch(jobs, BatchConfig::new(workers));
        let found = batch.leaking();
        println!(
            "  {steps:>3} random events: leak found in {found:>2}/{trials} trials ({:>3.0}%)",
            100.0 * found as f64 / trials as f64
        );
    }

    // Manual (directed) input always finds it.
    let mut sys = farm_directed();
    sys.run_java("Lapp/Sync;", "enableSync", &[]).unwrap();
    sys.run_java("Lapp/Sync;", "doSync", &[]).unwrap();
    println!(
        "\nmanual driving (enableSync; doSync): {} leak(s) — the §VI manual phase",
        sys.report().leaks().len()
    );
    println!(
        "\nconclusion (matches §VII): random input under-covers multi-step\n\
         paths; detection quality is bounded by the input generator, not\n\
         by the taint tracker."
    );
}

fn farm_directed() -> ndroid_core::NDroidSystem {
    ndroid_apps::driver::gated_leak_app().launch(Mode::NDroid)
}
