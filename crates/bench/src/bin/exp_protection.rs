//! Experiment: the §VII taint-protection extension.
//!
//! "An app without root privileges can manipulate the taints in DVM. …
//! NDroid can be easily extended to protect taints and prevent
//! evasions through stack manipulation or trusted function
//! modification, because it monitors the memory, hooks major file and
//! memory functions, and inspects every native instruction."
//!
//! This binary runs hostile native libraries that write into the DVM
//! stack (taint-tag smashing), the DVM heap, and libdvm text, and
//! prints what the protector records — plus a legitimate app as the
//! false-positive control.

use ndroid_apps::AppBuilder;
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_core::Mode;
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};

fn attack(target: u32, what: &str) {
    let mut b = AppBuilder::new("attacker", "hostile VM-region store");
    let c = b.class("Lapp/A;");
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::LR]));
    b.asm.ldr_const(Reg::R0, target);
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.str(Reg::R1, Reg::R0, 0);
    b.asm.pop(RegList::of(&[Reg::PC]));
    let native = b.native_method(c, "smash", "V", true, entry);
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    let app = b.finish("Lapp/A;", "main").unwrap();
    let mut sys = app.launch(Mode::NDroid);
    sys.run_java("Lapp/A;", "main", &[]).unwrap();
    let violations = &sys.ndroid_analysis_mut().unwrap().violations;
    println!("attack: {what}");
    for v in violations.iter() {
        println!(
            "  VIOLATION: store @ pc {:#x} into {:#x} [{}]",
            v.pc, v.addr, v.region
        );
    }
    if violations.is_empty() {
        println!("  (none recorded)");
    }
    println!();
}

fn main() {
    println!("== §VII extension — taint protection ==\n");
    attack(
        ndroid_dvm::stack::STACK_BASE + 0x24,
        "overwrite a taint tag in the interpreted stack (taint scrubbing)",
    );
    attack(
        ndroid_dvm::heap::HEAP_BASE + 0x100,
        "corrupt a DVM heap object (field-taint scrubbing)",
    );
    attack(
        ndroid_emu::layout::LIBDVM_BASE + 0x40,
        "patch libdvm text (trusted-function modification)",
    );

    // Control: a heavy but legitimate JNI user.
    let app = ndroid_apps::poc_case2::poc_case2();
    let entry = app.entry.clone();
    let mut sys = app.launch(Mode::NDroid);
    sys.run_java(&entry.0, &entry.1, &[]).unwrap();
    let violations = &sys.ndroid_analysis_mut().unwrap().violations;
    println!(
        "control (PoC case 2, legitimate JNI): {} violations (expected 0)",
        violations.len()
    );
}
