//! Experiment / CI gate: batch-farm determinism.
//!
//! Builds the canonical job list (the three gallery apps + the pinned
//! 32-sample corpus shard), runs it sequentially (1 worker) and again
//! at `--workers N` (default 4), and asserts the merged `BatchReport`s
//! are byte-identical. Exits 1 on any divergence — this is the golden
//! check `scripts/ci.sh` runs.

use ndroid_apps::farm::{CorpusShard, Gallery};
use ndroid_core::batch::{jobs_from, run_batch, AnalysisJob, BatchConfig};
use ndroid_core::SystemConfig;

const SHARD_SIZE: usize = 32;
const SHARD_SEED: u64 = 0xD514;

fn arg_after(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn jobs() -> Vec<AnalysisJob> {
    let config = SystemConfig::ndroid().quiet(true);
    jobs_from(
        &[&Gallery, &CorpusShard { n: SHARD_SIZE, seed: SHARD_SEED }],
        &config,
    )
}

fn main() {
    let workers = arg_after("--workers", 4);
    println!(
        "== batch farm determinism: gallery + {SHARD_SIZE}-sample corpus shard =="
    );

    let sequential = run_batch(jobs(), BatchConfig::new(1));
    let parallel = run_batch(jobs(), BatchConfig::new(workers));

    print!("{}", sequential.render());

    let reports_equal = sequential == parallel;
    let renders_equal = sequential.render() == parallel.render();
    println!(
        "\nsequential vs {workers}-worker merge: reports {} / renders {}",
        if reports_equal { "IDENTICAL" } else { "DIVERGED" },
        if renders_equal { "byte-identical" } else { "DIVERGED" },
    );
    if !reports_equal || !renders_equal {
        eprintln!("--- parallel render ---\n{}", parallel.render());
        std::process::exit(1);
    }
    if sequential.completed() != sequential.results.len() {
        eprintln!("not every job completed");
        std::process::exit(1);
    }
}
