//! Experiment: Table V — taint-propagation logic for ARM/Thumb
//! instructions, checked row by row with real encoded instructions
//! executed on the emulator under the NDroid tracer.

use ndroid_arm::cond::Cond;
use ndroid_arm::exec::step;
use ndroid_arm::insn::{AddrMode4, DpOp, Instr, MemOffset, MemSize, Op2};
use ndroid_arm::reg::{Reg, RegList};
use ndroid_arm::{encode::encode, Cpu, Memory};
use ndroid_core::tracer::propagate;
use ndroid_dvm::Taint;
use ndroid_emu::shadow::ShadowState;

struct Row {
    format: &'static str,
    rule: &'static str,
    check: fn() -> bool,
}

fn run_one(instr: Instr, setup: impl FnOnce(&mut Cpu, &mut Memory, &mut ShadowState)) -> (Cpu, ShadowState) {
    let mut cpu = Cpu::new();
    let mut mem = Memory::new();
    let mut shadow = ShadowState::new();
    cpu.set_pc(0x1000_0000);
    cpu.regs[13] = 0x4080_0000;
    setup(&mut cpu, &mut mem, &mut shadow);
    mem.write_u32(0x1000_0000, encode(&instr).expect("encodable"));
    let effect = step(&mut cpu, &mut mem).expect("executes");
    propagate(&mut shadow, &effect);
    (cpu, shadow)
}

fn dp(op: DpOp, rd: Reg, rn: Reg, op2: Op2) -> Instr {
    Instr::Dp {
        cond: Cond::Al,
        op,
        s: false,
        rd,
        rn,
        op2,
    }
}

fn rows() -> Vec<Row> {
    vec![
        Row {
            format: "binary-op Rd, Rn, Rm",
            rule: "t(Rd) = t(Rn) OR t(Rm)",
            check: || {
                let (_, sh) = run_one(dp(DpOp::Add, Reg::R0, Reg::R1, Op2::reg(Reg::R2)), |cpu, _, sh| {
                    cpu.regs[1] = 1;
                    cpu.regs[2] = 2;
                    sh.regs[1] = Taint::IMEI;
                    sh.regs[2] = Taint::SMS;
                });
                sh.regs[0] == Taint::IMEI | Taint::SMS
            },
        },
        Row {
            format: "binary-op Rd, Rm (Rd = Rd op Rm)",
            rule: "t(Rd) = t(Rd) OR t(Rm)",
            check: || {
                let (_, sh) = run_one(dp(DpOp::Add, Reg::R0, Reg::R0, Op2::reg(Reg::R2)), |cpu, _, sh| {
                    cpu.regs[0] = 1;
                    cpu.regs[2] = 2;
                    sh.regs[0] = Taint::IMEI;
                    sh.regs[2] = Taint::SMS;
                });
                sh.regs[0] == Taint::IMEI | Taint::SMS
            },
        },
        Row {
            format: "binary-op Rd, Rm, #imm",
            rule: "t(Rd) = t(Rm)",
            check: || {
                let (_, sh) = run_one(
                    dp(DpOp::Add, Reg::R0, Reg::R1, Op2::encode_imm(4).unwrap()),
                    |cpu, _, sh| {
                        cpu.regs[1] = 10;
                        sh.regs[1] = Taint::CONTACTS;
                    },
                );
                sh.regs[0] == Taint::CONTACTS
            },
        },
        Row {
            format: "unary Rd, Rm",
            rule: "t(Rd) = t(Rm)",
            check: || {
                let (_, sh) = run_one(dp(DpOp::Mvn, Reg::R0, Reg::R0, Op2::reg(Reg::R1)), |cpu, _, sh| {
                    cpu.regs[1] = 5;
                    sh.regs[1] = Taint::SMS;
                });
                sh.regs[0] == Taint::SMS
            },
        },
        Row {
            format: "mov Rd, #imm",
            rule: "t(Rd) = TAINT_CLEAR",
            check: || {
                let (_, sh) = run_one(
                    dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::encode_imm(7).unwrap()),
                    |_, _, sh| {
                        sh.regs[0] = Taint::IMEI;
                    },
                );
                sh.regs[0].is_clear()
            },
        },
        Row {
            format: "mov Rd, Rm",
            rule: "t(Rd) = t(Rm)",
            check: || {
                let (_, sh) = run_one(dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::reg(Reg::R3)), |cpu, _, sh| {
                    cpu.regs[3] = 9;
                    sh.regs[3] = Taint::PHONE_NUMBER;
                });
                sh.regs[0] == Taint::PHONE_NUMBER
            },
        },
        Row {
            format: "LDR* Rd, Rn, #imm",
            rule: "t(Rd) = t(M[addr]) OR t(Rn)",
            check: || {
                let (_, sh) = run_one(
                    Instr::Mem {
                        cond: Cond::Al,
                        load: true,
                        size: MemSize::Word,
                        rd: Reg::R0,
                        rn: Reg::R1,
                        offset: MemOffset::Imm(0),
                        pre: true,
                        up: true,
                        writeback: false,
                    },
                    |cpu, mem, sh| {
                        cpu.regs[1] = 0x2A00_0000;
                        mem.write_u32(0x2A00_0000, 0x1234);
                        sh.mem.set_range(0x2A00_0000, 4, Taint::SMS);
                        sh.regs[1] = Taint::IMEI; // tainted pointer
                    },
                );
                sh.regs[0] == Taint::SMS | Taint::IMEI
            },
        },
        Row {
            format: "LDM(POP) regList, Rn",
            rule: "t(Ri) = t(Rn) OR t(M[..])",
            check: || {
                let (_, sh) = run_one(
                    Instr::MemMulti {
                        cond: Cond::Al,
                        load: true,
                        rn: Reg::SP,
                        mode: AddrMode4::Ia,
                        writeback: true,
                        regs: RegList::of(&[Reg::R4, Reg::R5]),
                    },
                    |cpu, mem, sh| {
                        cpu.regs[13] = 0x4070_0000;
                        mem.write_u32(0x4070_0000, 11);
                        mem.write_u32(0x4070_0004, 22);
                        sh.mem.set_range(0x4070_0000, 4, Taint::CONTACTS);
                        sh.mem.set_range(0x4070_0004, 4, Taint::SMS);
                    },
                );
                sh.regs[4] == Taint::CONTACTS && sh.regs[5] == Taint::SMS
            },
        },
        Row {
            format: "STR* Rd, Rn, #imm",
            rule: "t(M[addr]) = t(Rd)",
            check: || {
                let (_, sh) = run_one(
                    Instr::Mem {
                        cond: Cond::Al,
                        load: false,
                        size: MemSize::Word,
                        rd: Reg::R0,
                        rn: Reg::R1,
                        offset: MemOffset::Imm(0),
                        pre: true,
                        up: true,
                        writeback: false,
                    },
                    |cpu, _, sh| {
                        cpu.regs[0] = 0xBEEF;
                        cpu.regs[1] = 0x2A00_1000;
                        sh.regs[0] = Taint::ICCID;
                    },
                );
                sh.mem.range_taint(0x2A00_1000, 4) == Taint::ICCID
            },
        },
        Row {
            format: "STM(PUSH) regList, Rn",
            rule: "t(M[..]) = t(Ri)",
            check: || {
                let (_, sh) = run_one(
                    Instr::MemMulti {
                        cond: Cond::Al,
                        load: false,
                        rn: Reg::SP,
                        mode: AddrMode4::Db,
                        writeback: true,
                        regs: RegList::of(&[Reg::R4, Reg::R5]),
                    },
                    |cpu, _, sh| {
                        cpu.regs[4] = 1;
                        cpu.regs[5] = 2;
                        cpu.regs[13] = 0x4070_0100;
                        sh.regs[4] = Taint::IMEI;
                        sh.regs[5] = Taint::SMS;
                    },
                );
                sh.mem.range_taint(0x4070_00F8, 4) == Taint::IMEI
                    && sh.mem.range_taint(0x4070_00FC, 4) == Taint::SMS
            },
        },
    ]
}

fn main() {
    println!("== Table V — ARM/Thumb taint propagation logic ==\n");
    println!("{:<36} {:<32} result", "insn format", "propagation rule");
    println!("{}", "-".repeat(80));
    let mut pass = 0;
    let all = rows();
    let total = all.len();
    for row in all {
        let ok = (row.check)();
        if ok {
            pass += 1;
        }
        println!(
            "{:<36} {:<32} {}",
            row.format,
            row.rule,
            if ok { "PASS" } else { "FAIL" }
        );
    }
    println!("{}", "-".repeat(80));
    println!("{pass}/{total} rows verified against real encoded instructions");
    println!(
        "\ncoverage note: the paper handles 101 ARM + 55 Thumb instructions;\n\
         this reproduction's decoder covers the data-processing, multiply,\n\
         load/store (incl. multiple), branch, SVC and VFP subsets that those\n\
         counts comprise — every decoded instruction flows through the same\n\
         Table V rules checked above."
    );
    std::process::exit(if pass == total { 0 } else { 1 });
}
