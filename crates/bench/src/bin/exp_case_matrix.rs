//! Experiment: Table I / Fig. 3 — the information-flow case matrix.
//!
//! Runs one app per {source, intermediate, sink} scenario under
//! TaintDroid-only and NDroid (plus benign apps for false-positive
//! checks) and prints the detection matrix. Expected shape: TaintDroid
//! detects only Case 1; NDroid detects all five; nobody flags the
//! benign apps.

use ndroid_apps::{all_case_apps, benign};
use ndroid_core::report::{collect_outcome, DetectionReport};
use ndroid_core::Mode;

fn main() {
    let modes = [Mode::TaintDroid, Mode::NDroid];
    let mut report = DetectionReport::new();
    let trace = std::env::args().any(|a| a == "--trace");

    println!("== Table I / Fig. 3 — information flows through JNI ==\n");
    for mode in modes {
        for (case, app, expected_taint) in all_case_apps() {
            let description = app.description.clone();
            let sys = app.run(mode).expect("app run");
            if trace && mode == Mode::NDroid {
                println!("--- {case} ({description}) trace ---");
                for e in sys.trace.events().iter().take(40) {
                    println!("  {e}");
                }
                println!();
            }
            let markers: Vec<String> = expected_taint
                .source_names()
                .iter()
                .map(|s| s.to_string())
                .collect();
            let marker_refs: Vec<&str> = markers.iter().map(String::as_str).collect();
            // Ground truth markers: the actual device values.
            let device = ndroid_dvm::framework::DeviceProfile::default();
            let mut values = vec![
                device.device_id.clone(),
                device.contact.1.clone(),
                device.last_sms.clone(),
            ];
            values.extend(marker_refs.iter().map(|s| s.to_string()));
            let value_refs: Vec<&str> = values.iter().map(String::as_str).collect();
            report.push(collect_outcome(case, &sys, &value_refs));
        }
        // Benign apps.
        for (name, app) in [
            ("benign-game", benign::physics_game()),
            ("benign-license", benign::audio_license_check()),
            ("benign-dsp", benign::dsp_filter()),
        ] {
            let sys = app.run(mode).expect("app run");
            report.push(collect_outcome(name, &sys, &[]));
        }
    }

    println!("{}", report.render(&modes));

    // Assert the paper's claim programmatically.
    let taintdroid_detects: Vec<&str> = report
        .outcomes()
        .iter()
        .filter(|o| o.mode == Mode::TaintDroid && o.detected())
        .map(|o| o.case.as_str())
        .collect();
    let ndroid_detects = report
        .outcomes()
        .iter()
        .filter(|o| o.mode == Mode::NDroid && o.detected())
        .count();
    println!("taintdroid detects: {taintdroid_detects:?} (paper: only case 1)");
    println!("ndroid detects:     {ndroid_detects}/5 leak cases (paper: all)");
    for o in report.outcomes() {
        if o.detected() {
            for l in &o.leaks {
                println!(
                    "  [{} / {}] {}",
                    o.case,
                    o.mode,
                    ndroid_core::report::describe_leak(l)
                );
            }
        }
    }
}
