//! Experiment: Table I / Fig. 3 — the information-flow case matrix.
//!
//! Runs one app per {source, intermediate, sink} scenario under
//! TaintDroid-only and NDroid (plus benign apps for false-positive
//! checks) through the batch-analysis farm and prints the detection
//! matrix. Expected shape: TaintDroid detects only Case 1; NDroid
//! detects all five; nobody flags the benign apps.
//!
//! `--workers N` shards the runs across N farm workers (default 1);
//! the matrix is identical for any N. `--trace` additionally prints
//! the first NDroid trace events per case.

use ndroid_apps::builder::App;
use ndroid_apps::farm::Cases;
use ndroid_apps::{all_case_apps, benign, farm};
use ndroid_core::batch::JobSource;
use ndroid_core::batch::{run_batch, BatchConfig};
use ndroid_core::report::{collect_outcome, DetectionReport};
use ndroid_core::{Mode, SystemConfig};

fn workers_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    let modes = [Mode::TaintDroid, Mode::NDroid];
    let workers = workers_arg();
    let trace = std::env::args().any(|a| a == "--trace");
    let mut report = DetectionReport::new();

    println!("== Table I / Fig. 3 — information flows through JNI ==");
    println!("(farm: {workers} worker(s))\n");

    if trace {
        for (case, app, _) in all_case_apps() {
            let description = app.description.clone();
            let sys = app.run(Mode::NDroid).expect("app run");
            println!("--- {case} ({description}) trace ---");
            for e in sys.trace.events().iter().take(40) {
                println!("  {e}");
            }
            println!();
        }
    }

    // Ground truth markers: the actual device values plus the taint
    // source names.
    let device = ndroid_dvm::framework::DeviceProfile::default();
    let mut values = vec![
        device.device_id.clone(),
        device.contact.1.clone(),
        device.last_sms.clone(),
    ];
    for (_, _, taint) in all_case_apps() {
        for name in taint.source_names() {
            if !values.contains(&name.to_string()) {
                values.push(name.to_string());
            }
        }
    }
    let value_refs: Vec<&str> = values.iter().map(String::as_str).collect();

    for mode in modes {
        let config = SystemConfig::new(mode).quiet(true);
        let mut jobs = Cases.jobs(&config);
        let benign_apps: [(&str, fn() -> App); 3] = [
            ("benign-game", benign::physics_game),
            ("benign-license", benign::audio_license_check),
            ("benign-dsp", benign::dsp_filter),
        ];
        for (name, f) in benign_apps {
            jobs.push(farm::app_job(name, config.clone(), f));
        }
        let batch = run_batch(jobs, BatchConfig::new(workers));
        for result in batch.results {
            let run = result
                .outcome
                .report()
                .unwrap_or_else(|| panic!("{} did not complete", result.label));
            let case = result
                .label
                .strip_prefix("case/")
                .unwrap_or(&result.label);
            let markers: &[&str] = if case.starts_with("benign") {
                &[]
            } else {
                &value_refs
            };
            report.push(collect_outcome(case, run, markers));
        }
    }

    println!("{}", report.render(&modes));

    // Assert the paper's claim programmatically.
    let taintdroid_detects: Vec<&str> = report
        .outcomes()
        .iter()
        .filter(|o| o.mode == Mode::TaintDroid && o.detected())
        .map(|o| o.case.as_str())
        .collect();
    let ndroid_detects = report
        .outcomes()
        .iter()
        .filter(|o| o.mode == Mode::NDroid && o.detected())
        .count();
    println!("taintdroid detects: {taintdroid_detects:?} (paper: only case 1)");
    println!("ndroid detects:     {ndroid_detects}/5 leak cases (paper: all)");
    for o in report.outcomes() {
        if o.detected() {
            for l in &o.leaks {
                println!(
                    "  [{} / {}] {}",
                    o.case,
                    o.mode,
                    ndroid_core::report::describe_leak(l)
                );
            }
        }
    }
}
