//! Experiment: the §VI manual survey — eight apps driven by hand;
//! NDroid finds three delivering contact/SMS data to native code and
//! one (ePhone) leaking it.

use ndroid_apps::survey::survey_apps;
use ndroid_core::Mode;
use ndroid_dvm::Taint;

fn main() {
    println!("== §VI — manually driven apps ==\n");
    let mut delivered = 0;
    let mut leaked = 0;
    for (i, entry) in survey_apps().into_iter().enumerate() {
        let name = entry.app.name.clone();
        let sys = entry.app.run(Mode::NDroid).expect("app run");
        let delivers = sys
            .trace
            .events()
            .iter()
            .any(|e| {
                e.kind == "jni-entry"
                    && e.text
                        .rsplit("taint: ")
                        .next()
                        .and_then(|h| u32::from_str_radix(h.trim_start_matches("0x"), 16).ok())
                        .map(|b| Taint(b).intersects(Taint::CONTACTS | Taint::SMS))
                        .unwrap_or(false)
            });
        let leaks = sys
            .leaks()
            .iter()
            .any(|l| l.taint.intersects(Taint::CONTACTS | Taint::SMS));
        if delivers || leaks {
            delivered += 1;
        }
        if leaks {
            leaked += 1;
        }
        println!(
            "  app {:>2}: {:<18} delivers-to-native: {:<5}  leaks: {}",
            i + 1,
            name,
            delivers || leaks,
            leaks
        );
    }
    println!();
    println!("delivered contact/SMS to native code: {delivered} (paper: 3)");
    println!("leaked through native code:           {leaked} (paper: 1, ePhone)");
}
