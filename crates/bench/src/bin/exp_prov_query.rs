//! Experiment / CI gate: fleet-scale provenance queries over the
//! tiered store.
//!
//! Runs the gallery and the adversarial corpus through the batch farm
//! with the tiered provenance store enabled at a deliberately small
//! hot-ring capacity (so every run seals segments), then renders a
//! fixed set of cross-run [`ProvQuery`]s — per-label, per-kind,
//! per-sink-name, seq-windowed — plus each job's tier counters
//! (segments sealed / segments decoded by the leak-path accounting).
//! The transcript is diffed against the golden; any divergence exits
//! 1. Pass `--bless` to rewrite the golden after an intentional
//! corpus or store-format change.

use ndroid_apps::farm::{Adversarial, Gallery};
use ndroid_core::batch::{jobs_from, run_batch, BatchConfig};
use ndroid_core::{EventKind, ProvQuery, ProvenanceLevel, SystemConfig};

const GOLDEN: &str = include_str!("exp_prov_query_golden.txt");

/// Where `--bless` writes the regenerated golden (the source tree, so
/// the next build picks it up via `include_str!`).
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/src/bin/exp_prov_query_golden.txt"
);

fn main() {
    let bless = std::env::args().any(|a| a == "--bless");

    let config = SystemConfig::ndroid()
        .quiet(true)
        .provenance(ProvenanceLevel::Full)
        .provenance_store(true)
        .provenance_capacity(4);
    let batch = run_batch(
        jobs_from(&[&Gallery, &Adversarial], &config),
        BatchConfig::new(4),
    );

    let mut actual = String::new();

    // Per-job tier counters: how many segments each run sealed and how
    // many the sink-guided leak-path accounting had to decode — the
    // segment-skip effectiveness surface.
    actual.push_str("== tier counters ==\n");
    for r in &batch.results {
        let rep = r.outcome.report().expect("all gate jobs complete");
        let p = rep.provenance.expect("Full-level job carries a summary");
        actual.push_str(&format!(
            "{:<44} recorded={:<4} segments={:<3} decoded={}\n",
            r.label, p.recorded, p.segments, p.segments_decoded
        ));
    }

    let queries: [(&str, ProvQuery); 6] = [
        ("label 0x2", ProvQuery::new().label(0x2)),
        ("label 0x200", ProvQuery::new().label(0x200)),
        ("kind sink", ProvQuery::new().kind(EventKind::Sink)),
        (
            "sources in seq 0..8",
            ProvQuery::new().kind(EventKind::Source).seq_range(0, 8),
        ),
        ("sink send", ProvQuery::new().sink("send")),
        (
            "sink HttpClient.post carrying 0x202",
            ProvQuery::new().sink("HttpClient.post").label(0x202),
        ),
    ];
    for (desc, q) in &queries {
        actual.push_str(&format!("\n== query: {desc} ==\n"));
        actual.push_str(&batch.query(q).render());
    }
    print!("{actual}");

    if bless {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden");
        println!("\ngolden blessed: {GOLDEN_PATH}");
        return;
    }

    if actual != GOLDEN {
        eprintln!("\nprovenance query transcript DIVERGED from golden:");
        for (i, (a, g)) in actual.lines().zip(GOLDEN.lines()).enumerate() {
            if a != g {
                eprintln!("  line {}:\n    actual: {a}\n    golden: {g}", i + 1);
            }
        }
        let (na, ng) = (actual.lines().count(), GOLDEN.lines().count());
        if na != ng {
            eprintln!("  line counts differ: actual {na} vs golden {ng}");
        }
        std::process::exit(1);
    }
    println!("\nprovenance query transcript matches golden");
}
