//! Experiment: Fig. 10 — CF-Bench overheads.
//!
//! Runs every CF-Bench-analog kernel under TaintDroid, NDroid and the
//! DroidScope-like configuration, printing the slowdown relative to a
//! vanilla run. The shape to compare with the paper: Java rows near
//! 1×, native rows several ×, DroidScope-like far above NDroid
//! everywhere (the paper: NDroid 5.45±0.414× overall vs. DroidScope's
//! ≥11×).
//!
//! Usage: `exp_cfbench [iterations] [repetitions]` (defaults tuned for
//! a ~1-minute run; the paper averaged 30 repetitions).

use ndroid_cfbench::run_suite;
use ndroid_core::Mode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iterations: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(60_000);
    let repetitions: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    println!("== Fig. 10 — CF-Bench overhead (iters={iterations}, reps={repetitions}) ==\n");
    let modes = [Mode::TaintDroid, Mode::NDroid, Mode::DroidScopeLike];
    let report = run_suite(&modes, iterations, repetitions);
    println!("{}", report.render());

    let ndroid = report.overall_score(Mode::NDroid);
    let droidscope = report.overall_score(Mode::DroidScopeLike);
    println!("paper-vs-measured (overall slowdown):");
    println!("  NDroid          paper 5.45±0.414x   measured {ndroid:.2}x");
    println!("  DroidScope-like paper >=11x         measured {droidscope:.2}x");
    println!(
        "  shape check: DroidScope-like / NDroid = {:.2} (paper: >= 2.0)",
        droidscope / ndroid
    );
    println!(
        "  shape check: native {:.2}x >> java {:.2}x under NDroid",
        report.native_score(Mode::NDroid),
        report.java_score(Mode::NDroid)
    );
}
