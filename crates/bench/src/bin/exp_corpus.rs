//! Experiment: §III market study + Fig. 2 category distribution —
//! then actually *analyzing* a corpus shard through the batch farm.
//!
//! Regenerates every published number from the raw (synthetic,
//! calibrated) corpus: 227,911 apps; 37,506 Type I (16.46%); 1,738
//! Type II (394 loadable); 16 Type III; 4,034 lib-less Type I apps
//! with 48.1% AdMob usage; the Game-dominated category distribution;
//! and the library popularity ranking. Then runs a pinned 32-sample
//! Type-I shard through NDroid on the farm (`--workers N`, default 1)
//! and scores the verdicts against each sample's known ground truth.

use ndroid_apps::farm::{self, CorpusShard};
use ndroid_core::batch::JobSource;
use ndroid_core::batch::{run_batch, BatchConfig};
use ndroid_core::SystemConfig;
use ndroid_corpus::{classify, generate, CorpusConfig, JniType};

/// The pinned shard every run of this experiment analyzes.
const SHARD_SIZE: usize = 32;
const SHARD_SEED: u64 = 0xD514;

fn workers_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    let config = CorpusConfig::default();
    println!("== §III — analysis of apps using JNI ==");
    println!(
        "generating calibrated corpus (n = {}, seed = {:#x}) …\n",
        config.total, config.seed
    );
    let records = generate(&config);
    let stats = classify(&records);
    println!("{}", stats.render());

    println!("paper-vs-measured:");
    let rows = [
        ("total apps", 227_911usize, stats.total),
        ("type I", 37_506, stats.type1),
        ("type II", 1_738, stats.type2),
        ("type II loadable", 394, stats.type2_loadable),
        ("type III", 16, stats.type3),
        ("type I without libs", 4_034, stats.type1_without_libs),
    ];
    for (name, paper, measured) in rows {
        let status = if paper == measured { "match" } else { "DIFF" };
        println!("  {name:<22} paper {paper:>7}   measured {measured:>7}   [{status}]");
    }
    println!(
        "  {:<22} paper {:>6.2}%   measured {:>6.2}%",
        "native fraction",
        16.46,
        100.0 * stats.native_fraction
    );
    println!(
        "  {:<22} paper {:>6.1}%   measured {:>6.1}%",
        "AdMob fraction",
        48.1,
        100.0 * stats.admob_fraction
    );
    let game_pct = stats
        .category_histogram
        .first()
        .map(|(_, n)| 100.0 * *n as f64 / stats.type1 as f64)
        .unwrap_or(0.0);
    println!(
        "  {:<22} paper {:>6.1}%   measured {:>6.1}%   (Fig. 2)",
        "Game category", 42.0, game_pct
    );

    // Dynamic analysis of a pinned shard, through the batch farm.
    let workers = workers_arg();
    println!(
        "\n== farm: analyzing a {SHARD_SIZE}-sample Type-I shard \
         (seed {SHARD_SEED:#x}, {workers} worker(s)) =="
    );
    let sys_config = SystemConfig::ndroid().quiet(true);
    let jobs = CorpusShard { n: SHARD_SIZE, seed: SHARD_SEED }.jobs(&sys_config);
    let batch = run_batch(jobs, BatchConfig::new(workers));
    print!("{}", batch.render());

    // Score against each sample's known ground truth.
    let shard = generate(&farm::shard_corpus_config(SHARD_SIZE, SHARD_SEED));
    let truth: Vec<bool> = shard
        .iter()
        .filter(|r| r.jni_type() == JniType::TypeI && !r.native_libs.is_empty())
        .take(SHARD_SIZE)
        .map(|r| farm::spec_for_record(r).leak)
        .collect();
    let mut agree = 0usize;
    for (result, expect_leak) in batch.results.iter().zip(&truth) {
        if result.outcome.report().map(|r| r.leaked()) == Some(*expect_leak) {
            agree += 1;
        }
    }
    println!(
        "\nground-truth agreement: {agree}/{} samples \
         (leak specs detected, decoy specs clean)",
        truth.len()
    );
    if agree != truth.len() {
        std::process::exit(1);
    }
}
