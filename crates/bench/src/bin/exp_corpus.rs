//! Experiment: §III market study + Fig. 2 category distribution.
//!
//! Regenerates every published number from the raw (synthetic,
//! calibrated) corpus: 227,911 apps; 37,506 Type I (16.46%); 1,738
//! Type II (394 loadable); 16 Type III; 4,034 lib-less Type I apps
//! with 48.1% AdMob usage; the Game-dominated category distribution;
//! and the library popularity ranking.

use ndroid_corpus::{classify, generate, CorpusConfig};

fn main() {
    let config = CorpusConfig::default();
    println!("== §III — analysis of apps using JNI ==");
    println!(
        "generating calibrated corpus (n = {}, seed = {:#x}) …\n",
        config.total, config.seed
    );
    let records = generate(&config);
    let stats = classify(&records);
    println!("{}", stats.render());

    println!("paper-vs-measured:");
    let rows = [
        ("total apps", 227_911usize, stats.total),
        ("type I", 37_506, stats.type1),
        ("type II", 1_738, stats.type2),
        ("type II loadable", 394, stats.type2_loadable),
        ("type III", 16, stats.type3),
        ("type I without libs", 4_034, stats.type1_without_libs),
    ];
    for (name, paper, measured) in rows {
        let status = if paper == measured { "match" } else { "DIFF" };
        println!("  {name:<22} paper {paper:>7}   measured {measured:>7}   [{status}]");
    }
    println!(
        "  {:<22} paper {:>6.2}%   measured {:>6.2}%",
        "native fraction",
        16.46,
        100.0 * stats.native_fraction
    );
    println!(
        "  {:<22} paper {:>6.1}%   measured {:>6.1}%",
        "AdMob fraction",
        48.1,
        100.0 * stats.admob_fraction
    );
    let game_pct = stats
        .category_histogram
        .first()
        .map(|(_, n)| 100.0 * *n as f64 / stats.type1 as f64)
        .unwrap_or(0.0);
    println!(
        "  {:<22} paper {:>6.1}%   measured {:>6.1}%   (Fig. 2)",
        "Game category", 42.0, game_pct
    );
}
