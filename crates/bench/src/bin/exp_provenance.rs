//! Experiment / CI gate: provenance leak-path reconstruction.
//!
//! Runs each pinned gallery case at `Level::Full`, renders every
//! source→sink leak path from the flow graph, and diffs the rendering
//! against the golden transcript below. Exits 1 on any divergence —
//! the leak-path pins are as load-bearing as the `LeakEvent` pins in
//! `gallery_regression`. Pass `--dot` to also dump each case's flow
//! graph in DOT for manual inspection.

use ndroid_apps::{crypto_hider, qq_phonebook, thumb_spy, App};
use ndroid_core::{ProvenanceLevel, SystemConfig};
use ndroid_dvm::Taint;

const GALLERY: [(&str, fn() -> App); 3] = [
    ("qq_phonebook", qq_phonebook::qq_phonebook),
    ("thumb_spy", thumb_spy::thumb_spy),
    ("crypto_hider", crypto_hider::crypto_hider),
];

/// The pinned per-case leak-path transcripts (label names resolved via
/// [`Taint::bit_name`], paths in sink order then bit order).
const GOLDEN: &str = include_str!("exp_provenance_golden.txt");

fn render_case(name: &str, build: fn() -> App, dot: bool) -> String {
    let sys = build()
        .run_with(
            SystemConfig::ndroid()
                .quiet(true)
                .provenance(ProvenanceLevel::Full),
        )
        .expect("gallery app runs");
    let graph = sys.flow_graph();
    let summary = sys.report().provenance.expect("summary present");
    let mut out = format!(
        "== {name}: {} events, {} leak paths (fingerprint {:#018x}) ==\n",
        graph.events().len(),
        graph.total_leak_paths(),
        summary.fingerprint,
    );
    for sink in graph.sinks() {
        for path in graph.leak_paths(sink) {
            out.push_str(&format!(
                "[{}] {}\n",
                Taint::bit_name(path.label),
                graph.render_path(&path)
            ));
        }
    }
    if dot {
        eprintln!("{}", graph.to_dot_with(|bit| Taint::bit_name(bit)));
    }
    out
}

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");
    let mut actual = String::new();
    for (name, build) in GALLERY {
        actual.push_str(&render_case(name, build, dot));
    }
    print!("{actual}");
    if actual != GOLDEN {
        eprintln!("\nleak-path transcript DIVERGED from golden:");
        for (i, (a, g)) in actual.lines().zip(GOLDEN.lines()).enumerate() {
            if a != g {
                eprintln!("  line {}:\n    actual: {a}\n    golden: {g}", i + 1);
            }
        }
        let (na, ng) = (actual.lines().count(), GOLDEN.lines().count());
        if na != ng {
            eprintln!("  line counts differ: actual {na} vs golden {ng}");
        }
        std::process::exit(1);
    }
    println!("\nleak-path transcript matches golden");
}
