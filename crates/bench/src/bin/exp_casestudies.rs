//! Experiment: Figs. 6–9 — the four case-study analysis logs.
//!
//! Runs the QQPhoneBook, ePhone and PoC replicas under NDroid and
//! prints the analysis trace, which should structurally match the
//! corresponding figure in the paper (same hooks, same taint values,
//! same sinks).

use ndroid_apps::{ephone, poc_case2, poc_case3, qq_phonebook};
use ndroid_core::report::describe_leak;
use ndroid_core::Mode;

fn show(figure: &str, app: ndroid_apps::App) {
    let name = app.name.clone();
    let description = app.description.clone();
    println!("== {figure}: {name} ==");
    println!("   {description}\n");
    let sys = app.run(Mode::NDroid).expect("app run");
    for event in sys.trace.events() {
        println!("  {event}");
    }
    println!();
    if sys.leaks().is_empty() {
        println!("  -> no leak detected\n");
    }
    for leak in sys.leaks() {
        println!("  -> LEAK: {}", describe_leak(leak));
        println!("     data: {}", leak.data);
    }
    if let Some(stats) = sys.ndroid_stats() {
        println!(
            "     stats: {} insns traced, {} jni entries, {} source policies, {} chains",
            stats.insns_traced, stats.jni_entries, stats.source_policies, stats.chains_activated
        );
    }
    println!("\n{}\n", "=".repeat(72));
}

fn main() {
    show("Fig. 6", qq_phonebook::qq_phonebook());
    show("Fig. 7", ephone::ephone());
    show("Fig. 8", poc_case2::poc_case2());
    show("Fig. 9", poc_case3::poc_case3());
}
