//! Experiment / CI gate: resident-service determinism.
//!
//! Boots an `AnalysisService` at `--workers N` (default 4), submits
//! the pinned 32-sample corpus shard on the bulk lane and the gallery
//! + adversarial corpus on the interactive lane — all while workers
//! are already running — and asserts the drained `BatchReport` is
//! byte-identical to the offline `run_batch` merge over the same jobs
//! in submission order. Also smoke-checks the streaming path (every
//! ticket answered exactly once, lanes intact). Exits 1 on any
//! divergence — this is the golden check `scripts/ci.sh` runs.

use ndroid_apps::farm::{Adversarial, CorpusShard, Gallery};
use ndroid_core::batch::{jobs_from, run_batch, AnalysisJob, BatchConfig, Lane};
use ndroid_core::{AnalysisService, ServiceConfig, SystemConfig};

const SHARD_SIZE: usize = 32;
const SHARD_SEED: u64 = 0xD514;

fn arg_after(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The gate's job list in submission order: bulk shard first, then the
/// interactive gallery + adversarial corpus (matching the lanes the
/// service run assigns below).
fn jobs() -> Vec<AnalysisJob> {
    let config = SystemConfig::ndroid().quiet(true);
    let mut jobs = jobs_from(
        &[&CorpusShard { n: SHARD_SIZE, seed: SHARD_SEED }],
        &config,
    );
    for mut job in jobs_from(&[&Gallery, &Adversarial], &config) {
        job.lane = Lane::Interactive;
        jobs.push(job);
    }
    jobs
}

fn main() {
    let workers = arg_after("--workers", 4);
    let config = SystemConfig::ndroid().quiet(true);
    println!(
        "== resident service determinism: {SHARD_SIZE}-sample shard (bulk) + \
         gallery + adversarial (interactive), {workers} worker(s) =="
    );

    // Offline reference: the same jobs through run_batch, sequentially.
    let offline = run_batch(jobs(), BatchConfig::new(1));

    // The live service: submissions land while workers are running.
    let service = AnalysisService::start(ServiceConfig::new(workers).capacity(16));
    let bulk = service
        .submit_source(&CorpusShard { n: SHARD_SIZE, seed: SHARD_SEED }, &config, Lane::Bulk)
        .expect("bulk submission");
    let interactive = {
        let mut t = service
            .submit_source(&Gallery, &config, Lane::Interactive)
            .expect("gallery submission");
        t.extend(
            service
                .submit_source(&Adversarial, &config, Lane::Interactive)
                .expect("adversarial submission"),
        );
        t
    };
    println!(
        "submitted {} bulk + {} interactive tickets (capacity 16 — backpressure exercised)",
        bulk.len(),
        interactive.len()
    );
    let drained = service.shutdown();

    print!("{}", drained.render());

    let reports_equal = drained == offline;
    let renders_equal = drained.render() == offline.render();
    println!(
        "\nservice drain vs offline merge: reports {} / renders {}",
        if reports_equal { "IDENTICAL" } else { "DIVERGED" },
        if renders_equal { "byte-identical" } else { "DIVERGED" },
    );
    if !reports_equal || !renders_equal {
        eprintln!("--- offline render ---\n{}", offline.render());
        std::process::exit(1);
    }
    if drained.completed() != drained.results.len() {
        eprintln!("not every job completed");
        std::process::exit(1);
    }

    // Streaming smoke: every ticket answered exactly once, lanes intact,
    // nothing left for the final drain.
    let service = AnalysisService::start(ServiceConfig::new(workers).capacity(16));
    let tickets = service
        .submit_source(&Gallery, &config, Lane::Interactive)
        .expect("gallery submission");
    let mut answered = 0usize;
    for _ in 0..tickets.len() {
        let r = service.recv_result().expect("a result per ticket");
        if r.lane != Lane::Interactive || r.outcome.report().is_none() {
            eprintln!("streamed result diverged: {:?} on {}", r.lane, r.label);
            std::process::exit(1);
        }
        answered += 1;
    }
    let leftover = service.shutdown();
    println!(
        "streaming: {answered}/{} tickets answered, {} left for drain",
        tickets.len(),
        leftover.results.len()
    );
    if answered != tickets.len() || !leftover.results.is_empty() {
        eprintln!("streaming accounting diverged");
        std::process::exit(1);
    }
}
