//! Experiment / CI gate: adversarial corpus scoring matrix.
//!
//! Runs the full adversarial corpus (detour, interwork, rewrite,
//! mutation, benign families) through the batch farm, scores every
//! verdict against the corpus ground truth, and renders the per-family
//! precision/recall matrix plus a provenance leak-path transcript at
//! `Level::Full` for every case. The transcript is diffed against the
//! golden below and the aggregate score must be perfect (recall 1.0 on
//! taint-preserving cases, precision 1.0 on taint-killing and benign
//! cases) — either divergence exits 1. Pass `--bless` to rewrite the
//! golden after an intentional corpus change, and `--no-blocks` to run
//! the whole gate with superblock dispatch disabled (the stepper
//! tracer must reproduce the identical matrix and transcript).

use ndroid_apps::adversarial::{corpus, expected_leak};
use ndroid_apps::farm::Adversarial;
use ndroid_core::batch::{run_batch, BatchConfig, JobSource};
use ndroid_core::{score_batch, ProvenanceLevel, SystemConfig};
use ndroid_dvm::Taint;

const GOLDEN: &str = include_str!("exp_adversarial_golden.txt");

/// Where `--bless` writes the regenerated golden (the source tree, so
/// the next build picks it up via `include_str!`).
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/src/bin/exp_adversarial_golden.txt"
);

/// One case's leak-path transcript at `Level::Full`: every
/// reconstructed source→sink path for leaking cases, a pinned "clean"
/// line for the rest.
fn render_case(case: &ndroid_apps::adversarial::AdversarialCase, blocks: bool) -> String {
    let sys = case
        .build()
        .run_with(
            SystemConfig::ndroid()
                .quiet(true)
                .blocks(blocks)
                .provenance(ProvenanceLevel::Full),
        )
        .expect("adversarial case runs");
    let graph = sys.flow_graph();
    let total = graph.total_leak_paths();
    if total == 0 {
        return format!("== {}: clean, 0 leak paths ==\n", case.label);
    }
    let mut out = format!("== {}: {} leak paths ==\n", case.label, total);
    for sink in graph.sinks() {
        for path in graph.leak_paths(sink) {
            out.push_str(&format!(
                "[{}] {}\n",
                Taint::bit_name(path.label),
                graph.render_path(&path)
            ));
        }
    }
    out
}

fn main() {
    let bless = std::env::args().any(|a| a == "--bless");
    let blocks = !std::env::args().any(|a| a == "--no-blocks");

    let batch = run_batch(
        Adversarial.jobs(&SystemConfig::ndroid().quiet(true).blocks(blocks)),
        BatchConfig::new(4),
    );
    let score = score_batch(&batch, expected_leak);

    let mut actual = score.render();
    actual.push('\n');
    for case in corpus() {
        actual.push_str(&render_case(&case, blocks));
    }
    print!("{actual}");

    if !score.perfect() {
        eprintln!("\nadversarial corpus NOT scored perfectly (see matrix above)");
        std::process::exit(1);
    }

    if bless {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden");
        println!("\ngolden blessed: {GOLDEN_PATH}");
        return;
    }

    if actual != GOLDEN {
        eprintln!("\nadversarial transcript DIVERGED from golden:");
        for (i, (a, g)) in actual.lines().zip(GOLDEN.lines()).enumerate() {
            if a != g {
                eprintln!("  line {}:\n    actual: {a}\n    golden: {g}", i + 1);
            }
        }
        let (na, ng) = (actual.lines().count(), GOLDEN.lines().count());
        if na != ng {
            eprintln!("  line counts differ: actual {na} vs golden {ng}");
        }
        std::process::exit(1);
    }
    println!("\nadversarial score matrix and leak paths match golden");
}
