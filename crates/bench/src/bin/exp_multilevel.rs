//! Experiment: Fig. 5 — multilevel hooking.
//!
//! Replays the PoC-case-3 app (whose native code drives the
//! `CallVoidMethodA → dvmCallMethodA → dvmInterpret` chain) and prints
//! the hook statistics: how many chains were activated from
//! third-party native code, how many deep hooks actually fired, and —
//! the point of the technique — how many instrumentations *would* have
//! fired if `dvmCallMethod*`/`dvmInterpret` were hooked
//! unconditionally. Also runs a hammering workload where the framework
//! (not the app) calls the same internals to show the gating win.

use ndroid_core::{Mode, NDroidAnalysis};
use ndroid_emu::shadow::ShadowState;
use ndroid_emu::runtime::Analysis;
use ndroid_jni::dvm_addr;

fn main() {
    println!("== Fig. 5 — multilevel hooking ==\n");

    // Real app run.
    let sys = ndroid_apps::poc_case3::poc_case3()
        .run(Mode::NDroid)
        .expect("app run");
    let stats = sys.ndroid_stats().unwrap();
    println!("PoC case 3 under NDroid:");
    println!("  branch events processed:      {}", stats.branch_events);
    println!("  chains activated (T1):        {}", stats.chains_activated);
    println!("  deep hooks fired (T2+):       {}", stats.deep_hooks);
    println!(
        "  unconditional counterfactual: {}",
        stats.unconditional_hooks
    );

    // Synthetic framework churn: dvmInterpret entered 100,000 times by
    // the VM itself (from outside the third-party library). Multilevel
    // gating must not instrument any of them.
    let mut analysis = NDroidAnalysis::new();
    let mut shadow = ShadowState::new();
    let interp = dvm_addr("dvmInterpret");
    let bridge = dvm_addr("dvmCallMethodA");
    for i in 0..100_000u32 {
        // The framework's own interpreter entries (from libdvm).
        analysis.on_branch(&mut shadow, 0x6100_0000 + (i % 64) * 4, bridge);
        analysis.on_branch(&mut shadow, bridge + 0x20, interp);
    }
    println!("\nframework-only churn (200,000 branch events):");
    println!(
        "  chains activated:             {} (gated: none from framework)",
        analysis.stats.chains_activated
    );
    println!(
        "  deep hooks fired:             {}",
        analysis.stats.deep_hooks
    );
    println!(
        "  unconditional counterfactual: {} (what naive hooking pays)",
        analysis.stats.unconditional_hooks
    );
    let saved = analysis.stats.unconditional_hooks - analysis.stats.deep_hooks;
    println!(
        "\nmultilevel hooking avoided {saved} of {} instrumentations ({:.1}%)",
        analysis.stats.unconditional_hooks,
        100.0 * saved as f64 / analysis.stats.unconditional_hooks.max(1) as f64
    );
}
