//! Experiment / CI gate: copy-on-write snapshot fan-out determinism.
//!
//! Fans `--sessions N` (default 1000) monkey schedules over the
//! gated-leak app two ways — re-booting a fresh system per session
//! (the pre-snapshot baseline) and forking every session from one
//! warmed copy-on-write image per worker — and asserts the merged
//! `BatchReport`s are byte-identical. Exits 1 on any divergence —
//! this is the golden check `scripts/ci.sh` runs.

use ndroid_apps::farm::Monkey;
use ndroid_core::batch::{run_batch, BatchConfig, JobSource};
use ndroid_core::SystemConfig;

const STEPS: usize = 25;
const BASE_SEED: u64 = 0x5EED;

fn arg_after(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let sessions = arg_after("--sessions", 1000);
    let workers = arg_after("--workers", 4);
    let config = SystemConfig::ndroid().quiet(true);
    println!(
        "== snapshot fan-out determinism: {sessions} monkey sessions x {STEPS} steps =="
    );

    let rebooted = run_batch(
        Monkey::fresh(sessions, STEPS, BASE_SEED).jobs(&config),
        BatchConfig::new(workers),
    );
    let forked = run_batch(
        Monkey::forked(sessions, STEPS, BASE_SEED).jobs(&config),
        BatchConfig::new(workers),
    );

    println!(
        "re-booted: {} completed, {} leaking | forked: {} completed, {} leaking",
        rebooted.completed(),
        rebooted.leaking(),
        forked.completed(),
        forked.leaking(),
    );

    let reports_equal = forked == rebooted;
    let renders_equal = forked.render() == rebooted.render();
    println!(
        "re-boot-per-session vs fork-from-image: reports {} / renders {}",
        if reports_equal { "IDENTICAL" } else { "DIVERGED" },
        if renders_equal { "byte-identical" } else { "DIVERGED" },
    );
    if !reports_equal || !renders_equal {
        eprintln!("--- forked render ---\n{}", forked.render());
        eprintln!("--- re-booted render ---\n{}", rebooted.render());
        std::process::exit(1);
    }
    if rebooted.completed() != sessions {
        eprintln!("not every session completed");
        std::process::exit(1);
    }
}
