#![warn(missing_docs)]

//! # ndroid-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see DESIGN.md's experiment index) plus Criterion benches.
//!
//! | Binary            | Reproduces                                   |
//! |-------------------|----------------------------------------------|
//! | `exp_corpus`      | §III stats + Fig. 2 category distribution     |
//! | `exp_case_matrix` | Table I / Fig. 3 detection matrix             |
//! | `exp_casestudies` | Figs. 6–9 analysis logs                       |
//! | `exp_survey`      | §VI manual survey (8 apps)                    |
//! | `exp_multilevel`  | Fig. 5 multilevel hooking statistics          |
//! | `exp_table5`      | Table V per-instruction propagation check     |
//! | `exp_cfbench`     | Fig. 10 CF-Bench overheads                    |
//!
//! Criterion benches: `cfbench` (per-kernel wall time under each mode)
//! and `ablations` (design-decision knobs D1/D2/D5 of DESIGN.md).

/// Formats a percentage for the experiment tables.
pub fn pct(n: usize, total: usize) -> String {
    format!("{:.2}%", 100.0 * n as f64 / total.max(1) as f64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pct_formats() {
        assert_eq!(super::pct(1, 4), "25.00%");
        assert_eq!(super::pct(0, 0), "0.00%");
    }
}
