//! Guest-driven tests of the JNI environment: real ARM code `BLX`ing
//! into the trap addresses, exercising arrays, fields, objects,
//! references and exceptions with taint tracking active.

use ndroid_arm::block::BlockCache;
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::reg::RegList;
use ndroid_arm::{Assembler, Cpu, Memory, Reg};
use ndroid_dvm::framework::install_framework;
use ndroid_dvm::{
    ArrayKind, ClassDef, Dvm, FieldDef, HeapObject, IndirectRef, IndirectRefKind, Program, Taint,
};
use ndroid_emu::layout;
use ndroid_emu::runtime::{call_guest, Analysis, HostTable, NativeCtx};
use ndroid_emu::{Kernel, ShadowState, TraceLog};
use ndroid_jni::{dvm_addr, install_jni};

struct TrackOnly;
impl Analysis for TrackOnly {
    fn tracks_native(&self) -> bool {
        true
    }

    // Minimal store-only propagation (Table V's STR rule) so tests can
    // observe shadow register taints through guest stores without
    // pulling in the full core tracer (which would be a dependency
    // cycle from this crate).
    fn on_insn(
        &mut self,
        shadow: &mut ShadowState,
        _cpu: &Cpu,
        _mem: &Memory,
        effect: &ndroid_arm::exec::Effect,
    ) {
        if let ndroid_arm::insn::Instr::Mem {
            load: false,
            rd,
            size,
            ..
        } = effect.instr
        {
            if let Some(addr) = effect.addr {
                shadow
                    .mem
                    .set_range(addr, size.bytes(), shadow.regs[rd.index()]);
            }
        }
    }
}

struct World {
    cpu: Cpu,
    mem: Memory,
    dvm: Dvm,
    shadow: ShadowState,
    kernel: Kernel,
    trace: TraceLog,
    budget: u64,
    icache: DecodeCache,
    blocks: BlockCache,
    table: HostTable,
}

impl World {
    fn new() -> World {
        let mut program = Program::new();
        install_framework(&mut program);
        program.add_class(ClassDef {
            name: "Lapp/Holder;".into(),
            instance_fields: vec![
                FieldDef {
                    name: "count".into(),
                    is_reference: false,
                },
                FieldDef {
                    name: "label".into(),
                    is_reference: true,
                },
            ],
            static_fields: vec![FieldDef {
                name: "shared".into(),
                is_reference: false,
            }],
            ..ClassDef::default()
        });
        let mut cpu = Cpu::new();
        cpu.regs[13] = layout::NATIVE_STACK_TOP;
        let mut table = HostTable::new();
        install_jni(&mut table);
        ndroid_libc::install_all(&mut table);
        World {
            cpu,
            mem: Memory::new(),
            dvm: Dvm::new(program),
            shadow: ShadowState::new(),
            kernel: Kernel::new(),
            trace: TraceLog::new(),
            budget: 1_000_000,
            icache: DecodeCache::new(),
            blocks: BlockCache::new(),
            table,
        }
    }

    fn run(&mut self, args: &[u32], build: impl FnOnce(&mut Assembler)) -> u32 {
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
        build(&mut asm);
        asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
        let code = asm.assemble().expect("assemble");
        self.mem.write_bytes(code.base, &code.bytes);
        let mut analysis = TrackOnly;
        let mut ctx = NativeCtx {
            cpu: &mut self.cpu,
            mem: &mut self.mem,
            dvm: &mut self.dvm,
            shadow: &mut self.shadow,
            kernel: &mut self.kernel,
            trace: &mut self.trace,
            analysis: &mut analysis,
            budget: &mut self.budget,
            icache: &mut self.icache,
            blocks: &mut self.blocks,
        };
        let (r0, _) = call_guest(&mut ctx, &self.table, code.base, args, |_, _| {})
            .expect("guest run");
        r0
    }
}

const OUT: u32 = 0x2000_0000;

#[test]
fn byte_array_roundtrip_with_taint() {
    let mut w = World::new();
    // Make a tainted byte array on the DVM heap.
    let arr = w.dvm.heap.alloc(HeapObject::Array {
        kind: ArrayKind::Byte,
        data: b"secret".iter().map(|b| *b as u32).collect(),
        taint: Taint::SMS,
    });
    let jarr = w.dvm.refs.add(IndirectRefKind::Local, arr).0;

    let r = w.run(&[jarr], |asm| {
        asm.mov(Reg::R4, Reg::R0);
        // len = GetArrayLength(arr)
        asm.call_abs(dvm_addr("GetArrayLength"));
        asm.mov(Reg::R5, Reg::R0);
        // buf = GetByteArrayElements(arr, NULL)
        asm.mov(Reg::R0, Reg::R4);
        asm.mov_imm(Reg::R1, 0).unwrap();
        asm.call_abs(dvm_addr("GetByteArrayElements"));
        // copy to OUT so the test can see the buffer address's content
        asm.mov(Reg::R1, Reg::R0);
        asm.ldr_const(Reg::R0, OUT);
        asm.mov(Reg::R2, Reg::R5);
        asm.call_abs(ndroid_libc::libc_addr("memcpy"));
        asm.mov(Reg::R0, Reg::R5); // return len
    });
    assert_eq!(r, 6);
    assert_eq!(w.mem.read_bytes(OUT, 6), b"secret");
    assert_eq!(
        w.shadow.mem.range_taint(OUT, 6),
        Taint::SMS,
        "array label spread over elements, preserved by memcpy"
    );
}

#[test]
fn set_byte_array_region_taints_array_object() {
    let mut w = World::new();
    let arr = w.dvm.heap.alloc(HeapObject::Array {
        kind: ArrayKind::Byte,
        data: vec![0; 8],
        taint: Taint::CLEAR,
    });
    let jarr = w.dvm.refs.add(IndirectRefKind::Local, arr).0;
    // A tainted native buffer.
    w.mem.write_bytes(OUT, b"located!");
    w.shadow.mem.set_range(OUT, 8, Taint::LOCATION_GPS);

    w.run(&[jarr], |asm| {
        // SetByteArrayRegion(arr, 0, 8, OUT)
        asm.mov_imm(Reg::R1, 0).unwrap();
        asm.mov_imm(Reg::R2, 8).unwrap();
        asm.ldr_const(Reg::R3, OUT);
        asm.call_abs(dvm_addr("SetByteArrayRegion"));
    });
    match w.dvm.heap.get(arr).unwrap() {
        HeapObject::Array { data, taint, .. } => {
            assert_eq!(data[0], b'l' as u32);
            assert_eq!(*taint, Taint::LOCATION_GPS, "native taint reached the object");
        }
        _ => panic!("not an array"),
    }
}

#[test]
fn object_fields_via_guest_code() {
    let cls_name = 0x2000_0100;
    let field_name = 0x2000_0140;
    let mut w = World::new();
    let class = w.dvm.program.find_class("Lapp/Holder;").unwrap();
    let obj = w.dvm.heap.alloc(HeapObject::Instance {
        class,
        fields: vec![0, 0],
        taints: vec![Taint::CLEAR; 2],
    });
    let jobj = w.dvm.refs.add(IndirectRefKind::Local, obj).0;
    w.mem.write_cstr(cls_name, b"Lapp/Holder;");
    w.mem.write_cstr(field_name, b"count");
    w.mem.write_u32(0x2000_0200, 77);
    w.shadow.mem.set_range(0x2000_0200, 4, Taint::IMSI);
    let r = w.run(&[jobj], |asm| {
        asm.mov(Reg::R4, Reg::R0);
        asm.ldr_const(Reg::R0, cls_name);
        asm.call_abs(dvm_addr("FindClass"));
        asm.ldr_const(Reg::R1, field_name);
        asm.call_abs(dvm_addr("GetFieldID"));
        asm.mov(Reg::R5, Reg::R0);
        asm.ldr_const(Reg::R2, 0x2000_0200);
        asm.ldr(Reg::R2, Reg::R2, 0);
        asm.mov(Reg::R0, Reg::R4);
        asm.mov(Reg::R1, Reg::R5);
        asm.call_abs(dvm_addr("SetIntField"));
        asm.mov(Reg::R0, Reg::R4);
        asm.mov(Reg::R1, Reg::R5);
        asm.call_abs(dvm_addr("GetIntField"));
    });
    assert_eq!(r, 77, "field value roundtrips");
    match w.dvm.heap.get(obj).unwrap() {
        HeapObject::Instance { fields, .. } => assert_eq!(fields[0], 77),
        _ => panic!(),
    }
}

#[test]
fn new_object_and_object_field() {
    let mut w = World::new();
    let cls_name = 0x2000_0100;
    let field_name = 0x2000_0140;
    w.mem.write_cstr(cls_name, b"Lapp/Holder;");
    w.mem.write_cstr(field_name, b"label");
    // Pre-make a tainted string to store into the object field.
    let s = w.dvm.heap.alloc_string("top-secret", Taint::CONTACTS);
    let jstr = w.dvm.refs.add(IndirectRefKind::Local, s).0;
    w.shadow.taint_object(IndirectRef(jstr), Taint::CONTACTS);

    let jobj = w.run(&[jstr], |asm| {
        asm.mov(Reg::R4, Reg::R0); // jstr
        asm.ldr_const(Reg::R0, cls_name);
        asm.call_abs(dvm_addr("FindClass"));
        asm.mov(Reg::R5, Reg::R0);
        // obj = NewObject(cls, 0)
        asm.mov_imm(Reg::R1, 1).unwrap(); // any non-null jmethodID
        asm.call_abs(dvm_addr("NewObject"));
        // SetObjectField(obj, fid(label), jstr)
        asm.push(RegList::of(&[Reg::R0, Reg::LR]));
        asm.mov(Reg::R0, Reg::R5);
        asm.ldr_const(Reg::R1, field_name);
        asm.call_abs(dvm_addr("GetFieldID"));
        asm.mov(Reg::R1, Reg::R0); // fid
        asm.pop(RegList::of(&[Reg::R0, Reg::LR]));
        asm.push(RegList::of(&[Reg::R0, Reg::LR]));
        asm.mov(Reg::R2, Reg::R4);
        asm.call_abs(dvm_addr("SetObjectField"));
        asm.pop(RegList::of(&[Reg::R0, Reg::LR]));
    });
    // Decode the returned object; its "label" field must hold the
    // string, with the field taint carrying CONTACTS.
    let obj = w.dvm.refs.decode(IndirectRef(jobj)).unwrap();
    match w.dvm.heap.get(obj).unwrap() {
        HeapObject::Instance { fields, taints, .. } => {
            let label_ref = fields[1];
            assert_ne!(label_ref, 0);
            let (text, _) = w.dvm.string_at(label_ref).unwrap();
            assert_eq!(text, "top-secret");
            assert_eq!(taints[1], Taint::CONTACTS);
        }
        other => panic!("wrong object {other:?}"),
    }
}

#[test]
fn global_refs_survive_local_cleanup() {
    let mut w = World::new();
    let s = w.dvm.heap.alloc_string("kept", Taint::IMEI);
    let local = w.dvm.refs.add(IndirectRefKind::Local, s).0;
    w.shadow.taint_object(IndirectRef(local), Taint::IMEI);

    let global = w.run(&[local], |asm| {
        asm.mov(Reg::R4, Reg::R0);
        asm.call_abs(dvm_addr("NewGlobalRef"));
        asm.mov(Reg::R5, Reg::R0);
        // DeleteLocalRef(local)
        asm.mov(Reg::R0, Reg::R4);
        asm.call_abs(dvm_addr("DeleteLocalRef"));
        asm.mov(Reg::R0, Reg::R5);
    });
    assert!(w.dvm.refs.decode(IndirectRef(local)).is_err(), "local gone");
    let obj = w.dvm.refs.decode(IndirectRef(global)).unwrap();
    assert_eq!(w.dvm.heap.string(obj).unwrap().0, "kept");
    assert_eq!(
        w.shadow.object_taint(IndirectRef(global)),
        Taint::IMEI,
        "taint followed the global ref"
    );
}

#[test]
fn exception_occurred_and_clear() {
    let mut w = World::new();
    let cls_name = 0x2000_0100;
    let msg = 0x2000_0180;
    w.mem.write_cstr(cls_name, b"Ljava/lang/RuntimeException;");
    w.mem.write_cstr(msg, b"boom");

    let had_exception = w.run(&[], |asm| {
        asm.ldr_const(Reg::R0, cls_name);
        asm.call_abs(dvm_addr("FindClass"));
        asm.ldr_const(Reg::R1, msg);
        asm.call_abs(dvm_addr("ThrowNew"));
        asm.call_abs(dvm_addr("ExceptionOccurred"));
        asm.mov(Reg::R4, Reg::R0);
        asm.call_abs(dvm_addr("ExceptionClear"));
        asm.mov(Reg::R0, Reg::R4);
    });
    assert_ne!(had_exception, 0, "ExceptionOccurred returned the throwable");
    assert!(w.dvm.pending_exception.is_none(), "cleared");
}

#[test]
fn string_length_functions() {
    let mut w = World::new();
    let s = w.dvm.heap.alloc_string("héllo", Taint::SMS);
    let jstr = w.dvm.refs.add(IndirectRefKind::Local, s).0;
    let utf_len = w.run(&[jstr], |asm| {
        asm.call_abs(dvm_addr("GetStringUTFLength"));
    });
    assert_eq!(utf_len, 6, "UTF-8 bytes");
    let s2 = w.dvm.heap.alloc_string("héllo", Taint::SMS);
    let jstr2 = w.dvm.refs.add(IndirectRefKind::Local, s2).0;
    let chars = w.run(&[jstr2], |asm| {
        asm.call_abs(dvm_addr("GetStringLength"));
    });
    assert_eq!(chars, 5, "character count");
}

#[test]
fn int_array_elements_roundtrip() {
    let mut w = World::new();
    let arr = w.dvm.heap.alloc(HeapObject::Array {
        kind: ArrayKind::Primitive,
        data: vec![10, 20, 30],
        taint: Taint::LOCATION_GPS,
    });
    let jarr = w.dvm.refs.add(IndirectRefKind::Local, arr).0;
    w.run(&[jarr], |asm| {
        asm.mov(Reg::R4, Reg::R0);
        asm.mov_imm(Reg::R1, 0).unwrap();
        asm.call_abs(dvm_addr("GetIntArrayElements"));
        asm.mov(Reg::R5, Reg::R0);
        // Modify element 1 in the native copy, then commit back.
        asm.mov_imm(Reg::R1, 99).unwrap();
        asm.str(Reg::R1, Reg::R5, 4);
        asm.mov(Reg::R0, Reg::R4);
        asm.mov(Reg::R1, Reg::R5);
        asm.mov_imm(Reg::R2, 0).unwrap(); // COMMIT
        asm.call_abs(dvm_addr("ReleaseIntArrayElements"));
    });
    match w.dvm.heap.get(arr).unwrap() {
        HeapObject::Array { data, taint, .. } => {
            assert_eq!(data, &vec![10, 99, 30]);
            assert!(taint.contains(Taint::LOCATION_GPS));
        }
        _ => panic!(),
    }
}

#[test]
fn int_array_regions() {
    let mut w = World::new();
    let arr = w.dvm.heap.alloc(HeapObject::Array {
        kind: ArrayKind::Primitive,
        data: vec![1, 2, 3, 4],
        taint: Taint::SMS,
    });
    let jarr = w.dvm.refs.add(IndirectRefKind::Local, arr).0;
    w.mem.write_u32(OUT + 0x80, 77);
    w.mem.write_u32(OUT + 0x84, 88);
    w.run(&[jarr], |asm| {
        asm.mov(Reg::R4, Reg::R0);
        // GetIntArrayRegion(arr, 1, 2, OUT)
        asm.mov_imm(Reg::R1, 1).unwrap();
        asm.mov_imm(Reg::R2, 2).unwrap();
        asm.ldr_const(Reg::R3, OUT);
        asm.call_abs(dvm_addr("GetIntArrayRegion"));
        // SetIntArrayRegion(arr, 2, 2, OUT+0x80)
        asm.mov(Reg::R0, Reg::R4);
        asm.mov_imm(Reg::R1, 2).unwrap();
        asm.mov_imm(Reg::R2, 2).unwrap();
        asm.ldr_const(Reg::R3, OUT + 0x80);
        asm.call_abs(dvm_addr("SetIntArrayRegion"));
    });
    assert_eq!(w.mem.read_u32(OUT), 2);
    assert_eq!(w.mem.read_u32(OUT + 4), 3);
    assert_eq!(w.shadow.mem.range_taint(OUT, 8), Taint::SMS);
    match w.dvm.heap.get(arr).unwrap() {
        HeapObject::Array { data, .. } => assert_eq!(data, &vec![1, 2, 77, 88]),
        _ => panic!(),
    }
}

#[test]
fn utf16_string_chars() {
    let mut w = World::new();
    let s = w.dvm.heap.alloc_string("héllo", Taint::IMEI);
    let jstr = w.dvm.refs.add(IndirectRefKind::Local, s).0;
    w.run(&[jstr], |asm| {
        asm.mov(Reg::R4, Reg::R0);
        asm.mov_imm(Reg::R1, 0).unwrap();
        asm.call_abs(dvm_addr("GetStringChars"));
        asm.mov(Reg::R5, Reg::R0);
        asm.ldr_const(Reg::R1, OUT + 0x100);
        asm.str(Reg::R0, Reg::R1, 0);
        // Release it again.
        asm.mov(Reg::R0, Reg::R4);
        asm.mov(Reg::R1, Reg::R5);
        asm.call_abs(dvm_addr("ReleaseStringChars"));
    });
    let buf = w.mem.read_u32(OUT + 0x100);
    assert_eq!(w.mem.read_u16(buf), 'h' as u16);
    assert_eq!(w.mem.read_u16(buf + 2), 'é' as u16);
    assert_eq!(w.kernel.heap.live(), 0, "released");
}

#[test]
fn call_nonvirtual_and_va_list_forms() {
    // Java: int twice(int x) { return x + x; }  (virtual: this + x)
    use ndroid_dvm::bytecode::{BinOp, DexInsn};
    use ndroid_dvm::{ClassDef as CD, MethodDef, MethodKind};
    let mut w = World::new();
    let c = w.dvm.program.add_class(CD {
        name: "Lapp/V;".into(),
        ..CD::default()
    });
    w.dvm.program.add_method(
        c,
        MethodDef::new(
            "twice",
            "II",
            MethodKind::Bytecode(vec![
                // virtual, regs 3, ins 2: this=v1, x=v2
                DexInsn::BinOp {
                    op: BinOp::Add,
                    dst: 0,
                    a: 2,
                    b: 2,
                },
                DexInsn::Return { src: 0 },
            ]),
        )
        .virtual_method()
        .with_registers(3),
    );
    let obj = w.dvm.heap.alloc(HeapObject::Instance {
        class: c,
        fields: vec![],
        taints: vec![],
    });
    let jobj = w.dvm.refs.add(IndirectRefKind::Local, obj).0;
    let cls_name = 0x2000_0300;
    let m_name = 0x2000_0340;
    w.mem.write_cstr(cls_name, b"Lapp/V;");
    w.mem.write_cstr(m_name, b"twice");
    // va_list block holding the int argument, with taint.
    w.mem.write_u32(0x2000_0400, 21);
    w.shadow.mem.set_range(0x2000_0400, 4, Taint::IMSI);

    let r = w.run(&[jobj], |asm| {
        asm.mov(Reg::R4, Reg::R0); // receiver
        asm.ldr_const(Reg::R0, cls_name);
        asm.call_abs(dvm_addr("FindClass"));
        asm.ldr_const(Reg::R1, m_name);
        asm.call_abs(dvm_addr("GetMethodID"));
        asm.mov(Reg::R1, Reg::R0);
        asm.mov(Reg::R0, Reg::R4);
        asm.ldr_const(Reg::R2, 0x2000_0400); // va_list
        asm.call_abs(dvm_addr("CallNonvirtualIntMethodV"));
        asm.ldr_const(Reg::R1, OUT + 0x200);
        asm.str(Reg::R0, Reg::R1, 0);
    });
    let _ = r;
    assert_eq!(w.mem.read_u32(OUT + 0x200), 42);
    // The argument's taint crossed into the DVM frame (va_list slot →
    // interpreter binop union → return taint → shadow R0), observed
    // here through the guest's own STR of the result.
    assert_eq!(w.shadow.mem.range_taint(OUT + 0x200, 4), Taint::IMSI);
}
