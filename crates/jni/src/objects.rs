//! Class/method/field resolution, object creation (`NewObject*` →
//! `dvmAllocObject`, Table III) and the field-access group (Table IV).

use crate::helpers::{
    arg, arg_taint, class_of, deref, dvm_err, field_of, jclass, jfield, jmethod, new_local_ref,
    object_taint, prov_transfer, set_ret_taint, tracking,
};
use crate::registry::dvm_addr;
use ndroid_dvm::{Dvm, HeapObject, Taint};
use ndroid_emu::runtime::NativeCtx;
use ndroid_emu::EmuError;
use ndroid_provenance::Direction;

/// `jclass FindClass(const char *name)` — accepts both `a/b/C` and
/// `La/b/C;` spellings.
pub fn find_class(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let raw = ctx.mem.read_cstr(arg(ctx, 0));
    let name = String::from_utf8_lossy(&raw).into_owned();
    let canonical = if name.starts_with('L') && name.ends_with(';') {
        name.clone()
    } else {
        format!("L{name};")
    };
    let id = ctx.dvm.program.find_class(&canonical).map_err(dvm_err)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(jclass(id))
}

/// `jmethodID GetMethodID(jclass cls, const char *name, const char *sig)`
pub fn get_method_id(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let cls = class_of(arg(ctx, 0))?;
    let name = String::from_utf8_lossy(&ctx.mem.read_cstr(arg(ctx, 1))).into_owned();
    let m = ctx.dvm.program.find_method(cls, &name).map_err(dvm_err)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(jmethod(m))
}

/// `jmethodID GetStaticMethodID(...)` — same resolution.
pub fn get_static_method_id(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    get_method_id(ctx)
}

/// `jfieldID GetFieldID(jclass cls, const char *name, const char *sig)`
pub fn get_field_id(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let cls = class_of(arg(ctx, 0))?;
    let name = String::from_utf8_lossy(&ctx.mem.read_cstr(arg(ctx, 1))).into_owned();
    let f = ctx.dvm.program.find_field(cls, &name).map_err(dvm_err)?;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(jfield(f))
}

/// `jfieldID GetStaticFieldID(...)`
pub fn get_static_field_id(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    get_field_id(ctx)
}

/// `jobject NewObject(jclass cls, jmethodID ctor, ...)` — allocates the
/// instance via `dvmAllocObject`; constructor side effects are not
/// modeled (our guests initialize through `Set*Field`).
pub fn new_object(ctx: &mut NativeCtx<'_>, nof: &'static str) -> Result<u32, EmuError> {
    let cls = class_of(arg(ctx, 0))?;
    ctx.trace.push("hook", format!("{nof} Begin"));
    let maf = dvm_addr("dvmAllocObject");
    ctx.analysis
        .on_branch(ctx.shadow, dvm_addr(nof) + 0x10, maf);
    let nfields = ctx.dvm.program.class(cls).instance_fields.len();
    let id = ctx.dvm.heap.alloc(HeapObject::Instance {
        class: cls,
        fields: vec![0; nfields],
        taints: vec![Taint::CLEAR; nfields],
    });
    ctx.analysis
        .on_branch(ctx.shadow, maf + 4, dvm_addr(nof) + 0x14);
    ctx.trace.push("hook", format!("{nof} End"));
    let r = new_local_ref(ctx, id, Taint::CLEAR);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(r)
}

/// `Get<Prim>Field(jobject obj, jfieldID fid)` — "get a field's taint
/// after executing Get*Field" (§V-B).
pub fn get_field(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jobj = arg(ctx, 0);
    let f = field_of(arg(ctx, 1));
    let id = deref(ctx, jobj)?;
    let (value, ftaint) = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
        HeapObject::Instance { fields, taints, .. } => {
            let v = fields.get(f.index as usize).copied().unwrap_or(0);
            let t = taints.get(f.index as usize).copied().unwrap_or(Taint::CLEAR);
            (v, t)
        }
        _ => {
            return Err(EmuError::Dvm(ndroid_dvm::DvmError::WrongObjectKind {
                expected: "Object",
            }))
        }
    };
    let t = if tracking(ctx) { ftaint } else { Taint::CLEAR };
    prov_transfer(ctx, "GetField", t, Direction::JavaToNative);
    set_ret_taint(ctx, t);
    Ok(value)
}

/// `jobject GetObjectField(jobject obj, jfieldID fid)` — the value is a
/// Dalvik reference that must be wrapped as an indirect reference.
pub fn get_object_field(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jobj = arg(ctx, 0);
    let f = field_of(arg(ctx, 1));
    let id = deref(ctx, jobj)?;
    let (value, ftaint) = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
        HeapObject::Instance { fields, taints, .. } => (
            fields.get(f.index as usize).copied().unwrap_or(0),
            taints.get(f.index as usize).copied().unwrap_or(Taint::CLEAR),
        ),
        _ => {
            return Err(EmuError::Dvm(ndroid_dvm::DvmError::WrongObjectKind {
                expected: "Object",
            }))
        }
    };
    if value == 0 {
        set_ret_taint(ctx, Taint::CLEAR);
        return Ok(0);
    }
    let target = Dvm::expect_obj(value).map_err(dvm_err)?;
    let obj_level = ctx
        .dvm
        .heap
        .get(target)
        .map(|o| o.overall_taint())
        .unwrap_or(Taint::CLEAR);
    let t = if tracking(ctx) {
        ftaint | obj_level
    } else {
        Taint::CLEAR
    };
    prov_transfer(ctx, "GetObjectField", t, Direction::JavaToNative);
    let r = new_local_ref(ctx, target, t);
    set_ret_taint(ctx, t);
    Ok(r)
}

/// `Set<Prim>Field(jobject obj, jfieldID fid, value)` — "add taints to
/// the corresponding field before executing Set*Field" (§V-B).
pub fn set_field(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jobj = arg(ctx, 0);
    let f = field_of(arg(ctx, 1));
    let value = arg(ctx, 2);
    let t = if tracking(ctx) {
        arg_taint(ctx, 2)
    } else {
        Taint::CLEAR
    };
    let id = deref(ctx, jobj)?;
    if let HeapObject::Instance { fields, taints, .. } =
        ctx.dvm.heap.get_mut(id).map_err(dvm_err)?
    {
        if let Some(slot) = fields.get_mut(f.index as usize) {
            *slot = value;
            taints[f.index as usize] = t;
        }
    }
    prov_transfer(ctx, "SetField", t, Direction::NativeToJava);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `void SetObjectField(jobject obj, jfieldID fid, jobject value)` —
/// unwraps the indirect reference and stores the Dalvik reference; the
/// shadow object taint moves onto the field.
pub fn set_object_field(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jobj = arg(ctx, 0);
    let f = field_of(arg(ctx, 1));
    let jval = arg(ctx, 2);
    let value = if jval == 0 {
        0
    } else {
        Dvm::ref_value(deref(ctx, jval)?)
    };
    let t = if tracking(ctx) {
        object_taint(ctx, jval) | arg_taint(ctx, 2)
    } else {
        Taint::CLEAR
    };
    let id = deref(ctx, jobj)?;
    if let HeapObject::Instance { fields, taints, .. } =
        ctx.dvm.heap.get_mut(id).map_err(dvm_err)?
    {
        if let Some(slot) = fields.get_mut(f.index as usize) {
            *slot = value;
            taints[f.index as usize] = t;
        }
    }
    prov_transfer(ctx, "SetObjectField", t, Direction::NativeToJava);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `GetStatic<Prim>Field(jclass cls, jfieldID fid)`
pub fn get_static_field(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let f = field_of(arg(ctx, 1));
    let (value, t) = ctx
        .dvm
        .program
        .statics
        .get(f.class.0 as usize)
        .and_then(|s| s.get(f.index as usize))
        .copied()
        .unwrap_or((0, Taint::CLEAR));
    set_ret_taint(ctx, if tracking(ctx) { t } else { Taint::CLEAR });
    Ok(value)
}

/// `GetStaticObjectField(jclass cls, jfieldID fid)`
pub fn get_static_object_field(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let f = field_of(arg(ctx, 1));
    let (value, t) = ctx
        .dvm
        .program
        .statics
        .get(f.class.0 as usize)
        .and_then(|s| s.get(f.index as usize))
        .copied()
        .unwrap_or((0, Taint::CLEAR));
    if value == 0 {
        set_ret_taint(ctx, Taint::CLEAR);
        return Ok(0);
    }
    let target = Dvm::expect_obj(value).map_err(dvm_err)?;
    let obj_level = ctx
        .dvm
        .heap
        .get(target)
        .map(|o| o.overall_taint())
        .unwrap_or(Taint::CLEAR);
    let taint = if tracking(ctx) {
        t | obj_level
    } else {
        Taint::CLEAR
    };
    let r = new_local_ref(ctx, target, taint);
    set_ret_taint(ctx, taint);
    Ok(r)
}

/// `SetStatic<Prim>Field(jclass cls, jfieldID fid, value)`
pub fn set_static_field(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let f = field_of(arg(ctx, 1));
    let value = arg(ctx, 2);
    let t = if tracking(ctx) {
        arg_taint(ctx, 2)
    } else {
        Taint::CLEAR
    };
    if let Some(slot) = ctx
        .dvm
        .program
        .statics
        .get_mut(f.class.0 as usize)
        .and_then(|s| s.get_mut(f.index as usize))
    {
        *slot = (value, t);
    }
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `SetStaticObjectField(jclass cls, jfieldID fid, jobject value)`
pub fn set_static_object_field(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let f = field_of(arg(ctx, 1));
    let jval = arg(ctx, 2);
    let value = if jval == 0 {
        0
    } else {
        Dvm::ref_value(deref(ctx, jval)?)
    };
    let t = if tracking(ctx) {
        object_taint(ctx, jval) | arg_taint(ctx, 2)
    } else {
        Taint::CLEAR
    };
    if let Some(slot) = ctx
        .dvm
        .program
        .statics
        .get_mut(f.class.0 as usize)
        .and_then(|s| s.get_mut(f.index as usize))
    {
        *slot = (value, t);
    }
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}
