#![warn(missing_docs)]

//! # ndroid-jni
//!
//! The JNI environment of the NDroid reproduction: every JNI function
//! the paper's DVM hook engine instruments (Tables II, III and IV plus
//! the string/array helpers and exceptions), implemented as host
//! functions at deterministic `libdvm.so` trap addresses.
//!
//! Five function groups, matching §V-B:
//!
//! 1. **JNI entry** — `dvmCallJNIMethod` (the bridge itself lives in
//!    [`ndroid_emu::runtime::run_native_method`]; its trap address is
//!    exported here so multilevel hooks can reference it).
//! 2. **JNI exit** — the `Call<Type>Method{,V,A}` ×
//!    {virtual, nonvirtual, static} family (Table II), which emits the
//!    virtual branch chain `Call*Method → dvmCallMethod* →
//!    dvmInterpret` that the multilevel-hooking FSM of Fig. 5 watches.
//! 3. **Object creation** — `NewString`, `NewStringUTF`, `NewObject*`,
//!    `New<Prim>Array` and their `dvmAlloc*`/`dvmCreateStringFrom*`
//!    memory-allocation counterparts (Table III).
//! 4. **Field access** — `Get/Set[Static]<Type>Field` (Table IV).
//! 5. **Exception** — `ThrowNew` → `initException` → `dvmCallMethod`.
//!
//! Convention note (documented substitution): guests call the trap
//! address directly and the implicit `JNIEnv*` first parameter is
//! omitted, so R0 holds the first real argument. Nothing in the
//! paper's mechanisms depends on the env pointer itself.

pub mod arrays;
pub mod calls;
pub mod helpers;
pub mod objects;
pub mod registry;
pub mod strings;

pub use registry::{dvm_addr, install_jni, jni_names, DVM_INTERNAL_NAMES};
