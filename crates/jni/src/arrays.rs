//! Array JNI functions: `New<Prim>Array`/`NewObjectArray` (object
//! creation, Table III) and element accessors.

use crate::helpers::{
    arg, arg_taint, deref, dvm_err, new_local_ref, object_taint, prov_transfer, set_ret_taint,
    tracking,
};
use crate::registry::dvm_addr;
use ndroid_dvm::{ArrayKind, Dvm, HeapObject, Taint};
use ndroid_emu::runtime::NativeCtx;
use ndroid_emu::EmuError;
use ndroid_provenance::Direction;

fn alloc_array(
    ctx: &mut NativeCtx<'_>,
    kind: ArrayKind,
    len: u32,
    maf: &str,
    nof: &str,
) -> Result<u32, EmuError> {
    ctx.trace.push("hook", format!("{nof} Begin"));
    let maf_addr = dvm_addr(maf);
    ctx.analysis
        .on_branch(ctx.shadow, dvm_addr(nof) + 0x10, maf_addr);
    let id = ctx.dvm.heap.alloc(HeapObject::Array {
        kind,
        data: vec![0; len as usize],
        taint: Taint::CLEAR,
    });
    ctx.analysis
        .on_branch(ctx.shadow, maf_addr + 4, dvm_addr(nof) + 0x14);
    ctx.trace.push("hook", format!("{nof} End"));
    let r = new_local_ref(ctx, id, Taint::CLEAR);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(r)
}

/// `jintArray NewIntArray(jsize len)` (and the other primitive widths —
/// all share 32-bit slots in the reproduction).
pub fn new_primitive_array(
    ctx: &mut NativeCtx<'_>,
    nof: &'static str,
) -> Result<u32, EmuError> {
    let len = arg(ctx, 0);
    alloc_array(ctx, ArrayKind::Primitive, len, "dvmAllocPrimitiveArray", nof)
}

/// `jbyteArray NewByteArray(jsize len)`
pub fn new_byte_array(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let len = arg(ctx, 0);
    alloc_array(ctx, ArrayKind::Byte, len, "dvmAllocPrimitiveArray", "NewByteArray")
}

/// `jobjectArray NewObjectArray(jsize len, jclass cls, jobject init)`
pub fn new_object_array(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let len = arg(ctx, 0);
    alloc_array(ctx, ArrayKind::Object, len, "dvmAllocArrayByClass", "NewObjectArray")
}

/// `jsize GetArrayLength(jarray a)`
pub fn get_array_length(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jarr = arg(ctx, 0);
    let id = deref(ctx, jarr)?;
    let len = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
        HeapObject::Array { data, .. } => data.len() as u32,
        _ => {
            return Err(EmuError::Dvm(ndroid_dvm::DvmError::WrongObjectKind {
                expected: "Array",
            }))
        }
    };
    set_ret_taint(ctx, object_taint(ctx, jarr));
    Ok(len)
}

/// `jbyte *GetByteArrayElements(jbyteArray a, jboolean *isCopy)` — copy
/// out with the array's single label spread over the bytes.
pub fn get_byte_array_elements(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jarr = arg(ctx, 0);
    let id = deref(ctx, jarr)?;
    let (data, arr_taint) = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
        HeapObject::Array { data, taint, .. } => (data.clone(), *taint),
        _ => {
            return Err(EmuError::Dvm(ndroid_dvm::DvmError::WrongObjectKind {
                expected: "Array",
            }))
        }
    };
    let taint = if tracking(ctx) {
        arr_taint | object_taint(ctx, jarr)
    } else {
        Taint::CLEAR
    };
    let buf = ctx.kernel.heap.malloc(data.len().max(1) as u32);
    for (i, v) in data.iter().enumerate() {
        ctx.mem.write_u8(buf + i as u32, *v as u8);
    }
    if tracking(ctx) {
        ctx.shadow.mem.set_range(buf, data.len() as u32, taint);
    }
    let is_copy = arg(ctx, 1);
    if is_copy != 0 {
        ctx.mem.write_u8(is_copy, 1);
    }
    prov_transfer(ctx, "GetByteArrayElements", taint, Direction::JavaToNative);
    set_ret_taint(ctx, taint);
    Ok(buf)
}

/// `void ReleaseByteArrayElements(jbyteArray a, jbyte *buf, jint mode)`
/// — copies back (mode 0/COMMIT) and propagates native-buffer taint to
/// the array object, exactly the flow TaintDroid alone would lose.
pub fn release_byte_array_elements(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jarr = arg(ctx, 0);
    let buf = arg(ctx, 1);
    let mode = arg(ctx, 2);
    let id = deref(ctx, jarr)?;
    if mode != 2 {
        // 2 = JNI_ABORT: discard.
        let len = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
            HeapObject::Array { data, .. } => data.len(),
            _ => 0,
        };
        let bytes = ctx.mem.read_bytes(buf, len);
        let buf_taint = if tracking(ctx) {
            ctx.shadow.mem.range_taint(buf, len.max(1) as u32)
        } else {
            Taint::CLEAR
        };
        if let HeapObject::Array { data, taint, .. } =
            ctx.dvm.heap.get_mut(id).map_err(dvm_err)?
        {
            for (i, b) in bytes.iter().enumerate() {
                data[i] = *b as u32;
            }
            *taint |= buf_taint;
        }
        if tracking(ctx) && buf_taint.is_tainted() {
            ctx.shadow
                .taint_object(ndroid_dvm::IndirectRef(jarr), buf_taint);
        }
        prov_transfer(ctx, "ReleaseByteArrayElements", buf_taint, Direction::NativeToJava);
    }
    if let Some(size) = ctx.kernel.heap.size_of(buf) {
        if tracking(ctx) {
            ctx.shadow.mem.clear_range(buf, size);
        }
    }
    ctx.kernel.heap.free(buf);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `jint *GetIntArrayElements(jintArray a, jboolean *isCopy)` —
/// word-wide copy-out with the array label spread over the words.
pub fn get_int_array_elements(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jarr = arg(ctx, 0);
    let id = deref(ctx, jarr)?;
    let (data, arr_taint) = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
        HeapObject::Array { data, taint, .. } => (data.clone(), *taint),
        _ => {
            return Err(EmuError::Dvm(ndroid_dvm::DvmError::WrongObjectKind {
                expected: "Array",
            }))
        }
    };
    let taint = if tracking(ctx) {
        arr_taint | object_taint(ctx, jarr)
    } else {
        Taint::CLEAR
    };
    let buf = ctx.kernel.heap.malloc((data.len() as u32 * 4).max(4));
    for (i, v) in data.iter().enumerate() {
        ctx.mem.write_u32(buf + 4 * i as u32, *v);
    }
    if tracking(ctx) {
        ctx.shadow.mem.set_range(buf, data.len() as u32 * 4, taint);
    }
    let is_copy = arg(ctx, 1);
    if is_copy != 0 {
        ctx.mem.write_u8(is_copy, 1);
    }
    prov_transfer(ctx, "GetIntArrayElements", taint, Direction::JavaToNative);
    set_ret_taint(ctx, taint);
    Ok(buf)
}

/// `void ReleaseIntArrayElements(jintArray a, jint *buf, jint mode)`
pub fn release_int_array_elements(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jarr = arg(ctx, 0);
    let buf = arg(ctx, 1);
    let mode = arg(ctx, 2);
    let id = deref(ctx, jarr)?;
    if mode != 2 {
        let len = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
            HeapObject::Array { data, .. } => data.len(),
            _ => 0,
        };
        let words: Vec<u32> = (0..len)
            .map(|i| ctx.mem.read_u32(buf + 4 * i as u32))
            .collect();
        let buf_taint = if tracking(ctx) {
            ctx.shadow.mem.range_taint(buf, (len as u32 * 4).max(1))
        } else {
            Taint::CLEAR
        };
        if let HeapObject::Array { data, taint, .. } =
            ctx.dvm.heap.get_mut(id).map_err(dvm_err)?
        {
            data.copy_from_slice(&words);
            *taint |= buf_taint;
        }
        if tracking(ctx) && buf_taint.is_tainted() {
            ctx.shadow
                .taint_object(ndroid_dvm::IndirectRef(jarr), buf_taint);
        }
        prov_transfer(ctx, "ReleaseByteArrayElements", buf_taint, Direction::NativeToJava);
    }
    if let Some(size) = ctx.kernel.heap.size_of(buf) {
        if tracking(ctx) {
            ctx.shadow.mem.clear_range(buf, size);
        }
    }
    ctx.kernel.heap.free(buf);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `void GetIntArrayRegion(jintArray a, jsize start, jsize len, jint *buf)`
pub fn get_int_array_region(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (jarr, start, len, buf) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2), arg(ctx, 3));
    let id = deref(ctx, jarr)?;
    let (slice, arr_taint) = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
        HeapObject::Array { data, taint, .. } => {
            let end = ((start + len) as usize).min(data.len());
            (data[(start as usize).min(data.len())..end].to_vec(), *taint)
        }
        _ => {
            return Err(EmuError::Dvm(ndroid_dvm::DvmError::WrongObjectKind {
                expected: "Array",
            }))
        }
    };
    for (i, v) in slice.iter().enumerate() {
        ctx.mem.write_u32(buf + 4 * i as u32, *v);
    }
    if tracking(ctx) {
        let t = arr_taint | object_taint(ctx, jarr);
        ctx.shadow.mem.set_range(buf, slice.len() as u32 * 4, t);
        prov_transfer(ctx, "GetIntArrayRegion", t, Direction::JavaToNative);
    }
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `void SetIntArrayRegion(jintArray a, jsize start, jsize len, const jint *buf)`
pub fn set_int_array_region(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (jarr, start, len, buf) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2), arg(ctx, 3));
    let id = deref(ctx, jarr)?;
    let words: Vec<u32> = (0..len)
        .map(|i| ctx.mem.read_u32(buf + 4 * i))
        .collect();
    let buf_taint = if tracking(ctx) {
        ctx.shadow.mem.range_taint(buf, (len * 4).max(1))
    } else {
        Taint::CLEAR
    };
    if let HeapObject::Array { data, taint, .. } = ctx.dvm.heap.get_mut(id).map_err(dvm_err)? {
        for (i, w) in words.iter().enumerate() {
            let idx = start as usize + i;
            if idx < data.len() {
                data[idx] = *w;
            }
        }
        *taint |= buf_taint;
    }
    if tracking(ctx) && buf_taint.is_tainted() {
        ctx.shadow
            .taint_object(ndroid_dvm::IndirectRef(jarr), buf_taint);
    }
    prov_transfer(ctx, "SetIntArrayRegion", buf_taint, Direction::NativeToJava);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `void GetByteArrayRegion(jbyteArray a, jsize start, jsize len, jbyte *buf)`
pub fn get_byte_array_region(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (jarr, start, len, buf) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2), arg(ctx, 3));
    let id = deref(ctx, jarr)?;
    let (slice, arr_taint) = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
        HeapObject::Array { data, taint, .. } => {
            let end = ((start + len) as usize).min(data.len());
            (data[start as usize..end].to_vec(), *taint)
        }
        _ => {
            return Err(EmuError::Dvm(ndroid_dvm::DvmError::WrongObjectKind {
                expected: "Array",
            }))
        }
    };
    for (i, v) in slice.iter().enumerate() {
        ctx.mem.write_u8(buf + i as u32, *v as u8);
    }
    if tracking(ctx) {
        let t = arr_taint | object_taint(ctx, jarr);
        ctx.shadow.mem.set_range(buf, slice.len() as u32, t);
        prov_transfer(ctx, "GetByteArrayRegion", t, Direction::JavaToNative);
    }
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `void SetByteArrayRegion(jbyteArray a, jsize start, jsize len, const jbyte *buf)`
pub fn set_byte_array_region(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (jarr, start, len, buf) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2), arg(ctx, 3));
    let id = deref(ctx, jarr)?;
    let bytes = ctx.mem.read_bytes(buf, len as usize);
    let buf_taint = if tracking(ctx) {
        ctx.shadow.mem.range_taint(buf, len.max(1))
    } else {
        Taint::CLEAR
    };
    if let HeapObject::Array { data, taint, .. } = ctx.dvm.heap.get_mut(id).map_err(dvm_err)? {
        for (i, b) in bytes.iter().enumerate() {
            let idx = start as usize + i;
            if idx < data.len() {
                data[idx] = *b as u32;
            }
        }
        *taint |= buf_taint;
    }
    if tracking(ctx) && buf_taint.is_tainted() {
        ctx.shadow
            .taint_object(ndroid_dvm::IndirectRef(jarr), buf_taint);
    }
    prov_transfer(ctx, "SetByteArrayRegion", buf_taint, Direction::NativeToJava);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `jobject GetObjectArrayElement(jobjectArray a, jsize i)`
pub fn get_object_array_element(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (jarr, index) = (arg(ctx, 0), arg(ctx, 1));
    let id = deref(ctx, jarr)?;
    let value = match ctx.dvm.heap.get(id).map_err(dvm_err)? {
        HeapObject::Array { data, .. } => data.get(index as usize).copied().unwrap_or(0),
        _ => 0,
    };
    if value == 0 {
        set_ret_taint(ctx, Taint::CLEAR);
        return Ok(0);
    }
    let elem = Dvm::expect_obj(value).map_err(dvm_err)?;
    let t = if tracking(ctx) {
        object_taint(ctx, jarr)
            | ctx
                .dvm
                .heap
                .get(elem)
                .map(|o| o.overall_taint())
                .unwrap_or(Taint::CLEAR)
    } else {
        Taint::CLEAR
    };
    let r = new_local_ref(ctx, elem, t);
    set_ret_taint(ctx, t);
    Ok(r)
}

/// `void SetObjectArrayElement(jobjectArray a, jsize i, jobject v)`
pub fn set_object_array_element(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (jarr, index, jval) = (arg(ctx, 0), arg(ctx, 1), arg(ctx, 2));
    let id = deref(ctx, jarr)?;
    let value = if jval == 0 {
        0
    } else {
        Dvm::ref_value(deref(ctx, jval)?)
    };
    let extra = if tracking(ctx) {
        object_taint(ctx, jval) | arg_taint(ctx, 2)
    } else {
        Taint::CLEAR
    };
    if let HeapObject::Array { data, taint, .. } = ctx.dvm.heap.get_mut(id).map_err(dvm_err)? {
        if let Some(slot) = data.get_mut(index as usize) {
            *slot = value;
        }
        *taint |= extra;
    }
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}
