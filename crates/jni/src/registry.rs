//! Trap-address assignment and registration for the `libdvm.so`
//! region: DVM-internal functions (hook targets for multilevel
//! hooking) and the guest-callable JNI environment functions.

use crate::calls::{self, parse_call_name};
use crate::{arrays, objects, strings};
use ndroid_emu::layout::LIBDVM_BASE;
use ndroid_emu::runtime::HostTable;
use std::sync::OnceLock;

/// Spacing between function trap addresses (large enough that the
/// `+0x10`/`+0x14`/`+0x20`/`+0x24` call-site offsets used for virtual
/// branch events stay inside the owning function's slot).
const STRIDE: u32 = 0x40;

/// DVM-internal functions NDroid hooks (never called directly by guest
/// code; they appear as virtual-branch targets).
pub const DVM_INTERNAL_NAMES: &[&str] = &[
    "dvmCallJNIMethod",
    "dvmInterpret",
    "dvmCallMethod",
    "dvmCallMethodV",
    "dvmCallMethodA",
    "dvmDecodeIndirectRef",
    "dvmAllocObject",
    "dvmCreateStringFromUnicode",
    "dvmCreateStringFromCstr",
    "dvmAllocArrayByClass",
    "dvmAllocPrimitiveArray",
    "initException",
];

/// Guest-callable JNI environment functions outside the call family.
const ENV_NAMES: &[&str] = &[
    "NewStringUTF",
    "NewString",
    "GetStringUTFChars",
    "ReleaseStringUTFChars",
    "GetStringChars",
    "ReleaseStringChars",
    "GetStringLength",
    "GetStringUTFLength",
    "NewObject",
    "NewObjectV",
    "NewObjectA",
    "NewObjectArray",
    "NewBooleanArray",
    "NewByteArray",
    "NewCharArray",
    "NewShortArray",
    "NewIntArray",
    "NewLongArray",
    "NewFloatArray",
    "NewDoubleArray",
    "GetArrayLength",
    "GetByteArrayElements",
    "ReleaseByteArrayElements",
    "GetIntArrayElements",
    "ReleaseIntArrayElements",
    "GetIntArrayRegion",
    "SetIntArrayRegion",
    "GetByteArrayRegion",
    "SetByteArrayRegion",
    "GetObjectArrayElement",
    "SetObjectArrayElement",
    "FindClass",
    "GetMethodID",
    "GetStaticMethodID",
    "GetFieldID",
    "GetStaticFieldID",
    "GetObjectField",
    "GetBooleanField",
    "GetByteField",
    "GetCharField",
    "GetShortField",
    "GetIntField",
    "GetLongField",
    "GetFloatField",
    "GetDoubleField",
    "SetObjectField",
    "SetBooleanField",
    "SetByteField",
    "SetCharField",
    "SetShortField",
    "SetIntField",
    "SetLongField",
    "SetFloatField",
    "SetDoubleField",
    "GetStaticObjectField",
    "GetStaticIntField",
    "SetStaticObjectField",
    "SetStaticIntField",
    "ThrowNew",
    "ExceptionOccurred",
    "ExceptionClear",
    "NewGlobalRef",
    "DeleteGlobalRef",
    "DeleteLocalRef",
];

/// The complete ordered name list for the libdvm region.
pub fn jni_names() -> &'static [String] {
    static NAMES: OnceLock<Vec<String>> = OnceLock::new();
    NAMES.get_or_init(|| {
        let mut v: Vec<String> = DVM_INTERNAL_NAMES.iter().map(|s| s.to_string()).collect();
        v.extend(ENV_NAMES.iter().map(|s| s.to_string()));
        v.extend(calls::call_family_names());
        v
    })
}

/// The trap address of a libdvm-region function.
///
/// # Panics
///
/// Panics on an unknown name (a workload-construction bug).
pub fn dvm_addr(name: &str) -> u32 {
    let i = jni_names()
        .iter()
        .position(|n| n == name)
        .unwrap_or_else(|| panic!("unknown libdvm function {name}"));
    LIBDVM_BASE + STRIDE * i as u32
}

/// Registers every guest-callable JNI function in `table`.
///
/// DVM-internal functions are *not* registered: they exist only as
/// virtual branch targets; a guest branching to one is a wild branch,
/// exactly as jumping into the middle of libdvm would misbehave.
pub fn install_jni(table: &mut HostTable) {
    for name in jni_names() {
        if DVM_INTERNAL_NAMES.contains(&name.as_str()) {
            continue;
        }
        let addr = dvm_addr(name);
        if let Some((is_static, form)) = parse_call_name(name) {
            let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
            table.register(addr, leaked, move |ctx, t| {
                calls::call_method(ctx, t, leaked, is_static, form)
            });
            continue;
        }
        match name.as_str() {
            "NewStringUTF" => table.register(addr, "NewStringUTF", |ctx, _| {
                strings::new_string_utf(ctx)
            }),
            "NewString" => {
                table.register(addr, "NewString", |ctx, _| strings::new_string(ctx))
            }
            "GetStringUTFChars" => table.register(addr, "GetStringUTFChars", |ctx, _| {
                strings::get_string_utf_chars(ctx)
            }),
            "ReleaseStringUTFChars" => table.register(addr, "ReleaseStringUTFChars", |ctx, _| {
                strings::release_string_utf_chars(ctx)
            }),
            "GetStringChars" => table.register(addr, "GetStringChars", |ctx, _| {
                strings::get_string_chars(ctx)
            }),
            "ReleaseStringChars" => table.register(addr, "ReleaseStringChars", |ctx, _| {
                strings::release_string_chars(ctx)
            }),
            "GetStringLength" => table.register(addr, "GetStringLength", |ctx, _| {
                strings::get_string_length(ctx)
            }),
            "GetStringUTFLength" => table.register(addr, "GetStringUTFLength", |ctx, _| {
                strings::get_string_utf_length(ctx)
            }),
            "NewObject" => {
                table.register(addr, "NewObject", |ctx, _| objects::new_object(ctx, "NewObject"))
            }
            "NewObjectV" => table.register(addr, "NewObjectV", |ctx, _| {
                objects::new_object(ctx, "NewObjectV")
            }),
            "NewObjectA" => table.register(addr, "NewObjectA", |ctx, _| {
                objects::new_object(ctx, "NewObjectA")
            }),
            "NewObjectArray" => table.register(addr, "NewObjectArray", |ctx, _| {
                arrays::new_object_array(ctx)
            }),
            "NewByteArray" => {
                table.register(addr, "NewByteArray", |ctx, _| arrays::new_byte_array(ctx))
            }
            "NewBooleanArray" | "NewCharArray" | "NewShortArray" | "NewIntArray"
            | "NewLongArray" | "NewFloatArray" | "NewDoubleArray" => {
                let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
                table.register(addr, leaked, move |ctx, _| {
                    arrays::new_primitive_array(ctx, leaked)
                });
            }
            "GetArrayLength" => table.register(addr, "GetArrayLength", |ctx, _| {
                arrays::get_array_length(ctx)
            }),
            "GetByteArrayElements" => table.register(addr, "GetByteArrayElements", |ctx, _| {
                arrays::get_byte_array_elements(ctx)
            }),
            "ReleaseByteArrayElements" => {
                table.register(addr, "ReleaseByteArrayElements", |ctx, _| {
                    arrays::release_byte_array_elements(ctx)
                })
            }
            "GetIntArrayElements" => table.register(addr, "GetIntArrayElements", |ctx, _| {
                arrays::get_int_array_elements(ctx)
            }),
            "ReleaseIntArrayElements" => {
                table.register(addr, "ReleaseIntArrayElements", |ctx, _| {
                    arrays::release_int_array_elements(ctx)
                })
            }
            "GetIntArrayRegion" => table.register(addr, "GetIntArrayRegion", |ctx, _| {
                arrays::get_int_array_region(ctx)
            }),
            "SetIntArrayRegion" => table.register(addr, "SetIntArrayRegion", |ctx, _| {
                arrays::set_int_array_region(ctx)
            }),
            "GetByteArrayRegion" => table.register(addr, "GetByteArrayRegion", |ctx, _| {
                arrays::get_byte_array_region(ctx)
            }),
            "SetByteArrayRegion" => table.register(addr, "SetByteArrayRegion", |ctx, _| {
                arrays::set_byte_array_region(ctx)
            }),
            "GetObjectArrayElement" => table.register(addr, "GetObjectArrayElement", |ctx, _| {
                arrays::get_object_array_element(ctx)
            }),
            "SetObjectArrayElement" => table.register(addr, "SetObjectArrayElement", |ctx, _| {
                arrays::set_object_array_element(ctx)
            }),
            "FindClass" => table.register(addr, "FindClass", |ctx, _| objects::find_class(ctx)),
            "GetMethodID" => {
                table.register(addr, "GetMethodID", |ctx, _| objects::get_method_id(ctx))
            }
            "GetStaticMethodID" => table.register(addr, "GetStaticMethodID", |ctx, _| {
                objects::get_static_method_id(ctx)
            }),
            "GetFieldID" => {
                table.register(addr, "GetFieldID", |ctx, _| objects::get_field_id(ctx))
            }
            "GetStaticFieldID" => table.register(addr, "GetStaticFieldID", |ctx, _| {
                objects::get_static_field_id(ctx)
            }),
            "GetObjectField" => table.register(addr, "GetObjectField", |ctx, _| {
                objects::get_object_field(ctx)
            }),
            "GetBooleanField" | "GetByteField" | "GetCharField" | "GetShortField"
            | "GetIntField" | "GetLongField" | "GetFloatField" | "GetDoubleField" => {
                let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
                table.register(addr, leaked, |ctx, _| objects::get_field(ctx));
            }
            "SetObjectField" => table.register(addr, "SetObjectField", |ctx, _| {
                objects::set_object_field(ctx)
            }),
            "SetBooleanField" | "SetByteField" | "SetCharField" | "SetShortField"
            | "SetIntField" | "SetLongField" | "SetFloatField" | "SetDoubleField" => {
                let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
                table.register(addr, leaked, |ctx, _| objects::set_field(ctx));
            }
            "GetStaticObjectField" => table.register(addr, "GetStaticObjectField", |ctx, _| {
                objects::get_static_object_field(ctx)
            }),
            "GetStaticIntField" => table.register(addr, "GetStaticIntField", |ctx, _| {
                objects::get_static_field(ctx)
            }),
            "SetStaticObjectField" => table.register(addr, "SetStaticObjectField", |ctx, _| {
                objects::set_static_object_field(ctx)
            }),
            "SetStaticIntField" => table.register(addr, "SetStaticIntField", |ctx, _| {
                objects::set_static_field(ctx)
            }),
            "ThrowNew" => table.register(addr, "ThrowNew", |ctx, _| calls::throw_new(ctx)),
            "ExceptionOccurred" => table.register(addr, "ExceptionOccurred", |ctx, _| {
                calls::exception_occurred(ctx)
            }),
            "ExceptionClear" => table.register(addr, "ExceptionClear", |ctx, _| {
                calls::exception_clear(ctx)
            }),
            "NewGlobalRef" => {
                table.register(addr, "NewGlobalRef", |ctx, _| calls::new_global_ref(ctx))
            }
            "DeleteGlobalRef" => table.register(addr, "DeleteGlobalRef", |ctx, _| {
                calls::delete_global_ref(ctx)
            }),
            "DeleteLocalRef" => table.register(addr, "DeleteLocalRef", |ctx, _| {
                calls::delete_local_ref(ctx)
            }),
            other => unreachable!("unhandled JNI function {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique_and_addressable() {
        let names = jni_names();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "duplicate names");
        assert_eq!(dvm_addr("dvmCallJNIMethod"), LIBDVM_BASE);
        assert!(dvm_addr("NewStringUTF") > LIBDVM_BASE);
        assert!(dvm_addr("CallStaticDoubleMethodA") > dvm_addr("CallVoidMethod"));
    }

    #[test]
    fn install_covers_all_callable() {
        let mut table = HostTable::new();
        install_jni(&mut table);
        let expected = jni_names().len() - DVM_INTERNAL_NAMES.len();
        assert_eq!(table.len(), expected);
        assert!(table.name_at(dvm_addr("NewStringUTF")).is_some());
        assert!(table.name_at(dvm_addr("CallVoidMethodA")).is_some());
        assert!(
            table.name_at(dvm_addr("dvmInterpret")).is_none(),
            "internals are branch targets, not callables"
        );
    }

    #[test]
    #[should_panic(expected = "unknown libdvm function")]
    fn unknown_name_panics() {
        dvm_addr("NotAJniFunction");
    }
}
