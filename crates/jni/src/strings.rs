//! String-related JNI functions: the object-creation group of Table III
//! (`NewStringUTF` → `dvmCreateStringFromCstr`, `NewString` →
//! `dvmCreateStringFromUnicode`) and the `GetString*` accessors whose
//! `TrustCallHandler`s appear in the paper's Figs. 7 and 8.

use crate::helpers::{
    arg, deref, dvm_err, new_local_ref, object_taint, prov_transfer, set_ret_taint, tracking,
};
use crate::registry::dvm_addr;
use ndroid_dvm::Taint;
use ndroid_emu::runtime::NativeCtx;
use ndroid_emu::EmuError;
use ndroid_provenance::Direction;

/// `jstring NewStringUTF(const char *bytes)`
///
/// Reproduces the hook sequence of Fig. 6: the outer function is
/// instrumented *and* its memory-allocation counterpart
/// `dvmCreateStringFromCstr` (multilevel hooking gives NDroid both the
/// indirect reference and the real object address; §V-B "Object
/// Creation").
pub fn new_string_utf(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let src = arg(ctx, 0);
    let bytes = ctx.mem.read_cstr(src);
    let text = String::from_utf8_lossy(&bytes).into_owned();
    let taint = if tracking(ctx) {
        ctx.shadow.mem.range_taint(src, bytes.len().max(1) as u32)
    } else {
        Taint::CLEAR
    };
    ctx.trace.push("hook", "NewStringUTF Begin".to_string());
    // Virtual branch into the MAF so the multilevel FSM sees the chain.
    let self_addr = dvm_addr("NewStringUTF");
    let maf = dvm_addr("dvmCreateStringFromCstr");
    ctx.analysis.on_branch(ctx.shadow, self_addr + 0x10, maf);
    ctx.trace.push("hook", "dvmCreateStringFromCstr Begin".to_string());
    ctx.trace.push("data", text.clone());
    let id = ctx.dvm.heap.alloc_string(text, taint);
    let real_addr = ctx.dvm.heap.direct_addr(id).map_err(dvm_err)?;
    ctx.trace.push(
        "hook",
        format!("dvmCreateStringFromCstr return {real_addr:#x}"),
    );
    ctx.analysis
        .on_branch(ctx.shadow, maf + 4, self_addr + 0x14);
    ctx.trace.push("hook", "dvmCreateStringFromCstr End".to_string());
    if taint.is_tainted() {
        ctx.trace.push("taint", format!("realStringAddr:{real_addr:#x}"));
        ctx.trace.push(
            "taint",
            format!("add taint {} to new string object@{real_addr:#x}", taint.0),
        );
        ctx.trace
            .push("taint", format!("t({real_addr:x}) := {taint}"));
    }
    let r = new_local_ref(ctx, id, taint);
    if taint.is_tainted() {
        ctx.trace.push("hook", format!("NewStringUTF return {r:#x}"));
    }
    ctx.trace.push("hook", "NewStringUTF End".to_string());
    prov_transfer(ctx, "NewStringUTF", taint, Direction::NativeToJava);
    set_ret_taint(ctx, taint);
    Ok(r)
}

/// `jstring NewString(const jchar *chars, jsize len)` — UTF-16 input.
pub fn new_string(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let (src, len) = (arg(ctx, 0), arg(ctx, 1));
    let mut units = Vec::with_capacity(len as usize);
    for i in 0..len {
        units.push(ctx.mem.read_u16(src + 2 * i));
    }
    let text = String::from_utf16_lossy(&units);
    let taint = if tracking(ctx) {
        ctx.shadow.mem.range_taint(src, (2 * len).max(1))
    } else {
        Taint::CLEAR
    };
    ctx.trace.push("hook", "NewString Begin".to_string());
    let maf = dvm_addr("dvmCreateStringFromUnicode");
    ctx.analysis
        .on_branch(ctx.shadow, dvm_addr("NewString") + 0x10, maf);
    let id = ctx.dvm.heap.alloc_string(text, taint);
    ctx.analysis
        .on_branch(ctx.shadow, maf + 4, dvm_addr("NewString") + 0x14);
    ctx.trace.push("hook", "NewString End".to_string());
    let r = new_local_ref(ctx, id, taint);
    prov_transfer(ctx, "NewString", taint, Direction::NativeToJava);
    set_ret_taint(ctx, taint);
    Ok(r)
}

/// `const char *GetStringUTFChars(jstring s, jboolean *isCopy)`
///
/// Copies the string into a native buffer; the object's taint
/// propagates to every byte (the step-1/2/3 `TrustCallHandler` lines of
/// Fig. 8).
pub fn get_string_utf_chars(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jstr = arg(ctx, 0);
    let is_copy = arg(ctx, 1);
    let id = deref(ctx, jstr)?;
    let (text, dvm_taint) = {
        let (s, t) = ctx.dvm.heap.string(id).map_err(dvm_err)?;
        (s.to_string(), t)
    };
    let taint = if tracking(ctx) {
        dvm_taint | object_taint(ctx, jstr)
    } else {
        Taint::CLEAR
    };
    ctx.trace
        .push("hook", "TrustCallHandler[GetStringUTFChars] begin".to_string());
    if taint.is_tainted() {
        ctx.trace
            .push("taint", format!("jstring taint:{}", taint.0));
    }
    let buf = ctx.kernel.heap.malloc(text.len() as u32 + 1);
    ctx.mem.write_cstr(buf, text.as_bytes());
    if tracking(ctx) {
        ctx.shadow
            .mem
            .set_range(buf, text.len() as u32, taint);
        ctx.shadow.mem.set(buf + text.len() as u32, Taint::CLEAR);
        if taint.is_tainted() {
            ctx.trace.push("taint", format!("t({buf:x}) := {}", taint.0));
        }
    }
    if is_copy != 0 {
        ctx.mem.write_u8(is_copy, 1);
    }
    ctx.trace
        .push("hook", "TrustCallHandler[GetStringUTFChars] end".to_string());
    prov_transfer(ctx, "GetStringUTFChars", taint, Direction::JavaToNative);
    set_ret_taint(ctx, taint);
    Ok(buf)
}

/// `void ReleaseStringUTFChars(jstring s, const char *chars)`
pub fn release_string_utf_chars(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let buf = arg(ctx, 1);
    if let Some(size) = ctx.kernel.heap.size_of(buf) {
        if tracking(ctx) {
            ctx.shadow.mem.clear_range(buf, size);
        }
    }
    ctx.kernel.heap.free(buf);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `const jchar *GetStringChars(jstring s, jboolean *isCopy)` —
/// UTF-16 copy-out, the wide sibling of `GetStringUTFChars`.
pub fn get_string_chars(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jstr = arg(ctx, 0);
    let is_copy = arg(ctx, 1);
    let id = deref(ctx, jstr)?;
    let (units, dvm_taint) = {
        let (s, t) = ctx.dvm.heap.string(id).map_err(dvm_err)?;
        (s.encode_utf16().collect::<Vec<u16>>(), t)
    };
    let taint = if tracking(ctx) {
        dvm_taint | object_taint(ctx, jstr)
    } else {
        Taint::CLEAR
    };
    let buf = ctx.kernel.heap.malloc((units.len() as u32) * 2 + 2);
    for (i, u) in units.iter().enumerate() {
        ctx.mem.write_u16(buf + 2 * i as u32, *u);
    }
    ctx.mem.write_u16(buf + 2 * units.len() as u32, 0);
    if tracking(ctx) {
        ctx.shadow.mem.set_range(buf, units.len() as u32 * 2, taint);
    }
    if is_copy != 0 {
        ctx.mem.write_u8(is_copy, 1);
    }
    prov_transfer(ctx, "GetStringChars", taint, Direction::JavaToNative);
    set_ret_taint(ctx, taint);
    Ok(buf)
}

/// `void ReleaseStringChars(jstring s, const jchar *chars)`
pub fn release_string_chars(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    release_string_utf_chars(ctx)
}

/// `jsize GetStringLength(jstring s)` (UTF-16 length; ours equals the
/// char count).
pub fn get_string_length(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jstr = arg(ctx, 0);
    let id = deref(ctx, jstr)?;
    let (s, dvm_taint) = ctx.dvm.heap.string(id).map_err(dvm_err)?;
    let len = s.chars().count() as u32;
    let t = if tracking(ctx) {
        dvm_taint | object_taint(ctx, jstr)
    } else {
        Taint::CLEAR
    };
    set_ret_taint(ctx, t);
    Ok(len)
}

/// `jsize GetStringUTFLength(jstring s)`
pub fn get_string_utf_length(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let jstr = arg(ctx, 0);
    let id = deref(ctx, jstr)?;
    let (s, dvm_taint) = ctx.dvm.heap.string(id).map_err(dvm_err)?;
    let len = s.len() as u32;
    let t = if tracking(ctx) {
        dvm_taint | object_taint(ctx, jstr)
    } else {
        Taint::CLEAR
    };
    set_ret_taint(ctx, t);
    Ok(len)
}
