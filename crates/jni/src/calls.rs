//! The JNI-exit group: `Call<Type>Method{,V,A}` (Table II), exceptions
//! (`ThrowNew` → `initException` → `dvmCallMethod` → `dvmInterpret`),
//! and reference management.
//!
//! Each call emits the virtual branch chain the multilevel-hooking FSM
//! (Fig. 5) watches: `Call*Method → dvmCallMethod{V,A} → dvmInterpret`
//! on the way in and the `C+4`-style returns on the way out. Argument
//! taints cross into the DVM frame via
//! [`ndroid_emu::runtime::call_java_method`], which is the paper's
//! "setting the taints in the DVM stack when native codes invoke Java
//! methods" (§V-B).

use crate::helpers::{
    arg, arg_taint, dvm_err, method_of, object_taint, set_ret_taint, tracking,
};
use crate::registry::dvm_addr;
use ndroid_dvm::{IndirectRef, IndirectRefKind, Taint};
use ndroid_emu::runtime::{call_java_method, HostTable, NativeCtx};
use ndroid_emu::EmuError;

/// How a `Call*Method` variant receives its arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgForm {
    /// `...` — variadic registers/stack after the fixed parameters.
    Varargs,
    /// `va_list` — pointer to packed 32-bit slots.
    VaList,
    /// `jvalue *` — pointer to packed 32-bit slots.
    JvalueArray,
}

/// Shared implementation of the 90 `Call…Method…` functions.
///
/// `is_static` selects `CallStatic*` (first fixed arg is a `jclass`,
/// otherwise a `jobject` receiver that becomes the callee's `this`).
pub fn call_method(
    ctx: &mut NativeCtx<'_>,
    table: &HostTable,
    name: &'static str,
    is_static: bool,
    form: ArgForm,
) -> Result<u32, EmuError> {
    let mid = method_of(arg(ctx, 1))?;
    let (shorty, callee_name, registers) = {
        let def = ctx.dvm.program.method(mid);
        (def.shorty.clone(), def.name.clone(), def.registers_size)
    };
    let self_addr = dvm_addr(name);
    ctx.trace.push("hook", format!("{name} Begin"));

    // Collect callee arguments with their native-side taints.
    let mut call_args: Vec<(u32, Taint)> = Vec::new();
    if !is_static {
        let receiver = arg(ctx, 0);
        let t = if tracking(ctx) {
            arg_taint(ctx, 0) | object_taint(ctx, receiver)
        } else {
            Taint::CLEAR
        };
        call_args.push((receiver, t));
    }
    let declared = shorty.len().saturating_sub(1);
    match form {
        ArgForm::Varargs => {
            for i in 0..declared {
                let pos = 2 + i;
                let value = arg(ctx, pos);
                let mut t = if tracking(ctx) {
                    arg_taint(ctx, pos)
                } else {
                    Taint::CLEAR
                };
                if shorty.as_bytes().get(1 + i) == Some(&b'L') && tracking(ctx) {
                    t |= object_taint(ctx, value);
                }
                call_args.push((value, t));
            }
        }
        ArgForm::VaList | ArgForm::JvalueArray => {
            let base = arg(ctx, 2);
            for i in 0..declared {
                let addr = base + 4 * i as u32;
                let value = ctx.mem.read_u32(addr);
                let mut t = if tracking(ctx) {
                    ctx.shadow.mem.range_taint(addr, 4)
                } else {
                    Taint::CLEAR
                };
                if shorty.as_bytes().get(1 + i) == Some(&b'L') && tracking(ctx) {
                    t |= object_taint(ctx, value);
                }
                call_args.push((value, t));
            }
        }
    }

    // The Fig. 5 chain: Call*Method → dvmCallMethod{V,A} → dvmInterpret.
    let bridge = match form {
        ArgForm::Varargs => dvm_addr("dvmCallMethod"),
        ArgForm::VaList => dvm_addr("dvmCallMethodV"),
        ArgForm::JvalueArray => dvm_addr("dvmCallMethodA"),
    };
    let interp = dvm_addr("dvmInterpret");
    ctx.analysis.on_branch(ctx.shadow, self_addr + 0x10, bridge);
    ctx.trace.push("hook", "dvmCallMethod Begin".to_string());
    ctx.analysis.on_branch(ctx.shadow, bridge + 0x20, interp);
    ctx.trace.push("hook", "dvmInterpret Begin".to_string());
    ctx.trace
        .push("java-call", format!("Method Name: {callee_name}"));
    ctx.trace
        .push("java-call", format!("Method Shorty: {shorty}"));
    ctx.trace
        .push("java-call", format!("Method registerSize: {registers}"));
    ctx.trace.push(
        "java-call",
        format!("curFrame@{:#x}", ctx.dvm.stack.frame_guest_addr()),
    );
    for (i, (v, t)) in call_args.iter().enumerate() {
        if t.is_tainted() {
            ctx.trace.push(
                "taint",
                format!("args[{i}]@{v:#x} taint: {:#x} -> DVM frame", t.0),
            );
        }
    }

    let result = call_java_method(ctx, table, mid, &call_args);

    ctx.analysis.on_branch(ctx.shadow, interp + 4, bridge + 0x24);
    ctx.trace.push("hook", "dvmInterpret End".to_string());
    ctx.analysis
        .on_branch(ctx.shadow, bridge + 4, self_addr + 0x14);
    ctx.trace.push("hook", "dvmCallMethod End".to_string());
    ctx.trace.push("hook", format!("{name} End"));

    let (value, taint) = result?;
    set_ret_taint(ctx, taint);
    Ok(value)
}

/// `jint ThrowNew(jclass cls, const char *msg)` — "add the taint of the
/// third parameter of ThrowNew to the string object in the new
/// exception object" (§V-B). (The class is the second parameter here
/// because the env pointer is omitted.)
pub fn throw_new(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let cls_handle = arg(ctx, 0);
    let msg_ptr = arg(ctx, 1);
    let msg = String::from_utf8_lossy(&ctx.mem.read_cstr(msg_ptr)).into_owned();
    let taint = if tracking(ctx) {
        ctx.shadow
            .mem
            .range_taint(msg_ptr, msg.len().max(1) as u32)
    } else {
        Taint::CLEAR
    };
    let class_name = crate::helpers::class_of(cls_handle)
        .ok()
        .map(|c| ctx.dvm.program.class(c).name.clone())
        .unwrap_or_else(|| "Ljava/lang/RuntimeException;".to_string());

    ctx.trace.push("hook", "ThrowNew Begin".to_string());
    let self_addr = dvm_addr("ThrowNew");
    let init = dvm_addr("initException");
    ctx.analysis.on_branch(ctx.shadow, self_addr + 0x10, init);
    ctx.analysis
        .on_branch(ctx.shadow, init + 0x10, dvm_addr("dvmCallMethod"));
    let exc = ctx.dvm.throw_new(&class_name, &msg, taint);
    ctx.analysis
        .on_branch(ctx.shadow, dvm_addr("dvmCallMethod") + 4, init + 0x14);
    ctx.analysis
        .on_branch(ctx.shadow, init + 4, self_addr + 0x14);
    if taint.is_tainted() {
        ctx.trace.push(
            "taint",
            format!("add taint {} to exception message string", taint.0),
        );
    }
    ctx.trace.push("hook", "ThrowNew End".to_string());
    ctx.dvm.pending_exception = Some(exc);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `jthrowable ExceptionOccurred()`
pub fn exception_occurred(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    set_ret_taint(ctx, Taint::CLEAR);
    match ctx.dvm.pending_exception {
        Some(exc) => {
            let r = ctx.dvm.refs.add(IndirectRefKind::Local, exc);
            Ok(r.0)
        }
        None => Ok(0),
    }
}

/// `void ExceptionClear()`
pub fn exception_clear(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    ctx.dvm.pending_exception = None;
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `jobject NewGlobalRef(jobject r)` — the shadow taint follows the new
/// key so GC-surviving references stay tainted.
pub fn new_global_ref(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let old = arg(ctx, 0);
    if old == 0 {
        set_ret_taint(ctx, Taint::CLEAR);
        return Ok(0);
    }
    let id = crate::helpers::deref(ctx, old)?;
    let t = object_taint(ctx, old);
    let g = ctx.dvm.refs.add(IndirectRefKind::Global, id);
    if tracking(ctx) {
        ctx.shadow.taint_object(g, t);
    }
    set_ret_taint(ctx, t);
    Ok(g.0)
}

/// `void DeleteGlobalRef(jobject r)`
pub fn delete_global_ref(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let r = IndirectRef(arg(ctx, 0));
    ctx.dvm.refs.delete(r).map_err(dvm_err)?;
    ctx.shadow.objects.remove(&r);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// `void DeleteLocalRef(jobject r)`
pub fn delete_local_ref(ctx: &mut NativeCtx<'_>) -> Result<u32, EmuError> {
    let r = IndirectRef(arg(ctx, 0));
    ctx.dvm.refs.delete(r).map_err(dvm_err)?;
    ctx.shadow.objects.remove(&r);
    set_ret_taint(ctx, Taint::CLEAR);
    Ok(0)
}

/// Resolves a `Call…Method…` host-function name into its dispatch
/// parameters, or `None` if the name is not part of the family.
pub fn parse_call_name(name: &str) -> Option<(bool, ArgForm)> {
    if !name.starts_with("Call") {
        return None;
    }
    let rest = &name[4..];
    let (is_static, rest) = match rest.strip_prefix("Static") {
        Some(r) => (true, r),
        None => (false, rest.strip_prefix("Nonvirtual").unwrap_or(rest)),
    };
    let type_ok = [
        "Void", "Object", "Boolean", "Byte", "Char", "Short", "Int", "Long", "Float", "Double",
    ]
    .iter()
    .any(|t| rest.starts_with(t));
    if !type_ok {
        return None;
    }
    let form = if rest.ends_with("MethodV") {
        ArgForm::VaList
    } else if rest.ends_with("MethodA") {
        ArgForm::JvalueArray
    } else if rest.ends_with("Method") {
        ArgForm::Varargs
    } else {
        return None;
    };
    Some((is_static, form))
}

/// The full list of Table II call-function names (90 entries:
/// 3 kinds × 10 types × 3 forms).
pub fn call_family_names() -> Vec<String> {
    let mut names = Vec::with_capacity(90);
    for kind in ["", "Nonvirtual", "Static"] {
        for ty in [
            "Void", "Object", "Boolean", "Byte", "Char", "Short", "Int", "Long", "Float",
            "Double",
        ] {
            for form in ["", "V", "A"] {
                names.push(format!("Call{kind}{ty}Method{form}"));
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_family_is_ninety() {
        let names = call_family_names();
        assert_eq!(names.len(), 90);
        assert!(names.iter().any(|n| n == "CallVoidMethod"));
        assert!(names.iter().any(|n| n == "CallStaticIntMethodA"));
        assert!(names.iter().any(|n| n == "CallNonvirtualObjectMethodV"));
        // All unique.
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 90);
    }

    #[test]
    fn parse_call_names() {
        assert_eq!(parse_call_name("CallVoidMethod"), Some((false, ArgForm::Varargs)));
        assert_eq!(
            parse_call_name("CallVoidMethodA"),
            Some((false, ArgForm::JvalueArray))
        );
        assert_eq!(
            parse_call_name("CallStaticObjectMethodV"),
            Some((true, ArgForm::VaList))
        );
        assert_eq!(
            parse_call_name("CallNonvirtualIntMethod"),
            Some((false, ArgForm::Varargs))
        );
        assert_eq!(parse_call_name("NewStringUTF"), None);
        assert_eq!(parse_call_name("CallBogusMethod"), None);
        for name in call_family_names() {
            assert!(parse_call_name(&name).is_some(), "{name} must parse");
        }
    }

    #[test]
    fn misparse_rejected() {
        assert_eq!(parse_call_name("Call"), None);
        assert_eq!(parse_call_name("CallVoid"), None);
        assert_eq!(parse_call_name("CallVoidMethodX"), None);
    }
}
