//! Shared helpers: JNI handle encodings and taint utilities.

use ndroid_dvm::{ClassId, DvmError, FieldId, IndirectRef, MethodId, ObjectId, Taint};
use ndroid_emu::runtime::{aapcs_arg, aapcs_arg_taint, NativeCtx};
use ndroid_emu::EmuError;

/// Reads AAPCS argument `i`.
pub fn arg(ctx: &NativeCtx<'_>, i: usize) -> u32 {
    aapcs_arg(ctx.cpu, ctx.mem, i)
}

/// The shadow taint of AAPCS argument `i`.
pub fn arg_taint(ctx: &NativeCtx<'_>, i: usize) -> Taint {
    aapcs_arg_taint(ctx.cpu, ctx.shadow, i)
}

/// Whether the active analysis tracks native taint.
pub fn tracking(ctx: &NativeCtx<'_>) -> bool {
    ctx.analysis.tracks_native()
}

/// Sets the return-register shadow taint (cleared when not tracking).
pub fn set_ret_taint(ctx: &mut NativeCtx<'_>, taint: Taint) {
    ctx.shadow.regs[0] = if tracking(ctx) { taint } else { Taint::CLEAR };
}

/// Records a Java↔native provenance transfer for a JNI accessor.
/// No-op when the recorder is off or the moved data is clean, so the
/// hot path pays one branch.
pub fn prov_transfer(
    ctx: &NativeCtx<'_>,
    api: &str,
    taint: Taint,
    direction: ndroid_provenance::Direction,
) {
    if taint.is_tainted() && ctx.shadow.prov.is_on() {
        ctx.shadow.prov.emit(ndroid_provenance::ProvEvent::Transfer {
            api: api.to_string(),
            label: taint.0,
            direction,
        });
    }
}

/// Encodes a `jclass` handle.
pub fn jclass(id: ClassId) -> u32 {
    0xC1A5_0000 | id.0
}

/// Decodes a `jclass` handle.
///
/// # Errors
///
/// [`EmuError::Kernel`] on a malformed handle.
pub fn class_of(handle: u32) -> Result<ClassId, EmuError> {
    if handle & 0xFFFF_0000 == 0xC1A5_0000 {
        Ok(ClassId(handle & 0xFFFF))
    } else {
        Err(EmuError::Kernel(format!("bad jclass {handle:#x}")))
    }
}

/// Encodes a `jmethodID`.
pub fn jmethod(id: MethodId) -> u32 {
    id.0 + 1
}

/// Decodes a `jmethodID`.
///
/// # Errors
///
/// [`EmuError::Kernel`] on the null method id.
pub fn method_of(handle: u32) -> Result<MethodId, EmuError> {
    handle
        .checked_sub(1)
        .map(MethodId)
        .ok_or_else(|| EmuError::Kernel("null jmethodID".into()))
}

/// Encodes a `jfieldID` (bit 31 = static, bits 30:16 = class,
/// bits 15:0 = field index).
pub fn jfield(f: FieldId) -> u32 {
    ((f.is_static as u32) << 31) | ((f.class.0 & 0x7FFF) << 16) | f.index as u32
}

/// Decodes a `jfieldID`.
pub fn field_of(handle: u32) -> FieldId {
    FieldId {
        class: ClassId((handle >> 16) & 0x7FFF),
        index: (handle & 0xFFFF) as u16,
        is_static: handle & 0x8000_0000 != 0,
    }
}

/// Resolves an indirect-reference argument to its object id.
///
/// # Errors
///
/// [`EmuError::Dvm`] with [`DvmError::BadIndirectRef`] on stale/null refs.
pub fn deref(ctx: &NativeCtx<'_>, raw: u32) -> Result<ObjectId, EmuError> {
    ctx.dvm
        .refs
        .decode(IndirectRef(raw))
        .map_err(EmuError::Dvm)
}

/// The full taint visible on an object reference from the native
/// context: the shadow object map entry (keyed by indirect ref, §V-B)
/// unioned with the DVM-level object taint.
pub fn object_taint(ctx: &NativeCtx<'_>, raw: u32) -> Taint {
    if !tracking(ctx) {
        return Taint::CLEAR;
    }
    let shadow = ctx.shadow.object_taint(IndirectRef(raw));
    let dvm_level = ctx
        .dvm
        .refs
        .decode(IndirectRef(raw))
        .ok()
        .and_then(|id| ctx.dvm.heap.get(id).ok())
        .map(|o| o.overall_taint())
        .unwrap_or(Taint::CLEAR);
    shadow | dvm_level
}

/// Wraps an object id as a fresh local indirect reference, recording
/// `taint` in the shadow object map.
pub fn new_local_ref(ctx: &mut NativeCtx<'_>, id: ObjectId, taint: Taint) -> u32 {
    let r = ctx.dvm.refs.add(ndroid_dvm::IndirectRefKind::Local, id);
    if tracking(ctx) {
        ctx.shadow.taint_object(r, taint);
    }
    r.0
}

/// Convenience: turns a [`DvmError`] into an [`EmuError`].
pub fn dvm_err(e: DvmError) -> EmuError {
    EmuError::Dvm(e)
}
