#!/usr/bin/env bash
# Hermetic CI pass: build, test, and bench-smoke the whole workspace
# with zero network/registry access. Fails if any dependency would be
# resolved from a registry rather than a workspace path.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== dependency graph is workspace-only =="
# With no lockfile entries for registry crates, --offline resolution
# succeeds only if every dependency is a path dependency. Double-check
# explicitly so a reintroduced crates.io dep fails loudly here.
if cargo metadata --format-version 1 --offline --no-deps \
    | grep -o '"source":"[^"]*"' | grep -qv '"source":null'; then
  echo "error: non-path dependency in the workspace graph" >&2
  exit 1
fi
if grep -o '"source":[^,]*' Cargo.lock 2>/dev/null | grep -q 'registry'; then
  echo "error: Cargo.lock references a registry" >&2
  exit 1
fi

echo "== cargo build --release --offline =="
cargo build --workspace --release --offline

echo "== cargo test --offline =="
cargo test -q --workspace --offline

echo "== differential taint oracle (pinned case count) =="
# The testkit derives per-property seed streams deterministically from
# the property name, so a fixed case count IS a pinned run: the same
# >=200 generated ARM/Thumb programs (writeback, LDM/STM, SMC,
# conditional execution) are checked against the reference engine
# every time. (TESTKIT_SEED is for replaying a single failing case —
# do not set it here, it would shrink the run to one case.)
TESTKIT_CASES=256 cargo test -q --offline -p ndroid-core \
  --test oracle_prop --test oracle_regression
TESTKIT_CASES=256 cargo test -q --offline -p ndroid-apps --test oracle_gallery

echo "== batch farm: 4-worker merge must match the sequential golden =="
# Runs the farm over the gallery + a pinned 32-sample corpus shard,
# sequentially and at 4 workers, and exits non-zero unless the merged
# BatchReport (and its rendering) is byte-identical.
cargo run -q --release --offline -p ndroid-bench --bin exp_batch -- --workers 4

echo "== provenance: gallery leak paths must match the golden transcript =="
# Runs each pinned gallery case at Level::Full and diffs every
# reconstructed source->JNI->native->sink path against the checked-in
# golden (crates/bench/src/bin/exp_provenance_golden.txt).
cargo run -q --release --offline -p ndroid-bench --bin exp_provenance

echo "== bench smoke pass (TESTKIT_BENCH_SMOKE=1) =="
BENCH_DIR="$(mktemp -d)"
TESTKIT_BENCH_SMOKE=1 TESTKIT_BENCH_DIR="$BENCH_DIR" \
  cargo bench -q --offline -p ndroid-bench
for f in BENCH_cfbench.json BENCH_ablations.json BENCH_taint.json BENCH_oracle.json BENCH_batch.json BENCH_provenance.json; do
  if [ ! -s "$BENCH_DIR/$f" ]; then
    echo "error: bench smoke did not produce $f" >&2
    exit 1
  fi
  # Reject truncated/malformed reports: every suite JSON carries a
  # "results" array and at least one named benchmark.
  if ! grep -q '"results"' "$BENCH_DIR/$f" || ! grep -q '"median_ns"' "$BENCH_DIR/$f"; then
    echo "error: $f is malformed (missing results)" >&2
    exit 1
  fi
done
rm -rf "$BENCH_DIR"

echo "== CI pass complete =="
