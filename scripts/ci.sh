#!/usr/bin/env bash
# Hermetic CI pass: build, test, and bench-smoke the whole workspace
# with zero network/registry access. Fails if any dependency would be
# resolved from a registry rather than a workspace path.
#
# Each stage prints its wall-clock on completion (`-- <stage>: Ns`), so
# a slow CI run is attributable to a stage rather than the whole script.
set -euo pipefail

cd "$(dirname "$0")/.."

CURRENT_STAGE=""
STAGE_T0=0
stage_end() {
  if [ -n "$CURRENT_STAGE" ]; then
    echo "-- ${CURRENT_STAGE}: $((SECONDS - STAGE_T0))s"
  fi
}
stage() {
  stage_end
  CURRENT_STAGE="$1"
  STAGE_T0=$SECONDS
  echo "== ${CURRENT_STAGE} =="
}

stage "dependency graph is workspace-only"
# With no lockfile entries for registry crates, --offline resolution
# succeeds only if every dependency is a path dependency. Double-check
# explicitly so a reintroduced crates.io dep fails loudly here.
if cargo metadata --format-version 1 --offline --no-deps \
    | grep -o '"source":"[^"]*"' | grep -qv '"source":null'; then
  echo "error: non-path dependency in the workspace graph" >&2
  exit 1
fi
if grep -o '"source":[^,]*' Cargo.lock 2>/dev/null | grep -q 'registry'; then
  echo "error: Cargo.lock references a registry" >&2
  exit 1
fi

stage "cargo build --release --offline"
cargo build --workspace --release --offline

stage "cargo test --offline"
cargo test -q --workspace --offline

stage "differential taint oracle (pinned case count)"
# The testkit derives per-property seed streams deterministically from
# the property name, so a fixed case count IS a pinned run: the same
# >=200 generated ARM/Thumb programs (writeback, LDM/STM, SMC,
# conditional execution) are checked against the reference engine
# every time. (TESTKIT_SEED is for replaying a single failing case —
# do not set it here, it would shrink the run to one case.)
TESTKIT_CASES=256 cargo test -q --offline -p ndroid-core \
  --test oracle_prop --test oracle_regression
TESTKIT_CASES=256 cargo test -q --offline -p ndroid-apps --test oracle_gallery

stage "batch farm: 4-worker merge must match the sequential golden"
# Runs the farm over the gallery + a pinned 32-sample corpus shard,
# sequentially and at 4 workers, and exits non-zero unless the merged
# BatchReport (and its rendering) is byte-identical.
cargo run -q --release --offline -p ndroid-bench --bin exp_batch -- --workers 4

stage "provenance: gallery leak paths must match the golden transcript"
# Runs each pinned gallery case at Level::Full and diffs every
# reconstructed source->JNI->native->sink path against the checked-in
# golden (crates/bench/src/bin/exp_provenance_golden.txt).
cargo run -q --release --offline -p ndroid-bench --bin exp_provenance

stage "adversarial corpus: detection matrix, scoring harness, leak-path golden"
# The adversarial regression wall (pinned detection matrix, engine
# bit-identity, provenance coverage, SMC invalidation counters, and the
# TESTKIT_CASES-scaled mutated-spec property) plus the false-positive
# control, then the exp_adversarial gate: the full corpus through the
# 4-worker farm must score recall 1.0 / precision 1.0 and its score
# matrix + leak-path transcript must match the checked-in golden
# (crates/bench/src/bin/exp_adversarial_golden.txt).
TESTKIT_CASES="${TESTKIT_CASES:-256}" cargo test -q --offline -p ndroid-apps \
  --test adversarial_regression --test score_harness
cargo run -q --release --offline -p ndroid-bench --bin exp_adversarial
# The same gate with superblock dispatch disabled: the per-instruction
# stepper must reproduce the identical score matrix and transcript.
cargo run -q --release --offline -p ndroid-bench --bin exp_adversarial -- --no-blocks

stage "provenance store: fleet query transcript must match the golden"
# Runs the gallery + adversarial corpus through the farm with the
# tiered store sealing at capacity 4 and diffs the rendered cross-run
# ProvQuery results (plus per-job segment/decode counters) against the
# checked-in golden (crates/bench/src/bin/exp_prov_query_golden.txt).
# Re-bless with `--bless` after an intentional corpus or wire-format
# change.
cargo run -q --release --offline -p ndroid-bench --bin exp_prov_query

stage "resident service: drained report must match the offline merge"
# Boots the AnalysisService at 4 workers, submits the pinned corpus
# shard on the bulk lane and the gallery + adversarial corpus on the
# interactive lane while workers run, and exits non-zero unless the
# drained BatchReport (and its rendering) is byte-identical to the
# offline run_batch merge over the same jobs in submission order. Also
# smoke-checks the streaming path (every ticket answered exactly once).
cargo run -q --release --offline -p ndroid-bench --bin exp_service -- --workers 4

stage "snapshot fan-out: 1000 forked sessions must match 1000 fresh boots"
# Fans 1000 monkey schedules over the gated-leak app twice — re-booting
# per session vs forking every session from one warmed copy-on-write
# image per worker — and exits non-zero unless the merged BatchReports
# (and their renderings) are byte-identical. The snapshot determinism
# wall (fork == fresh across engines, SMC-after-fork) runs with the
# workspace tests above; this gate is the at-scale end-to-end check.
cargo run -q --release --offline -p ndroid-bench --bin exp_snapshot -- --sessions 1000 --workers 4

stage "bench smoke pass (TESTKIT_BENCH_SMOKE=1)"
BENCH_DIR="$(mktemp -d)"
TESTKIT_BENCH_SMOKE=1 TESTKIT_BENCH_DIR="$BENCH_DIR" \
  cargo bench -q --offline -p ndroid-bench
for f in BENCH_cfbench.json BENCH_ablations.json BENCH_taint.json BENCH_oracle.json BENCH_batch.json BENCH_provenance.json BENCH_adversarial.json BENCH_blocks.json BENCH_snapshot.json BENCH_service.json; do
  if [ ! -s "$BENCH_DIR/$f" ]; then
    echo "error: bench smoke did not produce $f" >&2
    exit 1
  fi
  # Reject truncated/malformed reports: every suite JSON carries a
  # "results" array and at least one named benchmark.
  if ! grep -q '"results"' "$BENCH_DIR/$f" || ! grep -q '"median_ns"' "$BENCH_DIR/$f"; then
    echo "error: $f is malformed (missing results)" >&2
    exit 1
  fi
done
# The provenance suite additionally records the tiered-store scalars
# the compression gate is stated in terms of; the bench binary itself
# asserts bytes_per_event stays at or under 40% of the in-memory
# ProvEvent size.
for key in bytes_per_event events_per_sec; do
  if ! grep -q "\"name\": \"$key\"" "$BENCH_DIR/BENCH_provenance.json"; then
    echo "error: BENCH_provenance.json is missing the $key metric" >&2
    exit 1
  fi
done
rm -rf "$BENCH_DIR"

stage_end
echo "== CI pass complete =="
