#![warn(missing_docs)]

//! # NDroid-rs
//!
//! A from-scratch Rust reproduction of **"On Tracking Information Flows
//! through JNI in Android Applications"** (Qian, Luo, Shao, Chan —
//! DSN 2014): NDroid, a dynamic taint analysis system that tracks
//! information flows crossing the boundary between an Android app's
//! Java code and its native code.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`arm`] — an ARM32/Thumb CPU simulator with a builder assembler
//!   (the QEMU stand-in).
//! * [`dvm`] — a mini-Dalvik VM with TaintDroid's modified stack,
//!   taint storage and propagation rules.
//! * [`emu`] — the run loop with analysis hooks, shadow taint state,
//!   simulated kernel, OS-level view reconstructor and the
//!   multilevel-hooking FSM.
//! * [`libc`] — modeled Bionic libc/libm functions (Table VI) and the
//!   hooked system-call layer with leak sinks (Table VII).
//! * [`jni`] — the JNI environment: 150+ functions across the paper's
//!   five hook groups (entry, exit, object creation, field access,
//!   exception).
//! * [`core`] — NDroid itself: the Table V instruction tracer,
//!   `SourcePolicy`, the analysis orchestrator and the
//!   TaintDroid-only / DroidScope-like baselines.
//! * [`apps`] — the evaluation workloads: the Table I case matrix, the
//!   QQPhoneBook/ePhone/PoC replicas of Figs. 6–9, benign apps, and
//!   the §VI survey set.
//! * [`corpus`] — the §III market study (Fig. 2).
//! * [`cfbench`] — the CF-Bench-analog overhead suite (Fig. 10).
//!
//! ## Quickstart
//!
//! ```
//! use ndroid::apps::cases::case2;
//! use ndroid::core::{Mode, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An app whose Java code reads a contact and whose native code
//! // exfiltrates it over a socket (Case 2 of the paper) …
//! let report = case2().run_with(SystemConfig::new(Mode::NDroid))?.report();
//! assert_eq!(report.leaks().len(), 1, "NDroid catches the native-side send");
//!
//! // … which TaintDroid alone cannot see.
//! let report = case2().run_with(SystemConfig::new(Mode::TaintDroid))?.report();
//! assert!(report.leaks().is_empty(), "TaintDroid's sinks are Java-only");
//! # Ok(())
//! # }
//! ```

pub use ndroid_apps as apps;
pub use ndroid_arm as arm;
pub use ndroid_cfbench as cfbench;
pub use ndroid_core as core;
pub use ndroid_corpus as corpus;
pub use ndroid_dvm as dvm;
pub use ndroid_emu as emu;
pub use ndroid_jni as jni;
pub use ndroid_libc as libc;
