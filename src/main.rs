//! The `ndroid` command-line tool: run the evaluation workloads under
//! any analysis configuration, inspect traces, and disassemble the
//! native libraries — the interactive face of the reproduction.

use ndroid::apps::{self, App};
use ndroid::core::report::describe_leak;
use ndroid::core::Mode;

type AppEntry = (&'static str, fn() -> App);

fn registry() -> Vec<AppEntry> {
    vec![
        ("case1", apps::cases::case1 as fn() -> App),
        ("case1-prime", apps::cases::case1_prime),
        ("case1-prime-cb", apps::cases::case1_prime_callback),
        ("case2", apps::cases::case2),
        ("case3", apps::cases::case3),
        ("case4", apps::cases::case4),
        ("qq-phonebook", apps::qq_phonebook::qq_phonebook),
        ("ephone", apps::ephone::ephone),
        ("poc-case2", apps::poc_case2::poc_case2),
        ("poc-case3", apps::poc_case3::poc_case3),
        ("thumb-spy", apps::thumb_spy::thumb_spy),
        ("crypto-hider", apps::crypto_hider::crypto_hider),
        ("dyndex", apps::dyndex::dyndex_app),
        ("native-game", apps::pure_native::native_game_leaky),
        ("native-puzzle", apps::pure_native::native_game_benign),
        ("gated-sync", apps::driver::gated_leak_app),
        ("benign-game", apps::benign::physics_game),
        ("benign-license", apps::benign::audio_license_check),
        ("benign-dsp", apps::benign::dsp_filter),
    ]
}

fn find_app(name: &str) -> Option<App> {
    registry()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f())
}

fn parse_mode(s: &str) -> Option<Mode> {
    match s {
        "vanilla" => Some(Mode::Vanilla),
        "taintdroid" => Some(Mode::TaintDroid),
        "ndroid" => Some(Mode::NDroid),
        "droidscope" | "droidscope-like" => Some(Mode::DroidScopeLike),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "ndroid — dynamic taint analysis of JNI information flows (DSN'14 reproduction)

USAGE:
    ndroid list                         list the workload apps
    ndroid run <app> [<mode>]           run an app (mode: vanilla | taintdroid | ndroid | droidscope; default ndroid)
    ndroid trace <app>                  run under NDroid and print the full analysis trace
    ndroid disasm <app>                 disassemble the app's native library
    ndroid corpus                       print the §III market-study statistics
"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:<18} description", "app");
            println!("{}", "-".repeat(72));
            for (name, f) in registry() {
                let app = f();
                println!("{:<18} {}", name, app.description);
            }
        }
        Some("run") => {
            let Some(name) = args.get(1) else { usage() };
            let mode = args
                .get(2)
                .map(|m| parse_mode(m).unwrap_or_else(|| usage()))
                .unwrap_or(Mode::NDroid);
            let Some(app) = find_app(name) else {
                eprintln!("unknown app '{name}' (try `ndroid list`)");
                std::process::exit(1);
            };
            match app.run(mode) {
                Ok(sys) => {
                    println!("ran under {mode}:");
                    println!(
                        "  {} native instruction(s), {} bytecode(s), {} sink call(s)",
                        sys.native_insns(),
                        sys.bytecodes(),
                        sys.all_sink_events().len()
                    );
                    let leaks = sys.leaks();
                    if leaks.is_empty() {
                        println!("  no leaks detected");
                    }
                    for leak in leaks {
                        println!("  LEAK: {}", describe_leak(leak));
                        println!("        data: {}", leak.data);
                    }
                    if let Some(stats) = sys.ndroid_stats() {
                        println!(
                            "  analysis: {} insns traced ({} cache-skipped), {} jni entries, {} source policies, {} chains",
                            stats.insns_traced,
                            stats.insns_skipped,
                            stats.jni_entries,
                            stats.source_policies,
                            stats.chains_activated
                        );
                    }
                }
                Err(e) => {
                    eprintln!("app failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("trace") => {
            let Some(name) = args.get(1) else { usage() };
            let Some(app) = find_app(name) else {
                eprintln!("unknown app '{name}'");
                std::process::exit(1);
            };
            match app.run(Mode::NDroid) {
                Ok(sys) => print!("{}", sys.trace.render()),
                Err(e) => {
                    eprintln!("app failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("disasm") => {
            let Some(name) = args.get(1) else { usage() };
            let Some(app) = find_app(name) else {
                eprintln!("unknown app '{name}'");
                std::process::exit(1);
            };
            let lib = app.lib_name.clone();
            let sys = app.launch(Mode::Vanilla);
            match sys.disassemble_module(&lib) {
                Some(lines) => {
                    println!("{lib}:");
                    for line in lines {
                        println!("  {line}");
                    }
                }
                None => eprintln!("no native library mapped"),
            }
        }
        Some("corpus") => {
            let config = ndroid::corpus::CorpusConfig::default();
            let stats = ndroid::corpus::classify(&ndroid::corpus::generate(&config));
            print!("{}", stats.render());
        }
        _ => usage(),
    }
}
